"""Custom AST lint rules for the fixed-point codebase (RPC001-RPC004).

The fixed-point layers manipulate *raw words* — plain integers whose value
is only meaningful together with a :class:`~repro.fixedpoint.qformat.QFormat`.
The bug class this linter exists for is silently re-interpreting a raw word
as a real number (or vice versa): dividing a raw word with ``/``, masking
it with a magic constant instead of the format's modulus, or letting numpy
promote an integer word array to float64 where 53-bit mantissas quietly
corrupt wide words.  Generic linters cannot see this distinction; these
rules encode it structurally, using the repo convention that identifiers
containing ``raw`` hold raw words.

Rules
-----
- **RPC001** — no float literals mixed into, and no ``/`` true division
  on, raw-word expressions (scope: ``fixedpoint/`` and ``serve/engine.py``).
  Raw words are scaled integers; ``/`` produces a float and silently drops
  bit-exactness.  Conversions belong in the sanctioned helpers.
- **RPC002** — wrap/mask sites (``%`` or ``&`` on a raw-word expression)
  must take their width from a ``QFormat`` (e.g. ``fmt.modulus``), never a
  bare integer constant (same scope).
- **RPC003** — no float ``astype``/``dtype=`` on raw-word arrays outside
  sanctioned conversion helpers (same scope): float64 holds 53 mantissa
  bits, so the promotion corrupts words of wide formats.
- **RPC004** — public functions raise :mod:`repro.errors` types, never a
  bare ``ValueError`` (scope: all of ``src/repro``).

The serving plane adds a second bug class: shared mutable state touched
from threads, the async batcher loop, and spawn-context cluster workers.
Three concurrency rules encode the repo's serving conventions
(scope: ``serve/``):

- **RPC005** — no mutable module-level state (dict/list/set literals,
  comprehensions, or constructor calls bound at module scope).  Module
  state is silently *duplicated* into spawn-context workers (mutations
  diverge per process) and shared *unlocked* between server threads;
  read-only tables must be annotated with a documented
  ``# repro: noqa-RPC005`` (or made tuples/frozensets).
- **RPC006** — no blocking calls (``time.sleep``, ``open``,
  ``subprocess.*``, ``urllib`` fetches, ...) directly inside ``async
  def`` bodies: one blocking call stalls the entire event loop and every
  in-flight request behind the micro-batcher.  Blocking work belongs in
  ``run_in_executor`` / a thread.
- **RPC007** — no unguarded mutation of ``global`` names from function
  bodies: rebinding shared module globals from request paths is a data
  race unless the write happens under a lock (``with <..lock..>:``).

Suppression: append ``# repro: noqa-RPC001`` (comma-separate several ids:
``# repro: noqa-RPC001,RPC003``) to the offending line; a bare
``# repro: noqa`` suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..errors import LintError

__all__ = [
    "LintFinding",
    "LintRule",
    "ALL_RULES",
    "SANCTIONED_HELPERS",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_findings",
]

# Functions allowed to cross the raw-word <-> real boundary.  Everything
# else must go through them.
SANCTIONED_HELPERS: Set[str] = {
    "to_real",
    "dequantize_raw",
    "grid",
    "projections",
}

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:-(?P<rules>[A-Z0-9,\s]+))?")

_FLOAT_DTYPE_NAMES = {"float16", "float32", "float64", "half", "single", "double"}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at a source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int

    def render(self) -> str:
        """``path:line:col: RPCxxx message`` — the CLI output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class _FileContext:
    """Shared per-file state handed to every rule."""

    path: str
    source_lines: Sequence[str]
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules


def _collect_suppressions(source_lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids (None = all rules)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        spec = match.group("rules")
        if spec is None:
            out[number] = None
        else:
            out[number] = {item.strip() for item in spec.split(",") if item.strip()}
    return out


# ---------------------------------------------------------------------- #
# Raw-word expression heuristics
# ---------------------------------------------------------------------- #
def _identifier_names(node: ast.AST) -> Iterator[str]:
    """All identifier fragments (Name ids and Attribute attrs) in a subtree."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr
        elif isinstance(child, (ast.arg,)):
            yield child.arg


def _is_rawish(node: ast.AST) -> bool:
    """True if the expression mentions an identifier carrying raw words."""
    return any("raw" in name.lower() for name in _identifier_names(node))


def _is_float_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # A negated float literal parses as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_constant(node.operand)
    return False


def _is_bare_int_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_bare_int_constant(node.operand)
    return False


def _is_float_dtype_expr(node: ast.AST) -> bool:
    """Does this expression denote a float dtype (np.float64, "float32", float)?"""
    if isinstance(node, ast.Attribute):
        return node.attr in _FLOAT_DTYPE_NAMES
    if isinstance(node, ast.Name):
        return node.id == "float" or node.id in _FLOAT_DTYPE_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _FLOAT_DTYPE_NAMES or node.value.startswith("float")
    return False


def _enclosing_function_names(
    tree: ast.Module,
) -> Dict[ast.AST, Tuple[str, ...]]:
    """Map every node to the stack of function names enclosing it."""
    out: Dict[ast.AST, Tuple[str, ...]] = {}

    def visit(node: ast.AST, stack: Tuple[str, ...]) -> None:
        out[node] = stack
        child_stack = stack
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_stack = stack + (node.name,)
        for child in ast.iter_child_nodes(node):
            visit(child, child_stack)

    visit(tree, ())
    return out


def _in_sanctioned_helper(stack: Tuple[str, ...]) -> bool:
    return any(name in SANCTIONED_HELPERS for name in stack)


# ---------------------------------------------------------------------- #
# Rules
# ---------------------------------------------------------------------- #
class LintRule:
    """Base class: one rule = one id + a scope + a ``check`` pass."""

    id: str = ""
    description: str = ""

    def applies_to(self, path: str) -> bool:
        """Default path scope when linting trees of files (CLI / CI)."""
        raise NotImplementedError

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    # Shared scope predicates -------------------------------------------- #
    @staticmethod
    def _raw_word_scope(path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return "fixedpoint/" in normalized or normalized.endswith("serve/engine.py")

    @staticmethod
    def _serve_scope(path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return "serve/" in normalized


class RPC001FloatOnRawWords(LintRule):
    """No float literals or ``/`` true division on raw-word expressions."""

    id = "RPC001"
    description = "float literal or / true-division on a raw-word expression"

    def applies_to(self, path: str) -> bool:
        return self._raw_word_scope(path)

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        stacks = _enclosing_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            if _in_sanctioned_helper(stacks.get(node, ())):
                continue
            left_raw = _is_rawish(node.left)
            right_raw = _is_rawish(node.right)
            if not (left_raw or right_raw):
                continue
            if isinstance(node.op, ast.Div):
                yield LintFinding(
                    rule=self.id,
                    message=(
                        "true division on a raw word produces a float; use "
                        "shift_right_rounded or a sanctioned conversion helper"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )
            elif _is_float_constant(node.left) or _is_float_constant(node.right):
                yield LintFinding(
                    rule=self.id,
                    message=(
                        "float literal mixed into raw-word arithmetic; raw "
                        "words are scaled integers"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )


class RPC002BareWidthConstant(LintRule):
    """Wrap/mask sites must reference a QFormat width, not a bare constant."""

    id = "RPC002"
    description = "wrap/mask of a raw word by a bare integer constant"

    def applies_to(self, path: str) -> bool:
        return self._raw_word_scope(path)

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mod, ast.BitAnd)):
                continue
            if not _is_rawish(node.left):
                continue
            if _is_bare_int_constant(node.right):
                op = "%" if isinstance(node.op, ast.Mod) else "&"
                yield LintFinding(
                    rule=self.id,
                    message=(
                        f"raw word {op} bare integer constant; derive the "
                        "width from the QFormat (fmt.modulus / fmt.word_length)"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )


class RPC003SilentFloatPromotion(LintRule):
    """No float dtype promotion of raw-word arrays outside sanctioned helpers."""

    id = "RPC003"
    description = "float dtype promotion of a raw-word array"

    def applies_to(self, path: str) -> bool:
        return self._raw_word_scope(path)

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        stacks = _enclosing_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if _in_sanctioned_helper(stacks.get(node, ())):
                continue
            finding = self._check_call(node, ctx)
            if finding is not None:
                yield finding

    def _check_call(self, node: ast.Call, ctx: _FileContext) -> Optional[LintFinding]:
        # raw_words.astype(np.float64)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and _is_rawish(node.func.value)
            and node.args
            and _is_float_dtype_expr(node.args[0])
        ):
            return LintFinding(
                rule=self.id,
                message=(
                    "astype(float) on a raw-word array loses bit-exactness "
                    "beyond 53 bits; convert via a sanctioned helper"
                ),
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
            )
        # np.asarray(raw_words, dtype=np.float64) / np.array(..., dtype=float)
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "asarray",
            "array",
        }:
            arg_rawish = bool(node.args) and _is_rawish(node.args[0])
            for keyword in node.keywords:
                if (
                    keyword.arg == "dtype"
                    and arg_rawish
                    and keyword.value is not None
                    and _is_float_dtype_expr(keyword.value)
                ):
                    return LintFinding(
                        rule=self.id,
                        message=(
                            "float dtype= on a raw-word array loses "
                            "bit-exactness; convert via a sanctioned helper"
                        ),
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset,
                    )
        return None


class RPC004BareBuiltinRaise(LintRule):
    """Public functions raise repro.errors types, not bare ValueError.

    Dunder methods (``__init__``, ``__post_init__``, ...) count as public:
    they validate the arguments of public classes, so a bare ``ValueError``
    there leaks into callers exactly like one raised from a public function
    (the PR-3 conversion missed ``__post_init__`` validators for this
    reason).  Only single-underscore-prefixed helpers stay exempt.
    """

    id = "RPC004"
    description = "public function raises bare ValueError"

    _BANNED = {"ValueError"}

    def applies_to(self, path: str) -> bool:
        normalized = path.replace(os.sep, "/")
        return "repro/" in normalized and normalized.endswith(".py")

    @staticmethod
    def _is_private(name: str) -> bool:
        return name.startswith("_") and not (
            name.startswith("__") and name.endswith("__")
        )

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        stacks = _enclosing_function_names(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            stack = stacks.get(node, ())
            if not stack or self._is_private(stack[-1]):
                continue  # module level or private helper
            name = self._raised_name(node.exc)
            if name in self._BANNED:
                yield LintFinding(
                    rule=self.id,
                    message=(
                        f"public function {stack[-1]!r} raises bare {name}; "
                        "raise a repro.errors type (e.g. InputValidationError)"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )

    @staticmethod
    def _raised_name(exc: ast.AST) -> Optional[str]:
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            return exc.id
        return None


class RPC005ModuleMutableState(LintRule):
    """Serve modules must not bind mutable containers at module scope.

    Spawn-context cluster workers re-import the module, so each process
    gets its *own copy* of the state (mutations silently diverge), while
    the threaded server shares one copy *unlocked*.  Immutable tables
    (tuples, frozensets) and dunder metadata (``__all__``) are exempt;
    genuinely read-only dicts carry a documented ``# repro: noqa-RPC005``.
    """

    id = "RPC005"
    description = "mutable module-level state in a serving module"

    def applies_to(self, path: str) -> bool:
        return self._serve_scope(path)

    @staticmethod
    def _is_mutable_value(node: ast.AST) -> bool:
        if isinstance(node, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(node, (ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"dict", "list", "set", "bytearray", "defaultdict"}
        return False

    @staticmethod
    def _is_dunder(name: str) -> bool:
        return name.startswith("__") and name.endswith("__")

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value: Optional[ast.AST] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            if value is None or not self._is_mutable_value(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names or all(self._is_dunder(name) for name in names):
                continue
            yield LintFinding(
                rule=self.id,
                message=(
                    f"module-level mutable state {', '.join(names)!s}; "
                    "spawn-context workers duplicate it and server threads "
                    "share it unlocked — use a tuple/frozenset or move it "
                    "into an instance"
                ),
                path=ctx.path,
                line=stmt.lineno,
                col=stmt.col_offset,
            )


class RPC006BlockingCallInAsync(LintRule):
    """No blocking calls directly inside ``async def`` bodies.

    One synchronous sleep, file open, subprocess, or URL fetch inside the
    micro-batcher's event loop stalls *every* in-flight request — the
    batcher's whole point is that requests only ever await.  Nested
    synchronous ``def``s are exempt: they are the standard shape for
    ``run_in_executor`` targets.
    """

    id = "RPC006"
    description = "blocking call inside an async function"

    # (module, attribute) pairs that block the calling thread.
    _BLOCKING_ATTRS = {
        ("time", "sleep"),
        ("os", "system"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
        ("socket", "create_connection"),
        ("requests", "get"),
        ("requests", "post"),
        ("requests", "put"),
        ("requests", "delete"),
        ("requests", "request"),
    }
    # Attribute names that block regardless of the object they hang off
    # (urllib.request.urlopen has a two-level module path).
    _BLOCKING_ATTR_NAMES = {"urlopen"}
    _BLOCKING_BUILTINS = {"open", "input"}

    def applies_to(self, path: str) -> bool:
        return self._serve_scope(path)

    def _is_blocking(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id in self._BLOCKING_BUILTINS:
            return func.id
        if isinstance(func, ast.Attribute):
            if func.attr in self._BLOCKING_ATTR_NAMES:
                return func.attr
            if isinstance(func.value, ast.Name):
                if (func.value.id, func.attr) in self._BLOCKING_ATTRS:
                    return f"{func.value.id}.{func.attr}"
        return None

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        # Map every node to its *innermost* enclosing function node, so a
        # sync helper nested inside an async def is attributed to itself.
        owner: Dict[ast.AST, Optional[ast.AST]] = {}

        def visit(node: ast.AST, current: Optional[ast.AST]) -> None:
            owner[node] = current
            child_owner = current
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_owner = node
            for child in ast.iter_child_nodes(node):
                visit(child, child_owner)

        visit(tree, None)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(owner.get(node), ast.AsyncFunctionDef):
                continue
            blocked = self._is_blocking(node)
            if blocked is not None:
                yield LintFinding(
                    rule=self.id,
                    message=(
                        f"blocking call {blocked!r} inside an async function "
                        "stalls the event loop; use run_in_executor or an "
                        "async equivalent"
                    ),
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                )


class RPC007UnguardedGlobalMutation(LintRule):
    """No unguarded writes to ``global`` names from function bodies.

    A function that declares ``global state`` and rebinds it from a
    request path races every other server thread reading it.  A write
    inside a ``with`` block whose context expression mentions a lock
    (identifier containing ``lock``) counts as guarded.
    """

    id = "RPC007"
    description = "unguarded assignment to a global from a function body"

    def applies_to(self, path: str) -> bool:
        return self._serve_scope(path)

    @staticmethod
    def _target_names(node: ast.AST) -> Iterator[str]:
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                yield from RPC007UnguardedGlobalMutation._target_names(element)

    @staticmethod
    def _is_lock_guard(with_node: ast.With) -> bool:
        for item in with_node.items:
            if any(
                "lock" in name.lower()
                for name in _identifier_names(item.context_expr)
            ):
                return True
        return False

    def check(self, tree: ast.Module, ctx: _FileContext) -> Iterator[LintFinding]:
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: Set[str] = set()
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Global):
                    declared.update(stmt.names)
            if not declared:
                continue
            yield from self._check_body(fn, declared, ctx, guarded=False)

    def _check_body(
        self,
        node: ast.AST,
        declared: Set[str],
        ctx: _FileContext,
        guarded: bool,
    ) -> Iterator[LintFinding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested functions have their own global decls
            child_guarded = guarded
            if isinstance(child, ast.With) and self._is_lock_guard(child):
                child_guarded = True
            if not guarded and isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                hit = sorted(
                    {
                        name
                        for target in targets
                        for name in self._target_names(target)
                        if name in declared
                    }
                )
                if hit:
                    yield LintFinding(
                        rule=self.id,
                        message=(
                            f"unguarded write to global {', '.join(hit)!s}; "
                            "hold a lock around shared-state mutation or "
                            "make the state instance-owned"
                        ),
                        path=ctx.path,
                        line=child.lineno,
                        col=child.col_offset,
                    )
            yield from self._check_body(child, declared, ctx, child_guarded)


ALL_RULES: Tuple[LintRule, ...] = (
    RPC001FloatOnRawWords(),
    RPC002BareWidthConstant(),
    RPC003SilentFloatPromotion(),
    RPC004BareBuiltinRaise(),
    RPC005ModuleMutableState(),
    RPC006BlockingCallInAsync(),
    RPC007UnguardedGlobalMutation(),
)


# ---------------------------------------------------------------------- #
# Engine
# ---------------------------------------------------------------------- #
def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[LintFinding]:
    """Lint one source string with the given rules (default: all rules).

    Path-based scoping is *not* applied here — callers (and fixture tests)
    choose the rules explicitly; :func:`lint_file` applies default scopes.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"cannot parse {path}: {exc}") from exc
    source_lines = source.splitlines()
    ctx = _FileContext(
        path=path,
        source_lines=source_lines,
        suppressions=_collect_suppressions(source_lines),
    )
    findings: List[LintFinding] = []
    for rule in rules if rules is not None else ALL_RULES:
        for finding in rule.check(tree, ctx):
            if not ctx.suppressed(finding.line, finding.rule):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str, rules: Optional[Sequence[LintRule]] = None) -> List[LintFinding]:
    """Lint one file, selecting applicable rules by its path."""
    try:
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    pool = rules if rules is not None else ALL_RULES
    selected = [rule for rule in pool if rule.applies_to(path)]
    if not selected:
        return []
    return lint_source(source, path=path, rules=selected)


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[LintRule]] = None
) -> List[LintFinding]:
    """Lint files and directory trees (``.py`` files, recursively)."""
    findings: List[LintFinding] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, _dirnames, filenames in os.walk(path):
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        findings.extend(
                            lint_file(os.path.join(dirpath, filename), rules=rules)
                        )
        elif path.endswith(".py"):
            findings.extend(lint_file(path, rules=rules))
        else:
            raise LintError(f"not a python file or directory: {path}")
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_findings(findings: Sequence[LintFinding]) -> str:
    """CLI rendering: one line per finding plus a summary line."""
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines)
