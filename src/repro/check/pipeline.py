"""The ``repro.check-report/v2`` end-to-end pipeline certificate.

A v1 certificate (:mod:`repro.check.report`) covers one datapath — the
classifier, a format, a signal stage.  A deployed monitor is a *chain*:
raw ADC words through the fixed-point FIR front end, feature extraction,
the classifier, and (when the native backend is in play) the generated C
kernel.  The v2 schema composes one v1 certificate per stage into a single
end-to-end certificate whose overall verdict is the worst stage verdict,
so "this artifact is safe to serve" is one machine-checkable object.

Stages are named; the canonical chain (emitted by ``repro check --all``)
uses :data:`KNOWN_STAGES` order::

    signal-frontend -> features -> classifier -> native-kernel

but a v2 certificate may carry any non-empty subset (a classifier with no
native backend certifies three stages).  Each stage embeds an unmodified
``repro.check-report/v1`` payload, so existing v1 tooling (witness replay,
the differential selftest) can consume any stage in isolation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import CheckError
from ..fixedpoint.overflow import OverflowMode
from .report import CheckReport, Verdict

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..core.classifier import FixedPointLinearClassifier
    from ..signal.fxfir import FixedPointFir
    from ..stats.scatter import TwoClassStats
    from .certifier import FeatureBounds

__all__ = [
    "PIPELINE_REPORT_SCHEMA",
    "KNOWN_STAGES",
    "StageReport",
    "PipelineReport",
    "certify_pipeline",
    "make_pipeline_certifier",
]

PIPELINE_REPORT_SCHEMA = "repro.check-report/v2"

#: Canonical stage names in pipeline order (other names are permitted).
KNOWN_STAGES: Tuple[str, ...] = (
    "signal-frontend",
    "features",
    "classifier",
    "native-kernel",
)


@dataclass(frozen=True)
class StageReport:
    """One named stage of the pipeline with its v1 certificate."""

    stage: str
    report: CheckReport

    def __post_init__(self) -> None:
        if not self.stage:
            raise CheckError("stage name must be non-empty")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation: stage name + embedded v1 payload."""
        return {"stage": self.stage, "report": self.report.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StageReport":
        """Rebuild a stage from :meth:`to_dict` output."""
        if not isinstance(payload, Mapping) or "stage" not in payload:
            raise CheckError("stage payload must be an object with 'stage'")
        report_payload = payload.get("report")
        if not isinstance(report_payload, Mapping):
            raise CheckError(
                f"stage {payload.get('stage')!r} carries no embedded report"
            )
        return cls(
            stage=str(payload["stage"]),
            report=CheckReport.from_dict(report_payload),
        )


@dataclass(frozen=True)
class PipelineReport:
    """A full ``repro.check-report/v2`` end-to-end certificate.

    Attributes
    ----------
    stages:
        The certified stages, in pipeline order.  At least one is required
        — an empty pipeline certificate would be vacuously PROVEN.
    metadata:
        Chain-level context (artifact path, dataset, front-end config, ...).
        Stage-level context lives on each embedded v1 certificate.
    """

    stages: Tuple[StageReport, ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.stages:
            raise CheckError("pipeline certificate needs at least one stage")
        seen = set()
        for stage in self.stages:
            if stage.stage in seen:
                raise CheckError(f"duplicate pipeline stage {stage.stage!r}")
            seen.add(stage.stage)

    # ------------------------------------------------------------------ #
    @property
    def verdict(self) -> Verdict:
        """Worst stage verdict (VIOLATED > UNKNOWN > PROVEN)."""
        worst = Verdict.PROVEN
        for stage in self.stages:
            if stage.report.verdict.severity > worst.severity:
                worst = stage.report.verdict
        return worst

    @property
    def all_proven(self) -> bool:
        """True iff every invariant of every stage is PROVEN."""
        return self.verdict is Verdict.PROVEN

    @property
    def has_violation(self) -> bool:
        """True iff at least one stage has a VIOLATED invariant."""
        return any(stage.report.has_violation for stage in self.stages)

    @property
    def stage_names(self) -> Tuple[str, ...]:
        """Stage names in pipeline order."""
        return tuple(stage.stage for stage in self.stages)

    def stage(self, name: str) -> StageReport:
        """Look up one stage by name; raises :class:`CheckError` if absent."""
        for stage in self.stages:
            if stage.stage == name:
                return stage
        raise CheckError(f"pipeline certificate has no stage {name!r}")

    def has_stage(self, name: str) -> bool:
        """True when a stage named ``name`` is present."""
        return any(stage.stage == name for stage in self.stages)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON payload (schema ``repro.check-report/v2``)."""
        return {
            "schema": PIPELINE_REPORT_SCHEMA,
            "verdict": self.verdict.value,
            "stages": [stage.to_dict() for stage in self.stages],
            "metadata": dict(self.metadata),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The certificate as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: str) -> None:
        """Write the certificate JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PipelineReport":
        """Rebuild a v2 certificate from :meth:`to_dict` output.

        Like the v1 loader, the stored top-level ``verdict`` is recomputed
        from the stages and a disagreement raises :class:`CheckError`.
        """
        if not isinstance(payload, Mapping):
            raise CheckError(
                f"certificate payload must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != PIPELINE_REPORT_SCHEMA:
            raise CheckError(
                f"unsupported certificate schema {schema!r}; "
                f"expected {PIPELINE_REPORT_SCHEMA!r}"
            )
        stages_payload = payload.get("stages")
        if not isinstance(stages_payload, (list, tuple)):
            raise CheckError("v2 certificate payload must carry a 'stages' list")
        report = cls(
            stages=tuple(StageReport.from_dict(item) for item in stages_payload),
            metadata=dict(payload.get("metadata", {})),
        )
        stored = payload.get("verdict")
        if stored is not None and stored != report.verdict.value:
            raise CheckError(
                f"certificate verdict {stored!r} disagrees with its stages "
                f"({report.verdict.value})"
            )
        return report

    @classmethod
    def load(cls, path: str) -> "PipelineReport":
        """Read a certificate written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Multi-line human-readable rendering used by the CLI."""
        lines = [
            f"certificate {PIPELINE_REPORT_SCHEMA} — "
            f"{len(self.stages)} stage(s): {' -> '.join(self.stage_names)}"
        ]
        for stage in self.stages:
            mark = {"PROVEN": "+", "VIOLATED": "!", "UNKNOWN": "?"}[
                stage.report.verdict.value
            ]
            lines.append(f"[{mark}] stage {stage.stage}: {stage.report.verdict.value}")
            for line in stage.report.summary().splitlines():
                lines.append(f"    {line}")
        lines.append(f"overall: {self.verdict.value}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# End-to-end composition
# ---------------------------------------------------------------------- #
def certify_pipeline(
    classifier: "FixedPointLinearClassifier",
    fir: "Optional[FixedPointFir]" = None,
    feature_bounds: "Optional[FeatureBounds]" = None,
    stats: "Optional[TwoClassStats]" = None,
    rho: float = 0.99,
    samples: Optional[np.ndarray] = None,
    worst_case: bool = True,
    overflow: "OverflowMode | str" = OverflowMode.WRAP,
    include_native: Optional[bool] = None,
    scale_margin: float = 0.45,
    input_bounds: Optional[Tuple[float, float]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> PipelineReport:
    """Certify the whole signal chain into one v2 certificate.

    Stages (in :data:`KNOWN_STAGES` order):

    - ``signal-frontend`` — :func:`~repro.check.signal_certifier.certify_fir`
      on the fixed-point FIR front end (skipped when ``fir`` is None, e.g.
      an artifact served on pre-extracted features).
    - ``features`` — band-power extraction bounds feeding the classifier
      format (:func:`~repro.check.signal_certifier.certify_feature_extraction`;
      also needs ``fir``).
    - ``classifier`` — the Eq. 16-20 datapath certificate
      (:func:`~repro.check.certifier.certify_classifier`), always present.
    - ``native-kernel`` — UB proofs over the generated C
      (:func:`~repro.check.native_ub.certify_native_kernel`).
      ``include_native=None`` (auto) includes the stage only when the
      classifier admits a kernel; ``True`` forces it (a non-generable
      classifier then carries a VIOLATED ``native-kernel-generable``);
      ``False`` skips it.

    ``input_bounds`` are real-valued bounds on the raw input samples
    feeding the FIR; ``feature_bounds``/``stats``/``samples`` are the
    classifier-stage evidence (see
    :func:`~repro.check.certifier.dataset_evidence`).
    """
    from .certifier import certify_classifier
    from .native_ub import certify_native_kernel
    from .signal_certifier import certify_feature_extraction, certify_fir

    stages = []
    if fir is not None:
        stages.append(
            StageReport(
                stage="signal-frontend",
                report=certify_fir(fir, input_bounds=input_bounds),
            )
        )
        stages.append(
            StageReport(
                stage="features",
                report=certify_feature_extraction(
                    fir,
                    classifier.fmt,
                    scale_margin=scale_margin,
                    input_bounds=input_bounds,
                ),
            )
        )
    stages.append(
        StageReport(
            stage="classifier",
            report=certify_classifier(
                classifier,
                feature_bounds=feature_bounds,
                stats=stats,
                rho=rho,
                samples=samples,
                worst_case=worst_case,
            ),
        )
    )
    if include_native is None:
        from ..serve.engine import int64_path_available

        include_native = int64_path_available(
            classifier.fmt, classifier.num_features
        )
    if include_native:
        stages.append(
            StageReport(
                stage="native-kernel",
                report=certify_native_kernel(
                    classifier,
                    overflow=overflow,
                    feature_bounds=feature_bounds,
                ),
            )
        )
    meta: Dict[str, Any] = {
        "overflow": OverflowMode.coerce(overflow).value,
        "fir_present": fir is not None,
    }
    if metadata:
        meta.update(metadata)
    return PipelineReport(stages=tuple(stages), metadata=meta)


def make_pipeline_certifier(
    fir: "Optional[FixedPointFir]" = None,
    feature_bounds: "Optional[FeatureBounds]" = None,
    stats: "Optional[TwoClassStats]" = None,
    rho: float = 0.99,
    samples: Optional[np.ndarray] = None,
    worst_case: bool = True,
    overflow: "OverflowMode | str" = OverflowMode.WRAP,
    include_native: Optional[bool] = None,
    input_bounds: Optional[Tuple[float, float]] = None,
) -> "Callable[[FixedPointLinearClassifier], PipelineReport]":
    """A one-argument v2 certifier closure for :class:`ModelRegistry`.

    The registry's ``require_signal_certified=True`` gate needs the
    certificate to carry a ``signal-frontend`` stage, so pass the deployed
    front end's ``fir`` here.
    """

    def certifier(classifier: "FixedPointLinearClassifier") -> PipelineReport:
        return certify_pipeline(
            classifier,
            fir=fir,
            feature_bounds=feature_bounds,
            stats=stats,
            rho=rho,
            samples=samples,
            worst_case=worst_case,
            overflow=overflow,
            include_native=include_native,
            input_bounds=input_bounds,
        )

    return certifier
