"""Differential validation of the certifier against the bit-exact datapath.

The certifier's verdicts are claims about what
:class:`~repro.fixedpoint.datapath.FixedPointDatapath` will do; this module
checks them *by running the datapath*:

- every sampled admissible input must land inside the certified interval
  bounds (soundness of the abstraction);
- ``PROVEN`` invariants must hold on corner and random inputs — in
  particular a PROVEN ``decision-range`` means the wrapping hardware result
  equals the exact value on every sample (the paper's Section 3 claim);
- ``VIOLATED`` invariants must come with a witness that actually overflows
  when replayed through the simulator.

:func:`verify_report_by_simulation` checks one certificate;
:func:`selftest` sweeps a fixed set of formats/feature counts and raises
:class:`~repro.errors.CheckError` on the first disagreement.  The CI
static-checks job runs ``repro check --selftest``; the pytest differential
suite reuses the same functions over a wider sweep.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from ..core.classifier import FixedPointLinearClassifier
from ..errors import CheckError
from ..fixedpoint.datapath import DatapathTrace
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import RoundingMode, shift_right_rounded
from .certifier import FeatureBounds, certify_classifier
from .report import CheckReport, Verdict

__all__ = ["verify_report_by_simulation", "selftest"]


def _fail(message: str) -> None:
    raise CheckError(f"certifier/simulator disagreement: {message}")


def _exact_products(
    weight_raws: Sequence[int],
    x_raws: Sequence[int],
    fmt: QFormat,
    rounding: RoundingMode,
) -> List[int]:
    return [
        shift_right_rounded(w * x, fmt.fraction_bits, rounding)
        for w, x in zip(weight_raws, x_raws)
    ]


def _sample_vectors(
    intervals: Sequence["tuple[int, int]"],
    samples: int,
    seed: int,
) -> List[List[int]]:
    """Corner vectors plus uniform random on-grid vectors, as raw words."""
    rng = random.Random(seed)
    vectors = [
        [lo for lo, _ in intervals],
        [hi for _, hi in intervals],
    ]
    for _ in range(samples):
        vectors.append([rng.randint(lo, hi) for lo, hi in intervals])
    return vectors


def verify_report_by_simulation(
    report: CheckReport,
    classifier: FixedPointLinearClassifier,
    feature_bounds: Optional[FeatureBounds] = None,
    samples: int = 64,
    seed: int = 0,
) -> None:
    """Check one classifier certificate against the RTL-equivalent simulator.

    Raises :class:`~repro.errors.CheckError` on the first disagreement;
    returns ``None`` when every verdict is corroborated.  Only exact-mode
    invariants are checked (statistical verdicts are confidence statements,
    not worst-case claims).
    """
    fmt = classifier.fmt
    rounding = classifier.rounding
    if feature_bounds is None:
        feature_bounds = FeatureBounds.from_format(fmt, classifier.num_features)
    intervals = feature_bounds.raw_intervals(fmt, rounding)
    weight_raws = [
        int(r) for r in np.atleast_1d(np.asarray(fmt.to_raw(classifier.weights)))
    ]
    threshold_raw = int(fmt.to_raw(classifier.threshold))
    datapath = classifier.datapath(overflow=OverflowMode.WRAP)

    product_inv = report.invariant("product-range")
    acc_inv = report.invariant("accumulator-range")
    dec_inv = report.invariant("decision-range")
    assert product_inv.bounds and acc_inv.bounds and dec_inv.bounds

    def replay(x_raws: Sequence[int]) -> DatapathTrace:
        features = [float(fmt.to_real(int(x))) for x in x_raws]
        return datapath.project_traced(features)

    # ---------------- sampled soundness + PROVEN corroboration ---------- #
    for x_raws in _sample_vectors(intervals, samples, seed):
        trace = replay(x_raws)
        products = _exact_products(weight_raws, x_raws, fmt, rounding)
        exact_sum = sum(products)
        exact_dec = exact_sum - threshold_raw

        if not (
            int(product_inv.bounds["lo_raw"])
            <= min(products)
            <= max(products)
            <= int(product_inv.bounds["hi_raw"])
        ):
            _fail(f"observed product outside certified bounds for x={x_raws}")
        if not int(acc_inv.bounds["lo_raw"]) <= exact_sum <= int(acc_inv.bounds["hi_raw"]):
            _fail(f"observed sum {exact_sum} outside certified bounds")
        if not int(dec_inv.bounds["lo_raw"]) <= exact_dec <= int(dec_inv.bounds["hi_raw"]):
            _fail(f"observed decision {exact_dec} outside certified bounds")

        if product_inv.verdict is Verdict.PROVEN and trace.any_product_overflow:
            _fail(f"product-range PROVEN but simulator overflowed on x={x_raws}")
        if acc_inv.verdict is Verdict.PROVEN and not (
            fmt.min_raw <= exact_sum <= fmt.max_raw
        ):
            _fail(f"accumulator-range PROVEN but exact sum {exact_sum} overflows")
        if dec_inv.verdict is Verdict.PROVEN:
            if not fmt.min_raw <= exact_dec <= fmt.max_raw:
                _fail(f"decision-range PROVEN but exact value {exact_dec} overflows")
            if trace.result_raw != exact_dec:
                _fail(
                    "decision-range PROVEN but wrapped result "
                    f"{trace.result_raw} != exact {exact_dec}"
                )

    # ---------------- witness replay for VIOLATED verdicts --------------- #
    if product_inv.verdict is Verdict.VIOLATED:
        assert product_inv.witness is not None
        index = int(product_inv.witness["feature_index"])
        x_raws = [lo for lo, _ in intervals]
        x_raws[index] = int(product_inv.witness["feature_raw"])
        trace = replay(x_raws)
        if not trace.product_overflowed[index]:
            _fail(f"product-range witness at feature {index} does not overflow")

    if acc_inv.verdict is Verdict.VIOLATED:
        assert acc_inv.witness is not None
        x_raws = [int(x) for x in acc_inv.witness["feature_raws"]]
        products = _exact_products(weight_raws, x_raws, fmt, rounding)
        exact_sum = sum(products)
        if exact_sum != int(acc_inv.witness["sum_raw"]):
            _fail(f"accumulator witness sum {exact_sum} != certified value")
        if fmt.min_raw <= exact_sum <= fmt.max_raw:
            _fail("accumulator-range witness does not overflow")

    if dec_inv.verdict is Verdict.VIOLATED:
        assert dec_inv.witness is not None
        x_raws = [int(x) for x in dec_inv.witness["feature_raws"]]
        trace = replay(x_raws)
        products = _exact_products(weight_raws, x_raws, fmt, rounding)
        exact_dec = sum(products) - threshold_raw
        if exact_dec != int(dec_inv.witness["decision_raw"]):
            _fail(f"decision witness value {exact_dec} != certified value")
        if fmt.min_raw <= exact_dec <= fmt.max_raw:
            _fail("decision-range witness does not overflow")
        if trace.result_raw == exact_dec:
            _fail("decision-range witness wraps onto the exact value")


def _random_classifier(
    fmt: QFormat, num_features: int, rng: random.Random
) -> FixedPointLinearClassifier:
    """A grid-exact classifier with uniform random raw weights/threshold."""
    weight_raws = [rng.randint(fmt.min_raw, fmt.max_raw) for _ in range(num_features)]
    threshold_raw = rng.randint(fmt.min_raw, fmt.max_raw)
    weights = np.array([fmt.to_real(w) for w in weight_raws], dtype=np.float64)
    return FixedPointLinearClassifier(
        weights=weights,
        threshold=float(fmt.to_real(threshold_raw)),
        fmt=fmt,
    )


def _random_bounds(
    fmt: QFormat, num_features: int, rng: random.Random
) -> FeatureBounds:
    """Random per-feature subranges of the format's range."""
    lo, hi = [], []
    for _ in range(num_features):
        a = rng.randint(fmt.min_raw, fmt.max_raw)
        b = rng.randint(fmt.min_raw, fmt.max_raw)
        if a > b:
            a, b = b, a
        lo.append(float(fmt.to_real(a)))
        hi.append(float(fmt.to_real(b)))
    return FeatureBounds(lo=np.array(lo), hi=np.array(hi), source="explicit")


def selftest(samples: int = 32, seed: int = 0) -> int:
    """Differentially validate the certifier over a fixed format sweep.

    Returns the number of certificates checked; raises
    :class:`~repro.errors.CheckError` on the first certifier/simulator
    disagreement.  Small formats with full-range weights exercise VIOLATED
    paths; narrow feature bounds exercise PROVEN paths.
    """
    configs = [
        (QFormat(2, 2), 2),
        (QFormat(2, 4), 3),
        (QFormat(3, 3), 4),
        (QFormat(4, 4), 5),
        (QFormat(2, 6), 8),
    ]
    rng = random.Random(seed)
    checked = 0
    for fmt, num_features in configs:
        for case in range(3):
            classifier = _random_classifier(fmt, num_features, rng)
            bounds = (
                None  # full format range: overflow-prone, exercises VIOLATED
                if case == 0
                else _random_bounds(fmt, num_features, rng)
            )
            report = certify_classifier(classifier, feature_bounds=bounds)
            verify_report_by_simulation(
                report,
                classifier,
                feature_bounds=bounds,
                samples=samples,
                seed=rng.randint(0, 2**31),
            )
            checked += 1
    return checked
