"""Static overflow/width certification of the classifier datapath.

The paper's core guarantee (Section 3, Eq. 16-20) is that with
two's-complement *wrapping* arithmetic, intermediate sums of the dot
product may overflow freely: the final register holds the exact value of
``w'x - threshold`` if and only if that exact value is representable in
``QK.F``.  The serving stack verifies this dynamically (wrap-event
counters); this module proves or refutes it **statically**, before any
sample is run, by abstract interpretation over raw integer words.

The abstraction is interval propagation made *exact*: for a fixed weight
word ``w`` the narrowed product ``shift_right_rounded(w * x, F)`` is
monotone in ``x`` (and bilinear over a ``(w, x)`` box), so evaluating the
interval corners in unbounded Python-int arithmetic yields the true
attainable min/max of every datapath node — per-feature products (Eq. 18),
the accumulated projection (Eq. 16-17 worst case), and the final decision
value.  Because every feature coordinate varies independently, interval
sums are attainable too, which is why exact-mode verdicts come with
replayable witnesses: a VIOLATED invariant names a concrete on-grid input
vector that any bit-exact simulator overflows on, and the differential
tests replay exactly that.

A second, *statistical* family of invariants re-checks the same nodes
under the paper's own Gaussian model at confidence ``rho`` (reusing
:mod:`repro.wordlength.range_analysis`), which is how the LDA-FP solver
constrained them during training.

Results are emitted as a :class:`~repro.check.report.CheckReport`
(``repro.check-report/v1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.classifier import FixedPointLinearClassifier
from ..errors import CheckError, DataError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.quantize import quantize_raw
from ..fixedpoint.rounding import RoundingMode, shift_right_rounded
from ..serve.engine import int64_path_available
from ..stats.scatter import TwoClassStats
from ..wordlength.range_analysis import statistical_ranges
from .report import CheckReport, Invariant, Verdict

__all__ = [
    "FeatureBounds",
    "certify_classifier",
    "certify_format",
    "dataset_evidence",
    "make_certifier",
]

# The serving engine's int64 fast path holds 63 magnitude bits; see
# repro.serve.engine.int64_path_available.
_INT64_MAGNITUDE_BITS = 63


@dataclass(frozen=True)
class FeatureBounds:
    """Per-feature real-valued input bounds ``[lo_m, hi_m]``.

    The certifier admits every input whose quantized raw word lies between
    the quantizations of ``lo`` and ``hi`` (quantization is monotone, so
    that set is exactly the grid points of the interval).  Bounds wider
    than the format's range are harmless: input quantization saturates, so
    they clip to the representable range.
    """

    lo: np.ndarray
    hi: np.ndarray
    source: str = "explicit"

    def __post_init__(self) -> None:
        lo = np.atleast_1d(np.asarray(self.lo, dtype=np.float64))
        hi = np.atleast_1d(np.asarray(self.hi, dtype=np.float64))
        if lo.shape != hi.shape or lo.ndim != 1:
            raise DataError(
                f"feature bounds must be matching vectors, got {lo.shape} / {hi.shape}"
            )
        if not (np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))):
            raise DataError("feature bounds must be finite")
        if np.any(hi < lo):
            raise DataError("feature bounds cross (hi < lo)")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @property
    def num_features(self) -> int:
        """Number of feature coordinates covered by the bounds."""
        return int(self.lo.shape[0])

    # ------------------------------------------------------------------ #
    @classmethod
    def from_format(cls, fmt: QFormat, num_features: int) -> "FeatureBounds":
        """The widest admissible bounds: the format's own range.

        This is what input-quantization saturation enforces, so it is the
        sound default when nothing is known about the data.
        """
        if num_features < 1:
            raise DataError(f"num_features must be >= 1, got {num_features}")
        return cls(
            lo=np.full(num_features, fmt.min_value),
            hi=np.full(num_features, fmt.max_value),
            source="format-range",
        )

    @classmethod
    def from_data(cls, features: np.ndarray, margin: float = 0.0) -> "FeatureBounds":
        """Empirical per-feature min/max, optionally widened.

        ``margin`` widens each side by that fraction of the feature's
        empirical range (``margin=0.05`` adds 5% headroom per side), so a
        certificate generalizes a little beyond the exact sample set.
        """
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.size == 0:
            raise DataError(f"features must be a non-empty (N, M) array, got {x.shape}")
        if margin < 0.0:
            raise DataError(f"margin must be >= 0, got {margin}")
        lo = np.min(x, axis=0)
        hi = np.max(x, axis=0)
        slack = margin * (hi - lo)
        return cls(lo=lo - slack, hi=hi + slack, source="dataset")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (conformance-witness hook): floats stay exact
        through a JSON round-trip, so the rebuilt bounds are bit-identical."""
        return {
            "lo": [float(v) for v in self.lo],
            "hi": [float(v) for v in self.hi],
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FeatureBounds":
        """Rebuild bounds serialized by :meth:`to_dict`."""
        if not isinstance(payload, dict) or "lo" not in payload or "hi" not in payload:
            raise DataError("feature-bounds payload must have 'lo' and 'hi' lists")
        return cls(
            lo=np.asarray(payload["lo"], dtype=np.float64),
            hi=np.asarray(payload["hi"], dtype=np.float64),
            source=str(payload.get("source", "explicit")),
        )

    def raw_intervals(
        self, fmt: QFormat, rounding: "RoundingMode | str"
    ) -> List[Tuple[int, int]]:
        """Per-feature attainable raw-word intervals after quantization."""
        lo_raws = quantize_raw(self.lo, fmt, rounding=rounding)
        hi_raws = quantize_raw(self.hi, fmt, rounding=rounding)
        return [
            (int(lo), int(hi))
            for lo, hi in zip(np.atleast_1d(lo_raws), np.atleast_1d(hi_raws))
        ]


# ---------------------------------------------------------------------- #
# Exact interval propagation over raw words
# ---------------------------------------------------------------------- #
def _narrowed_product(w: int, x: int, fraction_bits: int, rounding: RoundingMode) -> int:
    """The datapath's narrowed product of two raw words, exactly."""
    return shift_right_rounded(w * x, fraction_bits, rounding)


def _product_interval(
    w_lo: int,
    w_hi: int,
    x_lo: int,
    x_hi: int,
    fraction_bits: int,
    rounding: RoundingMode,
) -> Tuple[Tuple[int, int, int], Tuple[int, int, int]]:
    """Exact min/max of the narrowed product over a ``(w, x)`` raw box.

    ``w * x`` is bilinear over the box (extremes at corners) and the
    narrowing shift is monotone, so corner evaluation is exact.  Returns
    ``((min_value, w, x), (max_value, w, x))`` with the attaining corners.
    """
    corners = [
        (w, x)
        for w in ({w_lo, w_hi})
        for x in ({x_lo, x_hi})
    ]
    values = [
        (_narrowed_product(w, x, fraction_bits, rounding), w, x) for w, x in corners
    ]
    return min(values), max(values)


def _interval_invariant(
    invariant_id: str,
    description: str,
    lo: int,
    hi: int,
    fmt: QFormat,
    attainable: bool,
    witness_lo: Optional[Dict[str, Any]],
    witness_hi: Optional[Dict[str, Any]],
    detail_ok: str = "",
) -> Invariant:
    """Build an exact-mode invariant from a raw-word interval.

    ``attainable`` distinguishes the degenerate-weight (trained classifier)
    case, where an out-of-range bound is a replayable VIOLATED witness,
    from the weight-box case, where it only means *some* classifier in the
    box could overflow — reported as UNKNOWN.
    """
    bounds = {
        "lo_raw": int(lo),
        "hi_raw": int(hi),
        "min_raw": fmt.min_raw,
        "max_raw": fmt.max_raw,
    }
    below = lo < fmt.min_raw
    above = hi > fmt.max_raw
    if not below and not above:
        return Invariant(
            id=invariant_id,
            description=description,
            verdict=Verdict.PROVEN,
            mode="exact",
            bounds=bounds,
            detail=detail_ok,
        )
    witness = witness_hi if above else witness_lo
    side = "above max_raw" if above else "below min_raw"
    if attainable:
        return Invariant(
            id=invariant_id,
            description=description,
            verdict=Verdict.VIOLATED,
            mode="exact",
            bounds=bounds,
            witness=witness,
            detail=f"attainable value {side}",
        )
    return Invariant(
        id=invariant_id,
        description=description,
        verdict=Verdict.UNKNOWN,
        mode="exact",
        bounds=bounds,
        detail=(
            f"some classifier in the weight box reaches {side}; "
            "no single-classifier witness is implied"
        ),
    )


def _structural_invariants(fmt: QFormat, num_features: int) -> List[Invariant]:
    """Invariants depending only on the format and feature count."""
    carry_bits = math.ceil(math.log2(max(int(num_features), 2)))
    required = 2 * fmt.word_length + carry_bits
    available = _INT64_MAGNITUDE_BITS
    ok = int64_path_available(fmt, num_features)
    return [
        Invariant(
            id="int64-fast-path",
            description=(
                "serving engine int64 fast path is exact: "
                "2*(K+F) + ceil(log2 M) <= 63"
            ),
            verdict=Verdict.PROVEN if ok else Verdict.VIOLATED,
            mode="structural",
            bounds={
                "required_bits": required,
                "available_bits": available,
                "word_length": fmt.word_length,
                "num_features": int(num_features),
            },
            detail=(
                ""
                if ok
                else "engine falls back to the unbounded-int object path"
            ),
        )
    ]


def _sum_witness(
    fmt: QFormat,
    x_choices: List[int],
    total: int,
    key: str,
) -> Dict[str, Any]:
    """A replayable witness vector for a sum-type violation."""
    return {
        "features": [float(fmt.to_real(x)) for x in x_choices],
        "feature_raws": [int(x) for x in x_choices],
        key: int(total),
    }


def _exact_invariants(
    fmt: QFormat,
    rounding: RoundingMode,
    weight_boxes: List[Tuple[int, int]],
    threshold_box: Tuple[int, int],
    feature_bounds: FeatureBounds,
    worst_case: bool = True,
) -> List[Invariant]:
    """The exact-mode invariant family over raw-word boxes.

    ``weight_boxes`` / ``threshold_box`` are degenerate (lo == hi) when a
    trained classifier is being certified; then every bound is attainable
    and violations carry witnesses.  ``worst_case=False`` keeps only the
    per-feature product invariant (the box-corner sum claims are stronger
    than what statistical training guarantees).
    """
    m = len(weight_boxes)
    if feature_bounds.num_features != m:
        raise DataError(
            f"feature bounds cover {feature_bounds.num_features} features, "
            f"classifier has {m}"
        )
    x_boxes = feature_bounds.raw_intervals(fmt, rounding)
    degenerate = all(lo == hi for lo, hi in weight_boxes) and (
        threshold_box[0] == threshold_box[1]
    )

    product_lo: List[Tuple[int, int, int]] = []
    product_hi: List[Tuple[int, int, int]] = []
    for (w_lo, w_hi), (x_lo, x_hi) in zip(weight_boxes, x_boxes):
        lo, hi = _product_interval(w_lo, w_hi, x_lo, x_hi, fmt.fraction_bits, rounding)
        product_lo.append(lo)
        product_hi.append(hi)

    # Eq. 18: each narrowed product must be representable.
    worst_lo = min(range(m), key=lambda i: product_lo[i][0])
    worst_hi = max(range(m), key=lambda i: product_hi[i][0])
    prod_min = product_lo[worst_lo][0]
    prod_max = product_hi[worst_hi][0]

    def product_witness(index: int, corner: Tuple[int, int, int]) -> Dict[str, Any]:
        value, w, x = corner
        return {
            "feature_index": index,
            "feature": float(fmt.to_real(x)),
            "feature_raw": int(x),
            "weight": float(fmt.to_real(w)),
            "weight_raw": int(w),
            "product_raw": int(value),
        }

    invariants = [
        _interval_invariant(
            "product-range",
            "per-feature narrowed products w_m * x_m stay in QK.F (Eq. 18)",
            prod_min,
            prod_max,
            fmt,
            attainable=degenerate,
            witness_lo=product_witness(worst_lo, product_lo[worst_lo]),
            witness_hi=product_witness(worst_hi, product_hi[worst_hi]),
        )
    ]

    if not worst_case:
        return invariants

    # Eq. 16-17 worst case: the exact projection sum.  Feature coordinates
    # vary independently, so the interval sum is attained by the
    # per-feature extreme choices.
    sum_lo = sum(corner[0] for corner in product_lo)
    sum_hi = sum(corner[0] for corner in product_hi)
    x_for_lo = [corner[2] for corner in product_lo]
    x_for_hi = [corner[2] for corner in product_hi]
    invariants.append(
        _interval_invariant(
            "accumulator-range",
            "the exact projection sum w'x stays in QK.F (Eq. 16-17, worst case)",
            sum_lo,
            sum_hi,
            fmt,
            attainable=degenerate,
            witness_lo=_sum_witness(fmt, x_for_lo, sum_lo, "sum_raw"),
            witness_hi=_sum_witness(fmt, x_for_hi, sum_hi, "sum_raw"),
            detail_ok="intermediate wrap-and-recover is certified safe",
        )
    )

    # Final decision value: with wrapping arithmetic the congruence
    # result == w'x - t (mod 2**(K+F)) always holds, so the hardware result
    # is exact iff the exact decision value is representable — the paper's
    # central claim, certified here.
    t_lo, t_hi = threshold_box
    dec_lo = sum_lo - t_hi
    dec_hi = sum_hi - t_lo
    invariants.append(
        _interval_invariant(
            "decision-range",
            "the exact decision value w'x - threshold stays in QK.F (Eq. 12, 20)",
            dec_lo,
            dec_hi,
            fmt,
            attainable=degenerate,
            witness_lo=_sum_witness(fmt, x_for_lo, dec_lo, "decision_raw"),
            witness_hi=_sum_witness(fmt, x_for_hi, dec_hi, "decision_raw"),
        )
    )
    return invariants


def _statistical_invariants(
    fmt: QFormat,
    weights: np.ndarray,
    threshold: float,
    stats: TwoClassStats,
    rho: float,
    include_decision: bool = True,
) -> List[Invariant]:
    """Gaussian-model invariants at confidence ``rho`` (Eq. 16-20).

    ``include_decision`` gates the decision-node invariant: the LDA-FP
    solver constrains products (Eq. 18) and the projection (Eq. 16-17) but
    not the subtraction node, so demanding it refutes legitimately trained
    classifiers; see :func:`certify_classifier`'s ``worst_case``.
    """
    if not 0.0 < rho < 1.0:
        raise CheckError(f"rho must be in (0, 1), got {rho}")
    ranges = statistical_ranges(stats, weights, threshold, rho=rho)

    def real_invariant(
        invariant_id: str, description: str, lo: float, hi: float
    ) -> Invariant:
        bounds = {
            "lo": float(lo),
            "hi": float(hi),
            "min_value": fmt.min_value,
            "max_value": fmt.max_value,
        }
        inside = lo >= fmt.min_value and hi <= fmt.max_value
        return Invariant(
            id=invariant_id,
            description=description,
            verdict=Verdict.PROVEN if inside else Verdict.VIOLATED,
            mode="statistical",
            bounds=bounds,
            confidence=rho,
            detail=(
                ""
                if inside
                else "the beta-sigma interval exceeds the representable range"
            ),
        )

    prod_lo = float(np.min(ranges.products[:, 0]))
    prod_hi = float(np.max(ranges.products[:, 1]))
    invariants = [
        real_invariant(
            "product-range-statistical",
            "per-feature products stay in QK.F at confidence rho (Eq. 18)",
            prod_lo,
            prod_hi,
        ),
        real_invariant(
            "accumulator-range-statistical",
            "the projection w'x stays in QK.F at confidence rho (Eq. 16-17)",
            ranges.accumulator[0],
            ranges.accumulator[1],
        ),
    ]
    if include_decision:
        invariants.append(
            real_invariant(
                "decision-range-statistical",
                "the decision value stays in QK.F at confidence rho (Eq. 20)",
                ranges.decision[0],
                ranges.decision[1],
            )
        )
    return invariants


def _empirical_invariants(
    fmt: QFormat,
    rounding: RoundingMode,
    weight_raws: List[int],
    threshold_raw: int,
    samples: np.ndarray,
) -> List[Invariant]:
    """Exact per-sample invariants over a concrete (scaled) dataset.

    These certify what the training pipeline actually establishes: on every
    quantized training sample, the exact accumulated projection and the
    exact decision value stay representable.  Violations carry the
    offending sample as a replayable witness.  (Per-feature product bounds
    over the empirical box already equal the per-sample extremes, so
    products are covered by the exact ``product-range`` invariant.)
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 2 or x.size == 0:
        raise DataError(f"samples must be a non-empty (N, M) array, got {x.shape}")
    if x.shape[1] != len(weight_raws):
        raise DataError(
            f"samples have {x.shape[1]} features, classifier has {len(weight_raws)}"
        )
    x_raws = np.asarray(quantize_raw(x, fmt, rounding=rounding))

    sum_lo = sum_hi = dec_lo = dec_hi = None
    sum_witness: Optional[Dict[str, Any]] = None
    dec_witness: Optional[Dict[str, Any]] = None
    for index, row in enumerate(x_raws):
        row_ints = [int(v) for v in row]
        total = sum(
            _narrowed_product(w, v, fmt.fraction_bits, rounding)
            for w, v in zip(weight_raws, row_ints)
        )
        decision = total - threshold_raw
        if sum_lo is None or total < sum_lo:
            sum_lo = total
        if sum_hi is None or total > sum_hi:
            sum_hi = total
        if dec_lo is None or decision < dec_lo:
            dec_lo = decision
        if dec_hi is None or decision > dec_hi:
            dec_hi = decision
        if sum_witness is None and not fmt.min_raw <= total <= fmt.max_raw:
            sum_witness = _sum_witness(fmt, row_ints, total, "sum_raw")
            sum_witness["sample_index"] = index
        if dec_witness is None and not fmt.min_raw <= decision <= fmt.max_raw:
            dec_witness = _sum_witness(fmt, row_ints, decision, "decision_raw")
            dec_witness["sample_index"] = index

    assert sum_lo is not None and sum_hi is not None
    assert dec_lo is not None and dec_hi is not None

    def empirical(
        invariant_id: str,
        description: str,
        lo: int,
        hi: int,
        witness: Optional[Dict[str, Any]],
    ) -> Invariant:
        bounds = {
            "lo_raw": int(lo),
            "hi_raw": int(hi),
            "min_raw": fmt.min_raw,
            "max_raw": fmt.max_raw,
            "num_samples": int(x.shape[0]),
        }
        if witness is None:
            return Invariant(
                id=invariant_id,
                description=description,
                verdict=Verdict.PROVEN,
                mode="empirical",
                bounds=bounds,
            )
        return Invariant(
            id=invariant_id,
            description=description,
            verdict=Verdict.VIOLATED,
            mode="empirical",
            bounds=bounds,
            witness=witness,
            detail=f"sample {witness['sample_index']} overflows",
        )

    return [
        empirical(
            "accumulator-range-empirical",
            "the exact projection w'x stays in QK.F on every dataset sample",
            sum_lo,
            sum_hi,
            sum_witness,
        ),
        empirical(
            "decision-range-empirical",
            "the exact decision value stays in QK.F on every dataset sample",
            dec_lo,
            dec_hi,
            dec_witness,
        ),
    ]


# ---------------------------------------------------------------------- #
# Public entry points
# ---------------------------------------------------------------------- #
def certify_classifier(
    classifier: FixedPointLinearClassifier,
    feature_bounds: Optional[FeatureBounds] = None,
    stats: Optional[TwoClassStats] = None,
    rho: float = 0.99,
    samples: Optional[np.ndarray] = None,
    worst_case: bool = True,
    metadata: Optional[Dict[str, Any]] = None,
) -> CheckReport:
    """Statically certify a trained classifier's datapath invariants.

    Parameters
    ----------
    classifier:
        The trained (grid-exact) classifier.
    feature_bounds:
        Admissible input region; defaults to the format's full range (what
        saturation enforces) — sound but usually far wider than any scaled
        dataset, so prefer dataset-derived bounds when available.
    stats:
        Two-class statistics of the (scaled, quantized) training data.
        When given, the statistical invariant family (the constraints the
        LDA-FP solver actually imposed) is certified at confidence ``rho``.
    rho:
        Confidence level of the statistical invariants (paper Eq. 16).
    samples:
        ``(N, M)`` scaled real feature rows (the training set after the
        pipeline's scaler).  When given, exact per-sample accumulator and
        decision invariants are certified (``*-range-empirical``).
    worst_case:
        Include the box-corner exact sum invariants and the statistical
        decision invariant.  These are *stronger than what LDA-FP training
        guarantees* (the solver's Eq. 16-18 constraints are statistical and
        do not cover the subtraction node), so ``repro check`` disables
        them in dataset mode; see ``docs/static_checks.md``.
    metadata:
        Extra key/values recorded in the certificate.

    Returns
    -------
    CheckReport
        The ``repro.check-report/v1`` certificate.
    """
    fmt = classifier.fmt
    rounding = classifier.rounding
    if rounding is RoundingMode.STOCHASTIC:
        raise CheckError("stochastic rounding cannot be certified exactly")
    if feature_bounds is None:
        feature_bounds = FeatureBounds.from_format(fmt, classifier.num_features)

    weight_raws = [
        int(r) for r in np.atleast_1d(np.asarray(fmt.to_raw(classifier.weights)))
    ]
    threshold_raw = int(fmt.to_raw(classifier.threshold))

    invariants = _structural_invariants(fmt, classifier.num_features)
    invariants += _exact_invariants(
        fmt,
        rounding,
        [(w, w) for w in weight_raws],
        (threshold_raw, threshold_raw),
        feature_bounds,
        worst_case=worst_case,
    )
    if samples is not None:
        invariants += _empirical_invariants(
            fmt, rounding, weight_raws, threshold_raw, samples
        )
    if stats is not None:
        invariants += _statistical_invariants(
            fmt,
            classifier.weights,
            classifier.threshold,
            stats,
            rho,
            include_decision=worst_case,
        )

    meta: Dict[str, Any] = {"rounding": rounding.value}
    if stats is not None:
        meta["rho"] = float(rho)
    if metadata:
        meta.update(metadata)
    return CheckReport(
        format=str(fmt),
        num_features=classifier.num_features,
        invariants=tuple(invariants),
        subject="classifier",
        bound_source=feature_bounds.source,
        metadata=meta,
    )


def certify_format(
    fmt: QFormat,
    num_features: int,
    feature_bounds: Optional[FeatureBounds] = None,
    weight_bounds: Optional[FeatureBounds] = None,
    rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
    metadata: Optional[Dict[str, Any]] = None,
) -> CheckReport:
    """Certify a ``QK.F`` format *before training* (weight-box mode).

    Weights and threshold range over boxes (default: the format's whole
    range, i.e. "any classifier this format can express"; pass solver box
    constraints for a tighter pre-check).  PROVEN means every classifier in
    the box satisfies the invariant for every admissible input; a bound
    failure is reported as UNKNOWN because no *single* classifier is
    implied to violate it.
    """
    rounding = RoundingMode.coerce(rounding)
    if rounding is RoundingMode.STOCHASTIC:
        raise CheckError("stochastic rounding cannot be certified exactly")
    if num_features < 1:
        raise DataError(f"num_features must be >= 1, got {num_features}")
    if feature_bounds is None:
        feature_bounds = FeatureBounds.from_format(fmt, num_features)
    if weight_bounds is None:
        weight_bounds = FeatureBounds(
            lo=np.full(num_features, fmt.min_value),
            hi=np.full(num_features, fmt.max_value),
            source="format-range",
        )
    if weight_bounds.num_features != num_features:
        raise DataError(
            f"weight bounds cover {weight_bounds.num_features} features, "
            f"expected {num_features}"
        )

    weight_boxes = weight_bounds.raw_intervals(fmt, rounding)
    threshold_box = (fmt.min_raw, fmt.max_raw)
    invariants = _structural_invariants(fmt, num_features)
    invariants += _exact_invariants(
        fmt, rounding, weight_boxes, threshold_box, feature_bounds
    )
    meta: Dict[str, Any] = {"rounding": rounding.value}
    if metadata:
        meta.update(metadata)
    return CheckReport(
        format=str(fmt),
        num_features=num_features,
        invariants=tuple(invariants),
        subject="format",
        bound_source=feature_bounds.source,
        metadata=meta,
    )


def dataset_evidence(
    dataset: Any,
    fmt: QFormat,
    rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
    scale_margin: float = 0.45,
    margin: float = 0.0,
) -> Tuple[FeatureBounds, TwoClassStats, np.ndarray]:
    """Replicate the training pipeline's preprocessing as certificate evidence.

    Mirrors :class:`~repro.core.pipeline.TrainingPipeline`: fit the feature
    scaler (``limit = scale_margin * 2**(K-1)``) on the dataset, scale, and
    quantize to the grid.  Returns the empirical :class:`FeatureBounds` of
    the quantized features (optionally widened by ``margin``), the
    two-class statistics the LDA-FP solver would constrain against, and the
    scaled sample matrix for the empirical invariants.

    ``dataset`` is a :class:`~repro.data.dataset.Dataset` (label 1 = class
    A, matching :func:`~repro.stats.scatter.estimate_two_class_stats`).
    """
    from ..data.scaling import FeatureScaler
    from ..fixedpoint.quantize import quantize
    from ..stats.scatter import estimate_two_class_stats

    rounding = RoundingMode.coerce(rounding)
    scaler = FeatureScaler(limit=scale_margin * 2.0 ** (fmt.integer_bits - 1))
    scaler.fit(dataset.features)
    scaled = np.asarray(scaler.transform(dataset.features), dtype=np.float64)
    quantized = np.asarray(quantize(scaled, fmt, rounding=rounding))
    labels = np.asarray(dataset.labels)
    bounds = FeatureBounds.from_data(quantized, margin=margin)
    stats = estimate_two_class_stats(quantized[labels == 1], quantized[labels == 0])
    return bounds, stats, scaled


def make_certifier(
    feature_bounds: Optional[FeatureBounds] = None,
    stats: Optional[TwoClassStats] = None,
    rho: float = 0.99,
    samples: Optional[np.ndarray] = None,
    worst_case: bool = True,
) -> Callable[[FixedPointLinearClassifier], CheckReport]:
    """A one-argument certifier closure for :class:`ModelRegistry`.

    The registry calls it with each classifier at registration time and
    refuses models whose certificate has a VIOLATED invariant (see
    ``docs/static_checks.md``).
    """

    def certifier(classifier: FixedPointLinearClassifier) -> CheckReport:
        return certify_classifier(
            classifier,
            feature_bounds=feature_bounds,
            stats=stats,
            rho=rho,
            samples=samples,
            worst_case=worst_case,
        )

    return certifier
