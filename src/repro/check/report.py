"""The ``repro.check-report/v1`` certificate schema.

A certificate is the machine-readable outcome of one static-certification
run (:mod:`repro.check.certifier`): a list of named invariants, each with a
verdict, the bounds that establish it, and — when an invariant is VIOLATED
— a concrete witness input that any bit-exact simulator can replay.

Verdict semantics:

- ``PROVEN`` — the invariant holds for *every* input admitted by the bound
  source (exact mode), or at the stated confidence level (statistical
  mode).
- ``VIOLATED`` — a concrete witness exists; exact-mode violations are
  replayable against :class:`~repro.fixedpoint.datapath.FixedPointDatapath`.
- ``UNKNOWN`` — the analysis could not decide (e.g. the final-sum argument
  is invalidated by a violated product constraint, or a weight-box mode
  bound fails without an attainable witness).

The overall certificate verdict is the worst individual verdict
(``VIOLATED`` > ``UNKNOWN`` > ``PROVEN``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import CheckError

__all__ = ["Verdict", "Invariant", "CheckReport", "CHECK_REPORT_SCHEMA"]

CHECK_REPORT_SCHEMA = "repro.check-report/v1"


class Verdict(enum.Enum):
    """Outcome of one invariant (or of a whole certificate)."""

    PROVEN = "PROVEN"
    VIOLATED = "VIOLATED"
    UNKNOWN = "UNKNOWN"

    @property
    def severity(self) -> int:
        """Ordering used to aggregate: VIOLATED > UNKNOWN > PROVEN."""
        return {"PROVEN": 0, "UNKNOWN": 1, "VIOLATED": 2}[self.value]


@dataclass(frozen=True)
class Invariant:
    """One certified property of the datapath.

    Attributes
    ----------
    id:
        Stable machine identifier (e.g. ``"product-range"``).
    description:
        Human-readable statement of the property, with the paper equation
        it encodes where applicable.
    verdict:
        :class:`Verdict` for this invariant.
    mode:
        ``"exact"`` (worst-case interval propagation over attainable raw
        words), ``"empirical"`` (exact evaluation over a concrete dataset's
        samples), ``"statistical"`` (Gaussian bounds at ``confidence``), or
        ``"structural"`` (a property of the format/engine alone).
    bounds:
        The numeric evidence: computed range vs. admissible range, in raw
        words (exact mode) or real values (statistical mode).
    witness:
        For exact VIOLATED verdicts, a replayable counterexample — real
        feature values on the format grid (and the feature index for
        per-product violations).
    confidence:
        ``rho`` for statistical invariants, ``None`` otherwise.
    detail:
        Free-text note (why UNKNOWN, which side overflowed, ...).
    """

    id: str
    description: str
    verdict: Verdict
    mode: str = "exact"
    bounds: Optional[Mapping[str, Any]] = None
    witness: Optional[Mapping[str, Any]] = None
    confidence: Optional[float] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON representation of this invariant."""
        return {
            "id": self.id,
            "description": self.description,
            "verdict": self.verdict.value,
            "mode": self.mode,
            "bounds": dict(self.bounds) if self.bounds is not None else None,
            "witness": dict(self.witness) if self.witness is not None else None,
            "confidence": self.confidence,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Invariant":
        """Rebuild an invariant from :meth:`to_dict` output."""
        try:
            return cls(
                id=str(payload["id"]),
                description=str(payload["description"]),
                verdict=Verdict(payload["verdict"]),
                mode=str(payload.get("mode", "exact")),
                bounds=payload.get("bounds"),
                witness=payload.get("witness"),
                confidence=payload.get("confidence"),
                detail=str(payload.get("detail", "")),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CheckError(f"malformed invariant payload: {exc}") from exc


@dataclass(frozen=True)
class CheckReport:
    """A full ``repro.check-report/v1`` certificate.

    Attributes
    ----------
    format:
        The ``QK.F`` format string the invariants were evaluated against.
    num_features:
        ``M`` — the classifier's feature count.
    invariants:
        The certified invariants, in emission order.
    subject:
        What was certified: ``"classifier"`` (exact trained weights) or
        ``"format"`` (weight-box / a-priori format feasibility).
    bound_source:
        Where feature bounds came from (``"format-range"``, ``"dataset"``,
        ``"explicit"``), recorded so a certificate is self-describing.
    metadata:
        Additional context (artifact path, dataset name, rho, ...).
    """

    format: str
    num_features: int
    invariants: Tuple[Invariant, ...]
    subject: str = "classifier"
    bound_source: str = "format-range"
    metadata: Mapping[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def verdict(self) -> Verdict:
        """Worst individual verdict (VIOLATED > UNKNOWN > PROVEN)."""
        worst = Verdict.PROVEN
        for invariant in self.invariants:
            if invariant.verdict.severity > worst.severity:
                worst = invariant.verdict
        return worst

    @property
    def all_proven(self) -> bool:
        """True iff every invariant is PROVEN."""
        return self.verdict is Verdict.PROVEN

    @property
    def has_violation(self) -> bool:
        """True iff at least one invariant is VIOLATED."""
        return any(i.verdict is Verdict.VIOLATED for i in self.invariants)

    def invariant(self, invariant_id: str) -> Invariant:
        """Look up one invariant by id; raises :class:`CheckError` if absent."""
        for inv in self.invariants:
            if inv.id == invariant_id:
                return inv
        raise CheckError(f"certificate has no invariant {invariant_id!r}")

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON payload (schema ``repro.check-report/v1``)."""
        return {
            "schema": CHECK_REPORT_SCHEMA,
            "format": self.format,
            "num_features": self.num_features,
            "subject": self.subject,
            "bound_source": self.bound_source,
            "verdict": self.verdict.value,
            "invariants": [inv.to_dict() for inv in self.invariants],
            "metadata": dict(self.metadata),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The certificate as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: str) -> None:
        """Write the certificate JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CheckReport":
        """Rebuild a certificate from :meth:`to_dict` output.

        The redundant top-level ``verdict`` field is recomputed, not
        trusted; a payload whose stored verdict disagrees with its
        invariants raises :class:`CheckError`.
        """
        if not isinstance(payload, Mapping):
            raise CheckError(
                f"certificate payload must be a JSON object, got {type(payload).__name__}"
            )
        schema = payload.get("schema")
        if schema != CHECK_REPORT_SCHEMA:
            raise CheckError(
                f"unsupported certificate schema {schema!r}; "
                f"expected {CHECK_REPORT_SCHEMA!r}"
            )
        try:
            invariants: Sequence[Invariant] = tuple(
                Invariant.from_dict(item) for item in payload["invariants"]
            )
            report = cls(
                format=str(payload["format"]),
                num_features=int(payload["num_features"]),
                invariants=tuple(invariants),
                subject=str(payload.get("subject", "classifier")),
                bound_source=str(payload.get("bound_source", "format-range")),
                metadata=dict(payload.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckError(f"malformed certificate payload: {exc}") from exc
        stored = payload.get("verdict")
        if stored is not None and stored != report.verdict.value:
            raise CheckError(
                f"certificate verdict {stored!r} disagrees with its invariants "
                f"({report.verdict.value})"
            )
        return report

    @classmethod
    def load(cls, path: str) -> "CheckReport":
        """Read a certificate written by :meth:`save`."""
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Multi-line human-readable rendering used by the CLI."""
        lines = [
            f"certificate {CHECK_REPORT_SCHEMA} — {self.subject} in {self.format}, "
            f"M={self.num_features} (bounds: {self.bound_source})"
        ]
        for inv in self.invariants:
            mark = {"PROVEN": "+", "VIOLATED": "!", "UNKNOWN": "?"}[inv.verdict.value]
            conf = f" @rho={inv.confidence}" if inv.confidence is not None else ""
            detail = f" — {inv.detail}" if inv.detail else ""
            lines.append(
                f"  [{mark}] {inv.id:28s} {inv.verdict.value:8s} "
                f"({inv.mode}{conf}){detail}"
            )
        lines.append(f"overall: {self.verdict.value}")
        return "\n".join(lines)
