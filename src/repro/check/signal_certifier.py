"""Static width certification of the fixed-point signal front end.

Extends the abstract-interpretation width analysis of
:mod:`repro.check.certifier` from the classifier datapath to the
:mod:`repro.signal` chain that feeds it:

- **FIR wide accumulators** (:class:`~repro.signal.fxfir.FixedPointFir`):
  the filter accumulates narrowed products in a guarded format
  ``Q(K+guard).F`` with *wrapping* arithmetic.  The certifier computes the
  exact attainable interval of every prefix sum (per-tap products depend on
  *distinct* delayed input samples, so per-tap extremes are independently
  attainable and interval prefix sums are tight) and either **proves the
  accumulator never wraps** or **refutes with a replayable witness
  signal**.  The textbook sufficient condition — ``guard_bits >=
  ceil(log2(num_taps))`` whenever per-tap products stay within the data
  format's range — is certified separately as a structural invariant.
- **Biquad state/output ranges**
  (:class:`~repro.signal.fxbiquad.FixedPointBiquad`): pole stability after
  coefficient quantization, saturating state registers (so state words are
  range-bounded by construction), and the exact pre-saturation accumulator
  interval of the five-term difference equation.
- **Feature extraction** (:func:`~repro.signal.features.fir_band_power`):
  exact bounds of the mean-square log-power feature given the FIR output
  range, and the training pipeline's scaler headroom in the classifier
  format.

Each stage emits a standard ``repro.check-report/v1`` certificate; the
pipeline composer (``repro check --all``) embeds them into one end-to-end
``repro.check-report/v2`` certificate (:mod:`repro.check.pipeline`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CheckError, DataError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.quantize import quantize_raw
from ..fixedpoint.rounding import RoundingMode, shift_right_rounded
from ..signal.fxbiquad import FixedPointBiquad, quantized_poles
from ..signal.fxfir import FixedPointFir
from .report import CheckReport, Invariant, Verdict

__all__ = [
    "certify_fir",
    "certify_biquad",
    "certify_feature_extraction",
    "fir_output_interval",
]

#: Power floor used by ``fir_band_power`` before ``log10``.
_POWER_FLOOR = 1e-30


# ---------------------------------------------------------------------- #
# Exact interval propagation over the FIR datapath
# ---------------------------------------------------------------------- #
def _input_raw_interval(
    fmt: QFormat,
    rounding: RoundingMode,
    input_bounds: Optional[Tuple[float, float]],
) -> Tuple[int, int]:
    """Attainable raw-word interval of the (saturating) input quantizer."""
    if input_bounds is None:
        return fmt.min_raw, fmt.max_raw
    lo, hi = float(input_bounds[0]), float(input_bounds[1])
    if not (math.isfinite(lo) and math.isfinite(hi)):
        raise DataError("input bounds must be finite")
    if hi < lo:
        raise DataError(f"input bounds cross: {lo} > {hi}")
    raws = quantize_raw(np.array([lo, hi]), fmt, rounding=rounding)
    raw_lo, raw_hi = (int(v) for v in np.atleast_1d(np.asarray(raws)))
    # The filter's input quantizer saturates, so bounds wider than the
    # format clip to the representable range.
    return max(raw_lo, fmt.min_raw), min(raw_hi, fmt.max_raw)


def _tap_product_interval(
    tap_raw: int,
    x_lo: int,
    x_hi: int,
    fraction_bits: int,
    rounding: RoundingMode,
) -> Tuple[Tuple[int, int], Tuple[int, int]]:
    """Exact ``(min, max)`` of one narrowed tap product with attaining inputs.

    ``shift_right_rounded(tap * x, F)`` is monotone in ``x`` for fixed
    ``tap`` (the product is linear in ``x`` and the narrowing shift is
    monotone), so the interval ends at the input corners.  Returns
    ``((min_value, x_at_min), (max_value, x_at_max))``.
    """
    corners = [
        (shift_right_rounded(tap_raw * x, fraction_bits, rounding), x)
        for x in ({x_lo, x_hi})
    ]
    return min(corners), max(corners)


def _fir_prefix_extremes(
    fir: FixedPointFir,
    x_lo: int,
    x_hi: int,
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """Per-tap exact product extremes ``(value, x)`` for min and max sides."""
    taps = [int(t) for t in np.asarray(fir.tap_raws)]
    rounding = fir.rounding
    fraction_bits = fir.fmt.fraction_bits
    mins: List[Tuple[int, int]] = []
    maxs: List[Tuple[int, int]] = []
    for tap in taps:
        lo_corner, hi_corner = _tap_product_interval(
            tap, x_lo, x_hi, fraction_bits, rounding
        )
        mins.append(lo_corner)
        maxs.append(hi_corner)
    return mins, maxs


def fir_output_interval(
    fir: FixedPointFir,
    input_bounds: Optional[Tuple[float, float]] = None,
) -> Tuple[float, float]:
    """Exact attainable real-valued output interval of ``fir.apply``.

    The full accumulated sum's attainable interval, clipped by the final
    saturation into ``fir.fmt`` — the bounds downstream feature extraction
    can rely on.  (When the accumulator can wrap, the post-wrap value still
    saturates into the format, so the format range remains sound.)
    """
    fmt = fir.fmt
    x_lo, x_hi = _input_raw_interval(fmt, fir.rounding, input_bounds)
    mins, maxs = _fir_prefix_extremes(fir, x_lo, x_hi)
    acc_fmt = fir.accumulator_format
    total_lo = sum(value for value, _ in mins)
    total_hi = sum(value for value, _ in maxs)
    prefix_ok = _prefix_sums_within(mins, maxs, acc_fmt)
    if not prefix_ok:
        # A wrap can steer the accumulator anywhere in the guarded ring;
        # only the final saturation bound is sound.
        return float(fmt.min_value), float(fmt.max_value)
    lo = max(total_lo, fmt.min_raw)
    hi = min(total_hi, fmt.max_raw)
    if lo > hi:  # entire interval outside one side: saturates to a constant
        edge = fmt.max_raw if total_lo > fmt.max_raw else fmt.min_raw
        lo = hi = edge
    return float(fmt.to_real(lo)), float(fmt.to_real(hi))


def _prefix_sums_within(
    mins: Sequence[Tuple[int, int]],
    maxs: Sequence[Tuple[int, int]],
    acc_fmt: QFormat,
) -> bool:
    """True iff every attainable prefix sum stays in the accumulator range."""
    run_lo = run_hi = 0
    for (lo_value, _), (hi_value, _) in zip(mins, maxs):
        run_lo += lo_value
        run_hi += hi_value
        if run_lo < acc_fmt.min_raw or run_hi > acc_fmt.max_raw:
            return False
    return True


def _fir_wrap_witness(
    fir: FixedPointFir,
    mins: Sequence[Tuple[int, int]],
    maxs: Sequence[Tuple[int, int]],
    prefix_len: int,
    side: str,
) -> Dict[str, Any]:
    """A replayable witness input signal driving the accumulator out of range.

    The products of output index ``prefix_len - 1`` consume input samples
    ``x[i - j]`` for tap ``j``; choosing each delayed sample at the tap's
    extreme corner realizes the extreme prefix sum exactly.  The witness is
    the real-valued input signal (on the format grid) whose filtering wraps
    the accumulator while computing its last output sample.
    """
    corners = maxs if side == "hi" else mins
    chosen = [corners[j][1] for j in range(prefix_len)]
    # signal[t] feeds tap j = (prefix_len - 1) - t at output index
    # prefix_len - 1, so lay the chosen words out in reverse tap order.
    signal_raws = list(reversed(chosen))
    total = sum(corners[j][0] for j in range(prefix_len))
    return {
        "signal": [float(fir.fmt.to_real(raw)) for raw in signal_raws],
        "signal_raws": [int(raw) for raw in signal_raws],
        "output_index": prefix_len - 1,
        "prefix_taps": prefix_len,
        "prefix_sum_raw": int(total),
    }


def certify_fir(
    fir: FixedPointFir,
    input_bounds: Optional[Tuple[float, float]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> CheckReport:
    """Certify the FIR front end's width invariants.

    Parameters
    ----------
    fir:
        The fixed-point FIR under certification.
    input_bounds:
        Real-valued admissible input range; defaults to the format's full
        range (what the saturating input quantizer enforces).
    metadata:
        Extra key/values recorded in the certificate.

    Invariants
    ----------
    - ``fir-guard-bits`` (structural): the textbook sufficient condition —
      ``guard_bits >= ceil(log2(num_taps))`` with per-tap products inside
      the data format's range — holds.  When it fails the verdict is
      UNKNOWN (the exact invariant below still decides).
    - ``fir-accumulator-never-wraps`` (exact): every attainable prefix sum
      of the accumulation stays inside the guarded accumulator format.
      PROVEN, or VIOLATED with a replayable witness signal.
    - ``fir-output-range`` (exact): the final saturation bounds the output
      into the data format; the exact attainable interval is recorded.
    """
    if fir.rounding is RoundingMode.STOCHASTIC:
        raise CheckError("stochastic rounding cannot be certified exactly")
    fmt = fir.fmt
    acc_fmt = fir.accumulator_format
    num_taps = int(np.asarray(fir.tap_raws).size)
    x_lo, x_hi = _input_raw_interval(fmt, fir.rounding, input_bounds)
    mins, maxs = _fir_prefix_extremes(fir, x_lo, x_hi)

    invariants: List[Invariant] = []

    # Structural sufficient condition (the docstring contract of fxfir).
    required_guard = math.ceil(math.log2(max(num_taps, 2)))
    product_min = min(value for value, _ in mins)
    product_max = max(value for value, _ in maxs)
    products_in_format = product_min >= fmt.min_raw and product_max <= fmt.max_raw
    sufficient = fir.guard_bits >= required_guard and products_in_format
    invariants.append(
        Invariant(
            id="fir-guard-bits",
            description=(
                "guard_bits >= ceil(log2(num_taps)) with per-tap products in "
                "the data format's range (sufficient never-wraps condition)"
            ),
            verdict=Verdict.PROVEN if sufficient else Verdict.UNKNOWN,
            mode="structural",
            bounds={
                "guard_bits": int(fir.guard_bits),
                "required_guard_bits": int(required_guard),
                "num_taps": num_taps,
                "product_lo_raw": int(product_min),
                "product_hi_raw": int(product_max),
                "min_raw": fmt.min_raw,
                "max_raw": fmt.max_raw,
            },
            detail=(
                ""
                if sufficient
                else "sufficient condition fails; "
                "fir-accumulator-never-wraps carries the exact verdict"
            ),
        )
    )

    # Exact never-wraps proof over attainable prefix sums.
    run_lo = run_hi = 0
    worst: Optional[Tuple[int, str, int]] = None  # (prefix_len, side, value)
    prefix_lo = prefix_hi = 0
    for index in range(num_taps):
        run_lo += mins[index][0]
        run_hi += maxs[index][0]
        prefix_lo = min(prefix_lo, run_lo)
        prefix_hi = max(prefix_hi, run_hi)
        if worst is None:
            if run_hi > acc_fmt.max_raw:
                worst = (index + 1, "hi", run_hi)
            elif run_lo < acc_fmt.min_raw:
                worst = (index + 1, "lo", run_lo)
    bounds = {
        "prefix_lo_raw": int(prefix_lo),
        "prefix_hi_raw": int(prefix_hi),
        "acc_min_raw": acc_fmt.min_raw,
        "acc_max_raw": acc_fmt.max_raw,
        "accumulator_format": str(acc_fmt),
    }
    if worst is None:
        invariants.append(
            Invariant(
                id="fir-accumulator-never-wraps",
                description=(
                    "every attainable accumulation prefix sum stays in the "
                    "guarded accumulator format (never wraps)"
                ),
                verdict=Verdict.PROVEN,
                mode="exact",
                bounds=bounds,
            )
        )
    else:
        prefix_len, side, value = worst
        invariants.append(
            Invariant(
                id="fir-accumulator-never-wraps",
                description=(
                    "every attainable accumulation prefix sum stays in the "
                    "guarded accumulator format (never wraps)"
                ),
                verdict=Verdict.VIOLATED,
                mode="exact",
                bounds=bounds,
                witness=_fir_wrap_witness(fir, mins, maxs, prefix_len, side),
                detail=(
                    f"prefix of {prefix_len} taps reaches {value}, outside "
                    f"[{acc_fmt.min_raw}, {acc_fmt.max_raw}]"
                ),
            )
        )

    # Output range: the final value saturates into fmt, so the output is
    # range-bounded by construction; record the exact attainable interval.
    out_lo, out_hi = fir_output_interval(fir, input_bounds)
    invariants.append(
        Invariant(
            id="fir-output-range",
            description=(
                "the saturated filter output stays in the data format; "
                "exact attainable interval recorded for downstream stages"
            ),
            verdict=Verdict.PROVEN,
            mode="exact",
            bounds={
                "output_lo": out_lo,
                "output_hi": out_hi,
                "min_value": fmt.min_value,
                "max_value": fmt.max_value,
            },
            detail="final saturation bounds the output by construction",
        )
    )

    meta: Dict[str, Any] = {
        "num_taps": num_taps,
        "guard_bits": int(fir.guard_bits),
        "rounding": fir.rounding.value,
        "input_lo_raw": int(x_lo),
        "input_hi_raw": int(x_hi),
    }
    if metadata:
        meta.update(metadata)
    return CheckReport(
        format=str(fmt),
        num_features=num_taps,
        invariants=tuple(invariants),
        subject="signal-frontend",
        bound_source="explicit" if input_bounds is not None else "format-range",
        metadata=meta,
    )


# ---------------------------------------------------------------------- #
# Biquad state/output certification
# ---------------------------------------------------------------------- #
def certify_biquad(
    biquad: FixedPointBiquad,
    stability_margin: float = 0.0,
    metadata: Optional[Dict[str, Any]] = None,
) -> CheckReport:
    """Certify a fixed-point biquad section's stability and width invariants.

    Invariants
    ----------
    - ``biquad-pole-stability`` (structural): both poles of the *quantized*
      coefficients stay strictly inside the unit circle (optionally by
      ``stability_margin``).
    - ``biquad-state-range`` (structural): output and feedback state words
      saturate into the data format, so state is range-bounded for every
      input — the reason wrapping feedback cannot occur by construction.
    - ``biquad-accumulator-range`` (exact): the attainable interval of the
      five-term pre-saturation accumulator, with all operands bounded by
      the saturating input/state registers.
    """
    if biquad.rounding is RoundingMode.STOCHASTIC:
        raise CheckError("stochastic rounding cannot be certified exactly")
    fmt = biquad.fmt
    poles = np.abs(quantized_poles(biquad.section, fmt))
    pole_max = float(np.max(poles)) if poles.size else 0.0
    stable = bool(pole_max < 1.0 - stability_margin)

    invariants: List[Invariant] = [
        Invariant(
            id="biquad-pole-stability",
            description=(
                "quantized feedback coefficients keep both poles strictly "
                "inside the unit circle"
            ),
            verdict=Verdict.PROVEN if stable else Verdict.VIOLATED,
            mode="structural",
            bounds={
                "pole_magnitudes": [float(p) for p in poles],
                "stability_margin": float(stability_margin),
            },
            detail="" if stable else f"max pole magnitude {pole_max:.6f}",
        ),
        Invariant(
            id="biquad-state-range",
            description=(
                "output and feedback state registers saturate into the data "
                "format, so state words are range-bounded for every input"
            ),
            verdict=Verdict.PROVEN,
            mode="structural",
            bounds={"min_raw": fmt.min_raw, "max_raw": fmt.max_raw},
            detail="direct form I with saturating state by construction",
        ),
    ]

    # Exact pre-saturation accumulator interval: inputs and states range
    # over the full (saturated) format interval independently; the a1/a2
    # terms enter negated.
    raw = biquad.raw_coefficients
    acc_lo = acc_hi = 0
    for name in ("b0", "b1", "b2", "a1", "a2"):
        lo_corner, hi_corner = _tap_product_interval(
            raw[name], fmt.min_raw, fmt.max_raw, fmt.fraction_bits, biquad.rounding
        )
        lo_value, hi_value = lo_corner[0], hi_corner[0]
        if name in ("a1", "a2"):
            lo_value, hi_value = -hi_value, -lo_value
        acc_lo += lo_value
        acc_hi += hi_value
    invariants.append(
        Invariant(
            id="biquad-accumulator-range",
            description=(
                "the five-term pre-saturation accumulator's attainable "
                "interval (operands bounded by the saturating registers)"
            ),
            verdict=Verdict.PROVEN,
            mode="exact",
            bounds={
                "acc_lo_raw": int(acc_lo),
                "acc_hi_raw": int(acc_hi),
                "min_raw": fmt.min_raw,
                "max_raw": fmt.max_raw,
            },
            detail=(
                "saturation clips the excess"
                if acc_lo < fmt.min_raw or acc_hi > fmt.max_raw
                else "accumulator never exceeds the data format"
            ),
        )
    )

    meta: Dict[str, Any] = {"rounding": biquad.rounding.value}
    if metadata:
        meta.update(metadata)
    return CheckReport(
        format=str(fmt),
        num_features=5,
        invariants=tuple(invariants),
        subject="signal-frontend",
        bound_source="format-range",
        metadata=meta,
    )


# ---------------------------------------------------------------------- #
# Feature-extraction certification
# ---------------------------------------------------------------------- #
def certify_feature_extraction(
    fir: FixedPointFir,
    classifier_fmt: QFormat,
    scale_margin: float = 0.45,
    input_bounds: Optional[Tuple[float, float]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> CheckReport:
    """Certify the band-power feature extraction stage.

    The on-chip feature route (:func:`~repro.signal.features.fir_band_power`)
    is FIR band-pass -> mean square -> ``log10`` (with a power floor).
    Given the FIR stage's exact output interval, the mean-square power and
    its log are bounded exactly; the training pipeline then scales features
    with ``limit = scale_margin * 2**(K-1)`` before quantization, so the
    scaled features provably fit the classifier format.

    Invariants
    ----------
    - ``feature-power-range`` (exact): mean-square power and log-power
      bounds derived from the FIR output interval are finite.
    - ``feature-scaled-range`` (structural): the pipeline scaler's output
      limit stays strictly inside the classifier format's representable
      range, so feature quantization cannot saturate unexpectedly.
    """
    if scale_margin <= 0.0:
        raise DataError(f"scale_margin must be > 0, got {scale_margin}")
    out_lo, out_hi = fir_output_interval(fir, input_bounds)
    peak = max(abs(out_lo), abs(out_hi))
    power_hi = peak * peak
    log_lo = math.log10(_POWER_FLOOR)
    log_hi = math.log10(max(power_hi, _POWER_FLOOR))
    finite = math.isfinite(log_lo) and math.isfinite(log_hi)

    invariants: List[Invariant] = [
        Invariant(
            id="feature-power-range",
            description=(
                "mean-square band power and its log10 are bounded by the "
                "FIR stage's exact output interval (power floor 1e-30)"
            ),
            verdict=Verdict.PROVEN if finite else Verdict.UNKNOWN,
            mode="exact",
            bounds={
                "fir_output_lo": out_lo,
                "fir_output_hi": out_hi,
                "power_lo": 0.0,
                "power_hi": power_hi,
                "log_power_lo": log_lo,
                "log_power_hi": log_hi,
            },
        )
    ]

    limit = scale_margin * 2.0 ** (classifier_fmt.integer_bits - 1)
    fits = limit <= classifier_fmt.max_value
    invariants.append(
        Invariant(
            id="feature-scaled-range",
            description=(
                "the training pipeline's feature-scaler limit "
                "(scale_margin * 2**(K-1)) stays inside the classifier "
                "format's representable range"
            ),
            verdict=Verdict.PROVEN if fits else Verdict.VIOLATED,
            mode="structural",
            bounds={
                "scaler_limit": float(limit),
                "min_value": classifier_fmt.min_value,
                "max_value": classifier_fmt.max_value,
                "scale_margin": float(scale_margin),
            },
            detail=(
                ""
                if fits
                else "scaled features can exceed the representable range"
            ),
        )
    )

    meta: Dict[str, Any] = {
        "scale_margin": float(scale_margin),
        "signal_format": str(fir.fmt),
    }
    if metadata:
        meta.update(metadata)
    return CheckReport(
        format=str(classifier_fmt),
        num_features=1,
        invariants=tuple(invariants),
        subject="features",
        bound_source="explicit" if input_bounds is not None else "format-range",
        metadata=meta,
    )
