"""Static UB proofs for the generated native C batch kernel.

:func:`repro.hardware.cgen.generate_batch_kernel_c` emits an int64-only C
translation unit.  The admission check (``int64_path_available``) argues
informally that every intermediate fits; this module turns that argument
into a machine-checked certificate by **walking the emitted C itself**:

1. the numeric constants baked into the source (``WORD_MASK``,
   ``MIN_RAW``, weights, threshold, ...) are parsed back out and
   cross-checked against the classifier — a codegen regression that drifts
   a constant is caught before anything is compiled;
2. every shift in the source is checked for shift UB (non-negative left
   operand, count < 63, no right-shift of signed values at all — the
   generator narrows by division on purpose);
3. every division/modulo site is checked for division UB (a positive
   power-of-two divisor rules out both divide-by-zero and
   ``INT64_MIN / -1``);
4. given certified input ranges (:class:`~repro.check.certifier.FeatureBounds`,
   default: the format range that input saturation enforces), exact
   interval propagation in unbounded Python integers proves that **every
   intermediate of the kernel's arithmetic fits ``int64_t``** — the full
   products, the ``narrow_product`` internals, the wrap/saturate reduction,
   the accumulator step, and the decision subtraction — so no signed
   overflow UB is reachable for admitted inputs.

The result is a standard ``repro.check-report/v1`` certificate (subject
``"native-kernel"``); ``repro check --all`` embeds it as the
``native-kernel`` stage of the end-to-end v2 certificate, and the
``sanitize=`` build mode of :mod:`repro.hardware.compile` provides the
dynamic cross-check (UBSan/ASan must agree with these proofs).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.classifier import FixedPointLinearClassifier
from ..errors import InputValidationError
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.rounding import RoundingMode, shift_right_rounded
from ..hardware import cgen
from .certifier import FeatureBounds
from .report import CheckReport, Invariant, Verdict

__all__ = ["certify_native_kernel", "parse_kernel_constants"]

_INT64_MAX = 2**63 - 1
_INT64_MIN = -(2**63)

_DEFINE_INT_RE = re.compile(
    r"#define\s+(?P<name>[A-Z_]+)\s+\(\(int64_t\)\(?(?P<value>-?\d+)LL\)?\)"
)
_DEFINE_HEX_RE = re.compile(
    r"#define\s+(?P<name>[A-Z_]+)\s+\(\(int64_t\)0x(?P<value>[0-9A-Fa-f]+)LL\)"
)
_DEFINE_SHIFT_RE = re.compile(
    r"#define\s+(?P<name>[A-Z_]+)\s+\(\(int64_t\)1LL\s*<<\s*(?P<count>\d+)\)"
)
_DEFINE_PLAIN_RE = re.compile(r"#define\s+(?P<name>[A-Z_]+)\s+\(?(?P<value>-?\d+)\)?\s*$")
_WEIGHTS_RE = re.compile(
    r"WEIGHTS\[NUM_FEATURES\]\s*=\s*\{(?P<body>[-0-9,\s]*)\};"
)
_THRESHOLD_RE = re.compile(r"THRESHOLD\s*=\s*(?P<value>-?\d+);")
# Every shift the batch-kernel generator can emit has this exact shape:
# a constant 1LL left operand and a literal count.
_SHIFT_RE = re.compile(r"1LL\s*<<\s*(?P<count>\d+)")


def _strip_comments(source: str) -> str:
    """Remove ``/* ... */`` comments so scans see only live code."""
    return re.sub(r"/\*.*?\*/", "", source, flags=re.DOTALL)


def parse_kernel_constants(source: str) -> Dict[str, Any]:
    """Extract the numeric constants baked into a generated batch kernel.

    Returns a dict with ``num_features``, ``word_mask``, ``sign_bit``,
    ``min_raw``, ``max_raw``, ``polarity``, ``weights``, ``threshold``,
    and (for fractional formats) ``product_div_shift`` /
    ``product_half_shift``.
    """
    out: Dict[str, Any] = {}
    for match in _DEFINE_HEX_RE.finditer(source):
        out[match.group("name").lower()] = int(match.group("value"), 16)
    for match in _DEFINE_INT_RE.finditer(source):
        out[match.group("name").lower()] = int(match.group("value"))
    for match in _DEFINE_SHIFT_RE.finditer(source):
        out[match.group("name").lower() + "_shift"] = int(match.group("count"))
    for line in source.splitlines():
        match = _DEFINE_PLAIN_RE.match(line.strip())
        if match and match.group("name").lower() not in out:
            out[match.group("name").lower()] = int(match.group("value"))
    weights = _WEIGHTS_RE.search(source)
    if weights is not None:
        body = weights.group("body").strip()
        out["weights"] = (
            [int(item) for item in body.split(",")] if body else []
        )
    threshold = _THRESHOLD_RE.search(source)
    if threshold is not None:
        out["threshold"] = int(threshold.group("value"))
    return out


def _structural(
    invariant_id: str,
    description: str,
    ok: bool,
    bounds: Dict[str, Any],
    detail: str = "",
) -> Invariant:
    return Invariant(
        id=invariant_id,
        description=description,
        verdict=Verdict.PROVEN if ok else Verdict.VIOLATED,
        mode="structural",
        bounds=bounds,
        detail=detail if not ok else "",
    )


def _fits_invariant(
    invariant_id: str,
    description: str,
    lo: int,
    hi: int,
    witness: Optional[Dict[str, Any]] = None,
) -> Invariant:
    """An exact-mode invariant asserting ``[lo, hi]`` fits ``int64_t``."""
    ok = lo >= _INT64_MIN and hi <= _INT64_MAX
    return Invariant(
        id=invariant_id,
        description=description,
        verdict=Verdict.PROVEN if ok else Verdict.VIOLATED,
        mode="exact",
        bounds={
            "lo": int(lo),
            "hi": int(hi),
            "int64_min": _INT64_MIN,
            "int64_max": _INT64_MAX,
        },
        witness=witness if not ok else None,
        detail="" if ok else "signed overflow UB is reachable",
    )


def certify_native_kernel(
    classifier: FixedPointLinearClassifier,
    overflow: "OverflowMode | str" = OverflowMode.WRAP,
    feature_bounds: Optional[FeatureBounds] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> CheckReport:
    """Certify the generated C batch kernel free of UB for admitted inputs.

    Parameters
    ----------
    classifier:
        The classifier whose kernel is certified (the C is regenerated
        here; the generator is deterministic, so this is the same source
        the build cache compiles).
    overflow:
        The kernel's overflow policy (wrap or saturate).
    feature_bounds:
        Certified real-valued input bounds; defaults to the format's full
        range (what the Python wrapper's saturating quantization enforces).
    metadata:
        Extra key/values recorded in the certificate.
    """
    fmt = classifier.fmt
    overflow = OverflowMode.coerce(overflow)
    meta: Dict[str, Any] = {"overflow": overflow.value}
    if metadata:
        meta.update(metadata)

    try:
        source = cgen.generate_batch_kernel_c(classifier, overflow=overflow)
    except InputValidationError as exc:
        return CheckReport(
            format=str(fmt),
            num_features=classifier.num_features,
            invariants=(
                Invariant(
                    id="native-kernel-generable",
                    description=(
                        "the classifier admits a bit-exact int64 C kernel"
                    ),
                    verdict=Verdict.VIOLATED,
                    mode="structural",
                    detail=str(exc),
                ),
            ),
            subject="native-kernel",
            bound_source="format-range",
            metadata=meta,
        )

    code = _strip_comments(source)
    rounding = RoundingMode.coerce(classifier.rounding)
    weight_raws = [
        int(r) for r in np.atleast_1d(np.asarray(fmt.to_raw(classifier.weights)))
    ]
    threshold_raw = int(fmt.to_raw(float(classifier.threshold)))
    if feature_bounds is None:
        feature_bounds = FeatureBounds.from_format(fmt, classifier.num_features)
    x_boxes = feature_bounds.raw_intervals(fmt, rounding)
    # Input saturation clips to the representable range before the kernel.
    x_boxes = [
        (max(lo, fmt.min_raw), min(hi, fmt.max_raw)) for lo, hi in x_boxes
    ]

    invariants: List[Invariant] = []

    # 1. Emitted constants agree with the classifier ------------------- #
    parsed = parse_kernel_constants(source)
    expected: Dict[str, Any] = {
        "num_features": classifier.num_features,
        "word_mask": fmt.wrap_mask,
        "sign_bit": fmt.sign_bit,
        "min_raw": fmt.min_raw,
        "max_raw": fmt.max_raw,
        "polarity": classifier.polarity,
        "weights": weight_raws,
        "threshold": threshold_raw,
    }
    if fmt.fraction_bits:
        expected["product_div_shift"] = fmt.fraction_bits
        expected["product_half_shift"] = fmt.fraction_bits - 1
    mismatches = [
        f"{key}: emitted {parsed.get(key)!r} != expected {value!r}"
        for key, value in expected.items()
        if parsed.get(key) != value
    ]
    invariants.append(
        _structural(
            "native-constants-consistent",
            "the constants baked into the emitted C equal the classifier's "
            "raw words and format constants",
            not mismatches,
            {"checked": sorted(expected)},
            detail="; ".join(mismatches),
        )
    )

    # 2. Shift UB ------------------------------------------------------- #
    shift_counts = [int(m.group("count")) for m in _SHIFT_RE.finditer(code)]
    total_left_shifts = len(re.findall(r"<<", code))
    shifts_ok = (
        all(0 <= count <= 62 for count in shift_counts)
        and len(shift_counts) == total_left_shifts
    )
    no_right_shift = ">>" not in code
    invariants.append(
        _structural(
            "native-shift-ub",
            "every shift is a constant `1LL << c` with c < 63; "
            "no right shifts of signed values at all",
            shifts_ok and no_right_shift,
            {
                "shift_counts": shift_counts,
                "right_shifts": 0 if no_right_shift else code.count(">>"),
            },
            detail="shift expression with UB potential found",
        )
    )

    # 3. Division UB ----------------------------------------------------- #
    div_sites = len(re.findall(r"[/%]\s*PRODUCT_DIV", code))
    stray_div = len(re.findall(r"[/%](?!\s*PRODUCT_DIV)(?=[\sA-Za-z0-9_(])", code))
    product_div = 1 << fmt.fraction_bits if fmt.fraction_bits else 1
    invariants.append(
        _structural(
            "native-division-ub",
            "all divisions/modulos use the positive power-of-two "
            "PRODUCT_DIV divisor: no divide-by-zero, no INT64_MIN / -1",
            product_div >= 1 and stray_div == 0,
            {
                "product_div": product_div,
                "division_sites": div_sites,
                "other_division_sites": stray_div,
            },
            detail="division by a non-constant or non-PRODUCT_DIV divisor",
        )
    )

    # 4. Exact interval proofs that every intermediate fits int64 ------- #
    # Full products x[j] * WEIGHTS[j] over the certified input boxes.
    full_lo = full_hi = 0
    worst_corner: Tuple[int, int, int] = (0, 0, 0)  # (|value|, j, x)
    for j, ((x_lo, x_hi), w) in enumerate(zip(x_boxes, weight_raws)):
        for x in {x_lo, x_hi}:
            value = w * x
            full_lo = min(full_lo, value)
            full_hi = max(full_hi, value)
            if abs(value) > worst_corner[0]:
                worst_corner = (abs(value), j, x)
    invariants.append(
        _fits_invariant(
            "native-product-fits-int64",
            "the full-precision products x[j] * WEIGHTS[j] fit int64_t for "
            "every admitted input",
            full_lo,
            full_hi,
            witness={
                "feature_index": worst_corner[1],
                "feature_raw": worst_corner[2],
                "product": worst_corner[0],
            },
        )
    )

    # narrow_product internals: floor_q is full/PRODUCT_DIV (toward zero,
    # then the fixup subtracts at most 1); rem stays within (-DIV, DIV)
    # before the fixup and [0, DIV) after; the rounding adjustment adds at
    # most 1.  All bounded by the full product interval, so one invariant
    # covers the narrowed values.
    narrow_lo = min(
        shift_right_rounded(full_lo, fmt.fraction_bits, rounding),
        shift_right_rounded(full_hi, fmt.fraction_bits, rounding),
    )
    narrow_hi = max(
        shift_right_rounded(full_lo, fmt.fraction_bits, rounding),
        shift_right_rounded(full_hi, fmt.fraction_bits, rounding),
    )
    invariants.append(
        _fits_invariant(
            "native-narrow-fits-int64",
            "narrow_product's floor/remainder/rounding intermediates stay "
            "within the full-product interval (plus one ulp) and fit int64_t",
            min(narrow_lo - 1, full_lo),
            max(narrow_hi + 1, full_hi),
        )
    )

    # wrap_q internals: value & WORD_MASK lands in [0, mask]; the sign
    # toggle and subtraction stay within [-sign_bit, mask].
    mask = fmt.wrap_mask
    invariants.append(
        _fits_invariant(
            "native-wrap-fits-int64",
            "wrap_q's mask/xor/subtract intermediates fit int64_t "
            "(word length is bounded by the fast-path admission)",
            -fmt.sign_bit,
            mask,
        )
    )

    # Accumulator step: both operands are post-reduction words in
    # [min_raw, max_raw], so the exact sum spans twice the format range.
    invariants.append(
        _fits_invariant(
            "native-accumulator-fits-int64",
            "acc + prod with both operands reduced into the format range "
            "fits int64_t",
            2 * fmt.min_raw,
            2 * fmt.max_raw,
        )
    )

    # Decision: acc - THRESHOLD, then POLARITY * result with result
    # reduced back into the format range.
    invariants.append(
        _fits_invariant(
            "native-decision-fits-int64",
            "acc - THRESHOLD and POLARITY * result fit int64_t",
            min(fmt.min_raw - threshold_raw, -fmt.max_raw),
            max(fmt.max_raw - threshold_raw, -fmt.min_raw),
        )
    )

    meta["source_lines"] = len(source.splitlines())
    return CheckReport(
        format=str(fmt),
        num_features=classifier.num_features,
        invariants=tuple(invariants),
        subject="native-kernel",
        bound_source=feature_bounds.source,
        metadata=meta,
    )
