"""Standard normal distribution: pdf, cdf, and inverse cdf, from scratch.

The paper's overflow constraints are parameterized by
``beta = Phi^-1(0.5 + 0.5 * rho)`` (Eq. 16) where ``rho`` is the confidence
level that the products and projection stay within the ``QK.F`` range.  We
implement ``Phi`` via the complementary error function (Abramowitz & Stegun
7.1.26-style rational approximation refined by a couple of Newton steps is
not needed for cdf — we use the erfc continued expansion built on
``math.erfc`` which is part of the Python standard library) and ``Phi^-1``
with Acklam's rational approximation polished by one Halley step, giving
~1e-15 relative accuracy.  The tests validate both against
``scipy.stats.norm``.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from ..errors import InputValidationError

__all__ = ["norm_pdf", "norm_cdf", "norm_ppf", "confidence_beta"]

ArrayLike = Union[float, np.ndarray]

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)

# Acklam's inverse-normal-cdf rational approximation coefficients.
_A = (
    -3.969683028665376e01,
    2.209460984245205e02,
    -2.759285104469687e02,
    1.383577518672690e02,
    -3.066479806614716e01,
    2.506628277459239e00,
)
_B = (
    -5.447609879822406e01,
    1.615858368580409e02,
    -1.556989798598866e02,
    6.680131188771972e01,
    -1.328068155288572e01,
)
_C = (
    -7.784894002430293e-03,
    -3.223964580411365e-01,
    -2.400758277161838e00,
    -2.549732539343734e00,
    4.374664141464968e00,
    2.938163982698783e00,
)
_D = (
    7.784695709041462e-03,
    3.224671290700398e-01,
    2.445134137142996e00,
    3.754408661907416e00,
)
_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def norm_pdf(x: ArrayLike) -> ArrayLike:
    """Standard normal density ``phi(x)``."""
    arr = np.asarray(x, dtype=np.float64)
    out = np.exp(-0.5 * arr * arr) / _SQRT2PI
    return float(out) if np.isscalar(x) else out


def norm_cdf(x: ArrayLike) -> ArrayLike:
    """Standard normal cdf ``Phi(x)`` via the complementary error function."""
    arr = np.asarray(x, dtype=np.float64)
    erfc = np.vectorize(math.erfc, otypes=[np.float64])
    out = 0.5 * erfc(-arr / _SQRT2)
    return float(out) if np.isscalar(x) else out


def _ppf_scalar(p: float) -> float:
    if math.isnan(p):
        return math.nan
    if p <= 0.0:
        return -math.inf if p == 0.0 else math.nan
    if p >= 1.0:
        return math.inf if p == 1.0 else math.nan

    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        x = (
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)
    elif p <= _P_HIGH:
        q = p - 0.5
        r = q * q
        x = (
            (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5])
            * q
            / (((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0)
        )
    else:
        q = math.sqrt(-2.0 * math.log1p(-p))
        x = -(
            ((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]
        ) / ((((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0)

    # One Halley refinement step takes the ~1e-9 approximation to ~1e-15.
    err = 0.5 * math.erfc(-x / _SQRT2) - p
    u = err * _SQRT2PI * math.exp(0.5 * x * x)
    x -= u / (1.0 + 0.5 * x * u)
    return x


def norm_ppf(p: ArrayLike) -> ArrayLike:
    """Inverse standard normal cdf ``Phi^-1(p)`` (Acklam + Halley polish)."""
    if np.isscalar(p):
        return _ppf_scalar(float(p))
    arr = np.asarray(p, dtype=np.float64)
    return np.vectorize(_ppf_scalar, otypes=[np.float64])(arr)


def confidence_beta(rho: float) -> float:
    """Paper Eq. 16: ``beta = Phi^-1(0.5 + 0.5 * rho)``.

    ``rho`` is the two-sided confidence level (probability mass within
    ``mean +- beta * sigma``); must satisfy ``0 <= rho < 1``.
    """
    if not 0.0 <= rho < 1.0:
        raise InputValidationError(f"confidence level rho must be in [0, 1), got {rho}")
    return float(_ppf_scalar(0.5 + 0.5 * rho))
