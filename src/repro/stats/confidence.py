"""Gaussian confidence intervals for fixed-point range analysis (Eq. 15-17).

Given the Gaussian model of Eq. 14, each product ``w_m * x_m`` is Gaussian
with mean ``w_m * mu_m`` and std ``|w_m| * sigma_m`` (Eq. 15), and the
projection ``w' x`` is Gaussian with mean ``w' mu`` and std
``sqrt(w' Sigma w)`` (Eq. 19).  The paper bounds both inside the ``QK.F``
range with the two-sided ``beta``-sigma interval of Eq. 17.  This module
computes those intervals and checks them against a format — the runtime
verification counterpart of the training-time constraints (Eq. 18, 20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fixedpoint.qformat import QFormat
from .normal import confidence_beta
from ..errors import InputValidationError

__all__ = [
    "Interval",
    "product_interval",
    "projection_interval",
    "interval_within_format",
    "overflow_margin",
]


@dataclass(frozen=True)
class Interval:
    """A closed real interval ``[lo, hi]``."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise InputValidationError(f"empty interval [{self.lo}, {self.hi}]")

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def product_interval(weight: float, mean: float, std: float, beta: float) -> Interval:
    """Eq. 17: confidence interval of ``w_m * x_m`` for one class.

    ``[w mu - beta |w| sigma,  w mu + beta |w| sigma]``.
    """
    if std < 0:
        raise InputValidationError(f"std must be >= 0, got {std}")
    if beta < 0:
        raise InputValidationError(f"beta must be >= 0, got {beta}")
    center = weight * mean
    half = beta * abs(weight) * std
    return Interval(center - half, center + half)


def projection_interval(
    weights: np.ndarray, mean: np.ndarray, covariance: np.ndarray, beta: float
) -> Interval:
    """Confidence interval of the projection ``w' x`` for one class (Eq. 19-20)."""
    w = np.asarray(weights, dtype=np.float64)
    center = float(w @ np.asarray(mean, dtype=np.float64))
    variance = float(w @ np.asarray(covariance, dtype=np.float64) @ w)
    half = beta * np.sqrt(max(variance, 0.0))
    return Interval(center - half, center + half)


def interval_within_format(interval: Interval, fmt: QFormat) -> bool:
    """True when the interval fits inside ``[-2^(K-1), 2^(K-1) - 2^-F]``."""
    return interval.lo >= fmt.min_value and interval.hi <= fmt.max_value


def overflow_margin(interval: Interval, fmt: QFormat) -> float:
    """Distance (in value units) from the interval to the nearest format edge.

    Positive means the interval is safely inside the range; negative means
    it already sticks out by that amount.  Used by diagnostics and by the
    ablation that relates margin to observed wrap damage.
    """
    return min(interval.lo - fmt.min_value, fmt.max_value - interval.hi)


def beta_for_confidence(rho: float) -> float:
    """Alias of :func:`repro.stats.normal.confidence_beta` (Eq. 16)."""
    return confidence_beta(rho)
