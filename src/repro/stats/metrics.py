"""Classification metrics.

The paper reports a single metric — classification error (1 - accuracy) —
estimated either on a held-out Monte-Carlo test set (Table 1) or by 5-fold
cross-validation (Table 2).  We additionally provide a confusion matrix and
balanced error for the documentation examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError

__all__ = [
    "classification_error",
    "accuracy",
    "ConfusionMatrix",
    "confusion_matrix",
    "balanced_error",
]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if t.size == 0:
        raise DataError("empty label arrays")
    if t.shape != p.shape:
        raise DataError(f"label shapes differ: {t.shape} vs {p.shape}")
    return t, p


def classification_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of misclassified samples — the paper's reported metric."""
    t, p = _check_pair(y_true, y_pred)
    return float(np.mean(t != p))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """``1 - classification_error``."""
    return 1.0 - classification_error(y_true, y_pred)


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts with class A encoded as label 1."""

    true_a: int
    false_b: int  # actual A predicted B
    false_a: int  # actual B predicted A
    true_b: int

    @property
    def total(self) -> int:
        return self.true_a + self.false_b + self.false_a + self.true_b

    @property
    def error(self) -> float:
        return (self.false_a + self.false_b) / self.total

    @property
    def sensitivity(self) -> float:
        """Recall of class A; ``nan`` if there are no class-A samples."""
        denom = self.true_a + self.false_b
        return self.true_a / denom if denom else float("nan")

    @property
    def specificity(self) -> float:
        """Recall of class B; ``nan`` if there are no class-B samples."""
        denom = self.true_b + self.false_a
        return self.true_b / denom if denom else float("nan")


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> ConfusionMatrix:
    """Binary confusion matrix; labels must be 0/1 (1 = class A)."""
    t, p = _check_pair(y_true, y_pred)
    valid = {0, 1}
    if not set(np.unique(t)).issubset(valid) or not set(np.unique(p)).issubset(valid):
        raise DataError("confusion_matrix expects binary 0/1 labels")
    return ConfusionMatrix(
        true_a=int(np.sum((t == 1) & (p == 1))),
        false_b=int(np.sum((t == 1) & (p == 0))),
        false_a=int(np.sum((t == 0) & (p == 1))),
        true_b=int(np.sum((t == 0) & (p == 0))),
    )


def balanced_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of per-class error rates (robust to class imbalance)."""
    cm = confusion_matrix(y_true, y_pred)
    errors = []
    if cm.true_a + cm.false_b:
        errors.append(cm.false_b / (cm.true_a + cm.false_b))
    if cm.true_b + cm.false_a:
        errors.append(cm.false_a / (cm.true_b + cm.false_a))
    if not errors:
        raise DataError("no samples of either class")
    return float(np.mean(errors))
