"""Cross-validation splitters (Table 2 uses stratified 5-fold CV).

Splitters yield ``(train_indices, test_indices)`` pairs over a label array.
``StratifiedKFold`` keeps class proportions balanced per fold — with only
70 trials per class, unstratified folds could easily starve a class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import DataError, InputValidationError

__all__ = ["KFold", "StratifiedKFold", "LeaveOneOut", "train_test_split"]

Split = Tuple[np.ndarray, np.ndarray]


def _as_labels(labels: np.ndarray) -> np.ndarray:
    y = np.asarray(labels)
    if y.ndim != 1 or y.size == 0:
        raise DataError(f"labels must be a non-empty 1-D array, got shape {y.shape}")
    return y


@dataclass(frozen=True)
class KFold:
    """Plain k-fold splitter with optional shuffling.

    Parameters
    ----------
    n_splits:
        Number of folds (>= 2).
    shuffle:
        Shuffle indices before folding.
    seed:
        Seed for the shuffle (ignored when ``shuffle`` is False).
    """

    n_splits: int = 5
    shuffle: bool = True
    seed: int = 0

    def split(self, labels: np.ndarray) -> Iterator[Split]:
        y = _as_labels(labels)
        n = y.size
        if self.n_splits < 2:
            raise InputValidationError(f"n_splits must be >= 2, got {self.n_splits}")
        if self.n_splits > n:
            raise DataError(f"cannot make {self.n_splits} folds from {n} samples")
        indices = np.arange(n)
        if self.shuffle:
            np.random.default_rng(self.seed).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n // self.n_splits, dtype=int)
        fold_sizes[: n % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield np.sort(train), np.sort(test)
            start += size


@dataclass(frozen=True)
class StratifiedKFold:
    """K-fold that preserves per-class proportions in every fold."""

    n_splits: int = 5
    shuffle: bool = True
    seed: int = 0

    def split(self, labels: np.ndarray) -> Iterator[Split]:
        y = _as_labels(labels)
        classes = np.unique(y)
        if self.n_splits < 2:
            raise InputValidationError(f"n_splits must be >= 2, got {self.n_splits}")
        rng = np.random.default_rng(self.seed)
        per_class_folds: "list[list[np.ndarray]]" = []
        for cls in classes:
            idx = np.flatnonzero(y == cls)
            if idx.size < self.n_splits:
                raise DataError(
                    f"class {cls!r} has {idx.size} samples, fewer than "
                    f"{self.n_splits} folds"
                )
            if self.shuffle:
                rng.shuffle(idx)
            per_class_folds.append(np.array_split(idx, self.n_splits))
        for fold in range(self.n_splits):
            test = np.sort(np.concatenate([folds[fold] for folds in per_class_folds]))
            mask = np.ones(y.size, dtype=bool)
            mask[test] = False
            yield np.flatnonzero(mask), test


@dataclass(frozen=True)
class LeaveOneOut:
    """Leave-one-out splitter (used in tests and small-data diagnostics)."""

    def split(self, labels: np.ndarray) -> Iterator[Split]:
        y = _as_labels(labels)
        indices = np.arange(y.size)
        for held_out in indices:
            yield np.delete(indices, held_out), np.array([held_out])


def train_test_split(
    labels: np.ndarray, test_fraction: float = 0.3, seed: int = 0, stratify: bool = True
) -> Split:
    """One random (optionally stratified) train/test split over a label array."""
    y = _as_labels(labels)
    if not 0.0 < test_fraction < 1.0:
        raise InputValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(seed)
    if stratify:
        test_parts = []
        for cls in np.unique(y):
            idx = np.flatnonzero(y == cls)
            rng.shuffle(idx)
            take = max(1, int(round(idx.size * test_fraction)))
            test_parts.append(idx[:take])
        test = np.sort(np.concatenate(test_parts))
    else:
        idx = np.arange(y.size)
        rng.shuffle(idx)
        take = max(1, int(round(y.size * test_fraction)))
        test = np.sort(idx[:take])
    mask = np.ones(y.size, dtype=bool)
    mask[test] = False
    return np.flatnonzero(mask), test
