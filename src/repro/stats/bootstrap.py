"""Bootstrap confidence intervals for error estimates.

Both of the paper's tables rest on small samples (Table 2: 140 trials
total; the paper itself blames its non-monotone rows on "the randomness of
our small data set").  This module quantifies that: percentile-bootstrap
confidence intervals for a classification-error estimate, and a paired
bootstrap test for "is method A really better than method B on this test
set?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError

__all__ = ["BootstrapInterval", "bootstrap_error_interval", "paired_bootstrap_pvalue"]


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap interval for a classification error."""

    point_estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    @property
    def half_width(self) -> float:
        return 0.5 * (self.upper - self.lower)

    def describe(self) -> str:
        return (
            f"{100 * self.point_estimate:.2f}% "
            f"[{100 * self.lower:.2f}%, {100 * self.upper:.2f}%] "
            f"@ {100 * self.confidence:.0f}% confidence"
        )


def bootstrap_error_interval(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI for the misclassification rate."""
    t = np.asarray(y_true).ravel()
    p = np.asarray(y_pred).ravel()
    if t.shape != p.shape or t.size == 0:
        raise DataError("labels/predictions must be equal-length and non-empty")
    if not 0.0 < confidence < 1.0:
        raise DataError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise DataError(f"resamples must be >= 10, got {resamples}")
    mistakes = (t != p).astype(np.float64)
    rng = np.random.default_rng(seed)
    n = mistakes.size
    indices = rng.integers(0, n, size=(resamples, n))
    errors = mistakes[indices].mean(axis=1)
    alpha = 1.0 - confidence
    return BootstrapInterval(
        point_estimate=float(mistakes.mean()),
        lower=float(np.quantile(errors, alpha / 2)),
        upper=float(np.quantile(errors, 1.0 - alpha / 2)),
        confidence=confidence,
        resamples=resamples,
    )


def paired_bootstrap_pvalue(
    y_true: np.ndarray,
    y_pred_a: np.ndarray,
    y_pred_b: np.ndarray,
    resamples: int = 5000,
    seed: int = 0,
) -> float:
    """One-sided paired bootstrap p-value for ``error(A) < error(B)``.

    Resamples test indices with replacement and reports the fraction of
    resamples where A's error is *not* lower — small values mean A's
    advantage is unlikely to be resampling noise.
    """
    t = np.asarray(y_true).ravel()
    a = np.asarray(y_pred_a).ravel()
    b = np.asarray(y_pred_b).ravel()
    if not (t.shape == a.shape == b.shape) or t.size == 0:
        raise DataError("inputs must be equal-length and non-empty")
    mistakes_a = (t != a).astype(np.float64)
    mistakes_b = (t != b).astype(np.float64)
    rng = np.random.default_rng(seed)
    n = t.size
    indices = rng.integers(0, n, size=(resamples, n))
    delta = mistakes_a[indices].mean(axis=1) - mistakes_b[indices].mean(axis=1)
    return float(np.mean(delta >= 0.0))
