"""Statistics substrate: normal distribution, scatter estimators, CV, metrics."""

from .confidence import (
    Interval,
    interval_within_format,
    overflow_margin,
    product_interval,
    projection_interval,
)
from .bootstrap import (
    BootstrapInterval,
    bootstrap_error_interval,
    paired_bootstrap_pvalue,
)
from .crossval import KFold, LeaveOneOut, StratifiedKFold, train_test_split
from .metrics import (
    ConfusionMatrix,
    accuracy,
    balanced_error,
    classification_error,
    confusion_matrix,
)
from .normal import confidence_beta, norm_cdf, norm_pdf, norm_ppf
from .roc import RocCurve, auc, best_threshold, roc_curve
from .scatter import (
    ClassStats,
    TwoClassStats,
    estimate_class_stats,
    estimate_two_class_stats,
)

__all__ = [
    "Interval",
    "product_interval",
    "projection_interval",
    "interval_within_format",
    "overflow_margin",
    "BootstrapInterval",
    "bootstrap_error_interval",
    "paired_bootstrap_pvalue",
    "KFold",
    "StratifiedKFold",
    "LeaveOneOut",
    "train_test_split",
    "ConfusionMatrix",
    "classification_error",
    "accuracy",
    "balanced_error",
    "confusion_matrix",
    "norm_pdf",
    "norm_cdf",
    "norm_ppf",
    "confidence_beta",
    "RocCurve",
    "auc",
    "best_threshold",
    "roc_curve",
    "ClassStats",
    "TwoClassStats",
    "estimate_class_stats",
    "estimate_two_class_stats",
]
