"""ROC analysis and threshold tuning for the fixed-point classifier.

The decision threshold ``w' (mu_A + mu_B)/2`` (Eq. 12) is the balanced
choice, but in hardware the threshold register is free to reprogram — for
a seizure detector one trades sensitivity against false alarms without
touching the weights.  This module computes ROC curves over the *quantized*
threshold grid (only representable thresholds are realizable on-chip) and
picks operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import DataError

__all__ = ["RocCurve", "roc_curve", "auc", "best_threshold"]


@dataclass(frozen=True)
class RocCurve:
    """ROC curve samples over candidate thresholds.

    Attributes
    ----------
    thresholds:
        Candidate decision thresholds, increasing.
    true_positive_rate:
        Sensitivity at each threshold (class A = positive).
    false_positive_rate:
        1 - specificity at each threshold.
    """

    thresholds: np.ndarray
    true_positive_rate: np.ndarray
    false_positive_rate: np.ndarray

    def __post_init__(self) -> None:
        n = self.thresholds.size
        if self.true_positive_rate.size != n or self.false_positive_rate.size != n:
            raise DataError("ROC arrays must have equal length")


def roc_curve(
    scores: np.ndarray,
    labels: np.ndarray,
    thresholds: "np.ndarray | None" = None,
) -> RocCurve:
    """ROC over thresholds applied as ``predict A iff score >= threshold``.

    Parameters
    ----------
    scores:
        Real-valued decision scores (e.g. ``w'x``).
    labels:
        Binary 0/1 labels (1 = class A = positive).
    thresholds:
        Candidate thresholds; defaults to the sorted unique scores bracketed
        by sentinels (the full empirical curve).
    """
    s = np.asarray(scores, dtype=np.float64).ravel()
    y = np.asarray(labels).ravel()
    if s.shape != y.shape or s.size == 0:
        raise DataError("scores and labels must be equal-length and non-empty")
    positives = int(np.sum(y == 1))
    negatives = int(np.sum(y == 0))
    if positives == 0 or negatives == 0:
        raise DataError("ROC needs both classes present")
    if thresholds is None:
        unique = np.unique(s)
        spread = max(float(unique[-1] - unique[0]), 1.0)
        thresholds = np.concatenate(
            [[unique[0] - 0.01 * spread], unique, [unique[-1] + 0.01 * spread]]
        )
    thresholds = np.sort(np.asarray(thresholds, dtype=np.float64))

    tpr = np.empty(thresholds.size)
    fpr = np.empty(thresholds.size)
    for i, threshold in enumerate(thresholds):
        predicted = s >= threshold
        tpr[i] = float(np.sum(predicted & (y == 1))) / positives
        fpr[i] = float(np.sum(predicted & (y == 0))) / negatives
    return RocCurve(
        thresholds=thresholds, true_positive_rate=tpr, false_positive_rate=fpr
    )


def auc(curve: RocCurve) -> float:
    """Area under the ROC curve (trapezoidal over FPR, robust to ordering)."""
    order = np.argsort(curve.false_positive_rate, kind="stable")
    fpr = curve.false_positive_rate[order]
    tpr = curve.true_positive_rate[order]
    # Anchor the endpoints so partial curves integrate sensibly.
    fpr = np.concatenate([[0.0], fpr, [1.0]])
    tpr = np.concatenate([[0.0], tpr, [1.0]])
    return float(np.trapezoid(tpr, fpr))


def best_threshold(
    curve: RocCurve,
    max_false_positive_rate: Optional[float] = None,
) -> float:
    """Pick an operating threshold from a ROC curve.

    With ``max_false_positive_rate`` set, returns the threshold with the
    highest sensitivity whose FPR respects the cap (a detector budget);
    otherwise maximizes Youden's J (``TPR - FPR``).
    """
    if max_false_positive_rate is not None:
        mask = curve.false_positive_rate <= max_false_positive_rate
        if not np.any(mask):
            raise DataError(
                f"no threshold achieves FPR <= {max_false_positive_rate}"
            )
        candidates = np.flatnonzero(mask)
        best = candidates[np.argmax(curve.true_positive_rate[candidates])]
    else:
        best = int(np.argmax(curve.true_positive_rate - curve.false_positive_rate))
    return float(curve.thresholds[best])
