"""Class statistics: means, covariances, scatter matrices (paper Eq. 1-6).

These are the quantities every stage of LDA-FP consumes.  Note the paper's
covariance convention (Eq. 5-6) normalizes by ``N`` (not ``N - 1``); we
follow the paper and expose ``ddof`` for callers that want the unbiased
variant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError

__all__ = ["ClassStats", "TwoClassStats", "estimate_class_stats", "estimate_two_class_stats"]


@dataclass(frozen=True)
class ClassStats:
    """Mean vector and covariance matrix of one class (Eq. 3-6)."""

    mean: np.ndarray
    covariance: np.ndarray
    count: int

    @property
    def std(self) -> np.ndarray:
        """Per-feature standard deviations (sqrt of covariance diagonal)."""
        return np.sqrt(np.clip(np.diag(self.covariance), 0.0, None))


@dataclass(frozen=True)
class TwoClassStats:
    """Everything the LDA-FP formulation needs about the two classes.

    Attributes
    ----------
    class_a, class_b:
        Per-class statistics (Eq. 3-6).
    within_scatter:
        ``S_W = (Sigma_A + Sigma_B) / 2`` (Eq. 2).
    mean_difference:
        ``mu_A - mu_B`` — the between-class direction (Eq. 1 is its outer
        product, which is never materialized because Eq. 10 only ever uses
        ``(mu_A - mu_B)' w``).
    """

    class_a: ClassStats
    class_b: ClassStats
    within_scatter: np.ndarray
    mean_difference: np.ndarray

    @property
    def num_features(self) -> int:
        return int(self.mean_difference.shape[0])

    @property
    def between_scatter(self) -> np.ndarray:
        """``S_B = (mu_A - mu_B)(mu_A - mu_B)'`` (Eq. 1), materialized on demand."""
        d = self.mean_difference
        return np.outer(d, d)

    @property
    def midpoint(self) -> np.ndarray:
        """``(mu_A + mu_B) / 2`` — the point through which the boundary passes (Eq. 12)."""
        return 0.5 * (self.class_a.mean + self.class_b.mean)

    def fisher_cost(self, weights: np.ndarray) -> float:
        """Paper Eq. 10: ``w' S_W w / ((mu_A - mu_B)' w)^2``.

        Returns ``inf`` for weights orthogonal to the mean difference (the
        denominator vanishes, so the classes are not separated at all).
        """
        w = np.asarray(weights, dtype=np.float64)
        numerator = float(w @ self.within_scatter @ w)
        t = float(self.mean_difference @ w)
        if t == 0.0:
            return float("inf")
        return numerator / (t * t)


def estimate_class_stats(samples: np.ndarray, ddof: int = 0) -> ClassStats:
    """Mean and covariance of one class from rows-as-samples data (Eq. 3, 5)."""
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 2:
        raise DataError(f"samples must be 2-D (N, M), got shape {x.shape}")
    n = x.shape[0]
    if n < 1:
        raise DataError("need at least one sample")
    if n - ddof < 1:
        raise DataError(f"need more than ddof={ddof} samples, got {n}")
    # Two reductions instead of an isfinite temporary (NaN propagates
    # through min/max): this runs on every class at every sweep point.
    if x.size and not (np.isfinite(x.min()) and np.isfinite(x.max())):
        raise DataError("samples contain non-finite values")
    mean = x.mean(axis=0)
    centered = x - mean
    cov = centered.T @ centered / (n - ddof)
    return ClassStats(mean=mean, covariance=0.5 * (cov + cov.T), count=n)


def estimate_two_class_stats(
    samples_a: np.ndarray, samples_b: np.ndarray, ddof: int = 0
) -> TwoClassStats:
    """Full two-class statistics (Eq. 1-6) from the two training sets."""
    stats_a = estimate_class_stats(samples_a, ddof=ddof)
    stats_b = estimate_class_stats(samples_b, ddof=ddof)
    if stats_a.mean.shape != stats_b.mean.shape:
        raise DataError(
            f"feature dimensions differ: {stats_a.mean.shape} vs {stats_b.mean.shape}"
        )
    within = 0.5 * (stats_a.covariance + stats_b.covariance)
    return TwoClassStats(
        class_a=stats_a,
        class_b=stats_b,
        within_scatter=within,
        mean_difference=stats_a.mean - stats_b.mean,
    )
