"""Quantization-error analysis utilities.

These support the documentation and ablation benchmarks: given a signal and
a format, quantify the damage quantization does (max error, RMS error,
signal-to-quantization-noise ratio) and, given a dataset, recommend how many
integer bits the features need (the paper's "carefully scaled to avoid
overflow" preprocessing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import InputValidationError
from .qformat import QFormat
from .quantize import quantize

__all__ = [
    "QuantizationReport",
    "analyze_quantization",
    "required_integer_bits",
    "theoretical_sqnr_db",
]


@dataclass(frozen=True)
class QuantizationReport:
    """Summary of the error introduced by quantizing one signal.

    Attributes
    ----------
    fmt:
        Format analyzed.
    max_abs_error:
        Largest absolute quantization error observed.
    rms_error:
        Root-mean-square error.
    sqnr_db:
        Signal-to-quantization-noise ratio in dB (``inf`` for an exactly
        representable signal, ``nan`` for an all-zero signal).
    clipped_fraction:
        Fraction of samples outside the representable range (saturated).
    """

    fmt: QFormat
    max_abs_error: float
    rms_error: float
    sqnr_db: float
    clipped_fraction: float


def analyze_quantization(signal: np.ndarray, fmt: QFormat, **quantize_kwargs) -> QuantizationReport:
    """Quantize ``signal`` and report the resulting error statistics."""
    x = np.asarray(signal, dtype=np.float64).ravel()
    if x.size == 0:
        raise InputValidationError("cannot analyze an empty signal")
    q = np.asarray(quantize(x, fmt, **quantize_kwargs))
    err = q - x
    signal_power = float(np.mean(x**2))
    noise_power = float(np.mean(err**2))
    if noise_power == 0.0:
        sqnr = math.inf
    elif signal_power == 0.0:
        sqnr = math.nan
    else:
        sqnr = 10.0 * math.log10(signal_power / noise_power)
    clipped = float(np.mean((x < fmt.min_value) | (x > fmt.max_value)))
    return QuantizationReport(
        fmt=fmt,
        max_abs_error=float(np.max(np.abs(err))),
        rms_error=math.sqrt(noise_power),
        sqnr_db=sqnr,
        clipped_fraction=clipped,
    )


def required_integer_bits(signal: np.ndarray, margin: float = 1.0) -> int:
    """Smallest ``K`` (including sign) whose range covers ``signal * margin``.

    ``margin > 1`` leaves headroom; the result is always at least 1.
    """
    x = np.asarray(signal, dtype=np.float64)
    if x.size == 0:
        return 1
    peak = float(np.max(np.abs(x))) * float(margin)
    k = 1
    while (2.0 ** (k - 1)) < peak and k < 63:
        k += 1
    return k


def theoretical_sqnr_db(fmt: QFormat, signal_rms: float) -> float:
    """Classic uniform-quantization SQNR model: noise variance ``LSB^2 / 12``.

    Useful as a sanity reference next to :func:`analyze_quantization`; holds
    when the signal exercises many quantization levels without clipping.
    """
    if signal_rms <= 0:
        raise InputValidationError(f"signal_rms must be > 0, got {signal_rms}")
    noise_rms = fmt.resolution / math.sqrt(12.0)
    return 20.0 * math.log10(signal_rms / noise_rms)
