"""Vectorized quantization of real values to a ``QK.F`` grid.

This is the workhorse used throughout the library: training data are
quantized before learning (paper Section 3, "the feature vector x should be
rounded to its fixed-point representation, before the training data is used
to learn the classifier"), and candidate weight vectors are snapped to the
grid by the branch-and-bound upper-bound heuristic.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import InputValidationError

from .overflow import OverflowMode, apply_overflow_raw
from .qformat import QFormat
from .rounding import ROUNDERS, RoundingMode, round_to_int

__all__ = [
    "quantize",
    "quantize_raw",
    "dequantize_raw",
    "quantization_noise",
    "nearest_grid_neighbors",
]

ArrayLike = Union[float, np.ndarray]


def quantize_raw(
    value: ArrayLike,
    fmt: QFormat,
    rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
    overflow: "OverflowMode | str" = OverflowMode.SATURATE,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """Quantize real value(s) to raw integer words of ``fmt``.

    Rounding happens first (in quanta), then the overflow policy is applied
    to the rounded word.  Non-finite inputs raise ``ValueError`` — silent
    NaN propagation through int casts is a classic source of garbage runs.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.size and not (np.isfinite(arr.min()) and np.isfinite(arr.max())):
        raise InputValidationError("cannot quantize non-finite values")
    scaled = arr * (1 << fmt.fraction_bits)
    raw = round_to_int(scaled, mode=rounding, rng=rng)
    return np.asarray(apply_overflow_raw(raw, fmt, mode=overflow))


def dequantize_raw(raw: "int | np.ndarray", fmt: QFormat) -> np.ndarray:
    """Convert raw word(s) back to real value(s)."""
    return np.asarray(raw, dtype=np.float64) * fmt.resolution


# Raw magnitudes below 2**52 are exactly representable integral floats, so
# rounding, saturation, and the resolution rescale can all stay in the float
# domain with bit-identical results to the int64 round-trip.
_FLOAT_EXACT_WORD_BITS = 52


def quantize(
    value: ArrayLike,
    fmt: QFormat,
    rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
    overflow: "OverflowMode | str" = OverflowMode.SATURATE,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """Quantize real value(s) onto the representable grid of ``fmt``.

    Returns float64 value(s) that are exactly representable in ``fmt``
    (so ``quantize(quantize(x)) == quantize(x)`` — idempotence is covered by
    a hypothesis property test).
    """
    mode = RoundingMode.coerce(rounding)
    omode = OverflowMode.coerce(overflow)
    if (
        omode is OverflowMode.SATURATE
        and mode is not RoundingMode.STOCHASTIC
        and fmt.word_length <= _FLOAT_EXACT_WORD_BITS
    ):
        # Fast path for the library default (saturating, deterministic
        # rounding, narrow format): every training sample crosses this at
        # every sweep point, so we round and clamp in the float domain and
        # skip the int64 round-trip entirely.  Bit-identical to the slow
        # path because raw words of narrow formats are exact in float64.
        arr = np.asarray(value, dtype=np.float64)
        out = ROUNDERS[mode](arr * float(1 << fmt.fraction_bits))
        if out.size:
            lo, hi = out.min(), out.max()
            if not (np.isfinite(lo) and np.isfinite(hi)):
                if not (np.isfinite(arr.min()) and np.isfinite(arr.max())):
                    raise InputValidationError("cannot quantize non-finite values")
                raise InputValidationError(
                    "cannot convert non-finite values to raw words"
                )
        out = np.asarray(out)
        np.clip(out, float(fmt.min_raw), float(fmt.max_raw), out=out)
        out *= fmt.resolution
        out += 0.0  # normalize -0.0 to +0.0, matching the int round-trip
    else:
        raw = quantize_raw(value, fmt, rounding=rounding, overflow=overflow, rng=rng)
        out = dequantize_raw(raw, fmt)
    if np.isscalar(value) or np.asarray(value).ndim == 0:
        return np.float64(out)
    return out


def quantization_noise(value: ArrayLike, fmt: QFormat, **kwargs) -> np.ndarray:
    """The signed error ``quantize(x) - x`` introduced by quantization."""
    return np.asarray(quantize(value, fmt, **kwargs)) - np.asarray(
        value, dtype=np.float64
    )


def nearest_grid_neighbors(value: float, fmt: QFormat, radius: int = 1) -> np.ndarray:
    """Representable values within ``radius`` quanta of ``value``.

    Used by the discrete local-search polish: given a continuous relaxation
    solution, the candidate discrete moves for one coordinate are the grid
    points in a small window around it.  The result is clipped to the
    format's range and sorted in increasing order.
    """
    if radius < 0:
        raise InputValidationError(f"radius must be >= 0, got {radius}")
    center = int(quantize_raw(float(value), fmt))
    raws = np.arange(center - radius, center + radius + 1, dtype=np.int64)
    raws = raws[(raws >= fmt.min_raw) & (raws <= fmt.max_raw)]
    return dequantize_raw(raws, fmt)
