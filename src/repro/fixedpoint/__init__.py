"""Fixed-point arithmetic substrate (``QK.F`` two's complement).

Public surface:

- :class:`QFormat` — format descriptor (range, resolution, grid).
- :class:`RoundingMode`, :class:`OverflowMode` — hardware policies.
- :func:`quantize` / :func:`quantize_raw` / :func:`dequantize_raw` —
  vectorized grid snapping.
- :class:`Fx` — scalar fixed-point number (reference semantics).
- :class:`FixedPointDatapath` — bit-accurate MAC/classifier simulator.
- :func:`analyze_quantization`, :func:`greedy_wordlength_allocation` —
  analysis and word-length-allocation extensions.
"""

from .analysis import (
    QuantizationReport,
    analyze_quantization,
    required_integer_bits,
    theoretical_sqnr_db,
)
from .allocation import (
    AllocationResult,
    choose_uniform_format,
    greedy_wordlength_allocation,
)
from .datapath import DatapathConfig, DatapathTrace, FixedPointDatapath
from .number import Fx
from .overflow import OverflowMode, apply_overflow_raw
from .qformat import QFormat
from .quantize import (
    dequantize_raw,
    nearest_grid_neighbors,
    quantization_noise,
    quantize,
    quantize_raw,
)
from .rounding import RoundingMode, round_to_int, shift_right_rounded

__all__ = [
    "QFormat",
    "RoundingMode",
    "OverflowMode",
    "Fx",
    "DatapathConfig",
    "DatapathTrace",
    "FixedPointDatapath",
    "QuantizationReport",
    "AllocationResult",
    "quantize",
    "quantize_raw",
    "dequantize_raw",
    "quantization_noise",
    "nearest_grid_neighbors",
    "round_to_int",
    "shift_right_rounded",
    "apply_overflow_raw",
    "analyze_quantization",
    "required_integer_bits",
    "theoretical_sqnr_db",
    "choose_uniform_format",
    "greedy_wordlength_allocation",
]
