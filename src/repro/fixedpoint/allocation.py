"""Word-length allocation — the paper's stated future-work extension.

Section 3 notes that "it is possible to further optimize the word length for
each individual operation.  For instance, different elements of the weight
vector w can be assigned with different word lengths.  However ... the
problem of word length optimization should be considered as a separate
topic".  This module implements that extension as a greedy bit-dropping
search, plus a uniform-format search used by the main experiments to pick
``K`` for a given total word length.

The greedy per-element search starts from a uniform format and repeatedly
removes one fractional bit from the weight whose removal degrades a
user-supplied objective (typically validation error) the least, until any
further removal would exceed ``max_degradation``.  This is the standard
"bit-width allocation" loop from the word-length-optimization literature the
paper cites ([10]-[12]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import InputValidationError
from .qformat import QFormat
from .quantize import quantize

__all__ = [
    "AllocationResult",
    "choose_uniform_format",
    "greedy_wordlength_allocation",
]


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of a per-element word-length allocation.

    Attributes
    ----------
    formats:
        One :class:`QFormat` per weight element.
    objective:
        Objective value achieved with the allocated formats.
    total_bits:
        Sum of word lengths over all elements (the cost being minimized).
    history:
        ``(element_index, new_format, objective)`` per accepted greedy step.
    """

    formats: "tuple[QFormat, ...]"
    objective: float
    total_bits: int
    history: "tuple[tuple[int, QFormat, float], ...]"


def choose_uniform_format(word_length: int, weights_bound: float) -> QFormat:
    """Uniform ``QK.F`` for a given total word length and weight magnitude bound.

    Picks the smallest integer width that covers ``[-weights_bound,
    weights_bound]`` so the fractional precision is maximized — the choice
    the paper implies by quoting only total word lengths in Tables 1-2.
    """
    return QFormat.for_range(word_length, weights_bound)


def greedy_wordlength_allocation(
    weights: Sequence[float],
    objective: Callable[[np.ndarray], float],
    start_format: QFormat,
    max_degradation: float,
    min_fraction_bits: int = 0,
) -> AllocationResult:
    """Greedily shorten per-element fractional word lengths.

    Parameters
    ----------
    weights:
        The trained (real-valued) weight vector.
    objective:
        Maps a quantized weight vector to a scalar cost (e.g. validation
        error).  Lower is better.  Called ``O(M * dropped_bits)`` times.
    start_format:
        Uniform starting format for every element.
    max_degradation:
        Maximum allowed increase of the objective relative to its value at
        the starting allocation.
    min_fraction_bits:
        Floor on each element's fractional bits.

    Returns
    -------
    AllocationResult
        The per-element formats after greedy bit dropping.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise InputValidationError("weights must be a non-empty 1-D sequence")
    formats = [start_format] * w.size

    def quantize_all(fmts: "list[QFormat]") -> np.ndarray:
        return np.array(
            [float(quantize(float(wi), fi)) for wi, fi in zip(w, fmts)]
        )

    base_objective = float(objective(quantize_all(formats)))
    budget = base_objective + float(max_degradation)
    history: "list[tuple[int, QFormat, float]]" = []

    improved = True
    current_objective = base_objective
    while improved:
        improved = False
        best: "tuple[float, int, QFormat] | None" = None
        for idx, fmt in enumerate(formats):
            if fmt.fraction_bits <= min_fraction_bits:
                continue
            trial_fmt = QFormat(fmt.integer_bits, fmt.fraction_bits - 1)
            trial_formats = list(formats)
            trial_formats[idx] = trial_fmt
            obj = float(objective(quantize_all(trial_formats)))
            if obj <= budget and (best is None or obj < best[0]):
                best = (obj, idx, trial_fmt)
        if best is not None:
            current_objective, idx, fmt = best
            formats[idx] = fmt
            history.append((idx, fmt, current_objective))
            improved = True

    return AllocationResult(
        formats=tuple(formats),
        objective=current_objective,
        total_bits=sum(f.word_length for f in formats),
        history=tuple(history),
    )
