"""``QK.F`` fixed-point format descriptors (two's complement).

The paper (Section 3, Figure 3) represents every number in the classifier in
a single signed two's-complement format ``QK.F`` with ``K`` integer bits
(including the sign bit) and ``F`` fractional bits, for a total word length
of ``K + F`` bits.  A word with raw integer value ``r`` (an integer in
``[-2**(K+F-1), 2**(K+F-1) - 1]``) represents the real number ``r * 2**-F``.

:class:`QFormat` is an immutable value object describing such a format; it
knows its representable range, its resolution (one least-significant bit),
and how to enumerate or count the representable values.  It performs no
arithmetic itself — see :mod:`repro.fixedpoint.quantize` for (vectorized)
quantization and :mod:`repro.fixedpoint.number` for scalar arithmetic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..errors import QFormatError

__all__ = ["QFormat"]

_QFORMAT_RE = re.compile(r"^Q(?P<k>\d+)\.(?P<f>\d+)$")

# Guard against absurd formats that would overflow exact integer arithmetic
# or allocate astronomically large enumerations by accident.
_MAX_TOTAL_BITS = 64


@dataclass(frozen=True, order=False)
class QFormat:
    """A signed two's-complement fixed-point format with ``K + F`` bits.

    Parameters
    ----------
    integer_bits:
        ``K`` — number of integer bits *including* the sign bit.  Must be at
        least 1 (the sign bit itself).
    fraction_bits:
        ``F`` — number of fractional bits.  Must be non-negative.

    Examples
    --------
    >>> q = QFormat(3, 0)
    >>> (q.min_value, q.max_value)
    (-4.0, 3.0)
    >>> QFormat.from_string("Q2.6").word_length
    8
    """

    integer_bits: int
    fraction_bits: int

    def __post_init__(self) -> None:
        if not isinstance(self.integer_bits, (int, np.integer)):
            raise QFormatError(f"integer_bits must be int, got {self.integer_bits!r}")
        if not isinstance(self.fraction_bits, (int, np.integer)):
            raise QFormatError(f"fraction_bits must be int, got {self.fraction_bits!r}")
        if self.integer_bits < 1:
            raise QFormatError(
                f"integer_bits must be >= 1 (it includes the sign bit), "
                f"got {self.integer_bits}"
            )
        if self.fraction_bits < 0:
            raise QFormatError(
                f"fraction_bits must be >= 0, got {self.fraction_bits}"
            )
        if self.integer_bits + self.fraction_bits > _MAX_TOTAL_BITS:
            raise QFormatError(
                f"word length {self.integer_bits + self.fraction_bits} exceeds "
                f"the supported maximum of {_MAX_TOTAL_BITS} bits"
            )
        # Normalize numpy integer types to plain int so hashing/repr is stable.
        object.__setattr__(self, "integer_bits", int(self.integer_bits))
        object.__setattr__(self, "fraction_bits", int(self.fraction_bits))

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_string(cls, spec: str) -> "QFormat":
        """Parse a ``"QK.F"`` string such as ``"Q4.4"``."""
        match = _QFORMAT_RE.match(spec.strip())
        if match is None:
            raise QFormatError(
                f"cannot parse {spec!r} as a QK.F format (expected e.g. 'Q4.4')"
            )
        return cls(int(match.group("k")), int(match.group("f")))

    @classmethod
    def from_word_length(cls, word_length: int, integer_bits: int) -> "QFormat":
        """Build a format from a total word length and integer-bit count."""
        if word_length < integer_bits:
            raise QFormatError(
                f"word_length {word_length} is smaller than integer_bits "
                f"{integer_bits}"
            )
        return cls(integer_bits, word_length - integer_bits)

    @classmethod
    def for_range(cls, word_length: int, max_abs: float) -> "QFormat":
        """Choose the format of ``word_length`` bits that covers ``[-max_abs, max_abs]``.

        Picks the smallest ``K`` such that ``max_abs`` fits, maximizing the
        fractional precision ``F = word_length - K``.  This mirrors the
        paper's preprocessing: features are scaled so their dynamic range is
        known, then the integer width is chosen just large enough.
        """
        if max_abs < 0 or not np.isfinite(max_abs):
            raise QFormatError(f"max_abs must be finite and >= 0, got {max_abs!r}")
        # The positive end of QK.F stops one LSB short of 2**(K-1), so the
        # integer width must strictly exceed log2(max_abs) for +max_abs to
        # round without saturating by more than one LSB.
        k = 1
        while k < word_length and (2.0 ** (k - 1)) <= max_abs:
            k += 1
        if (2.0 ** (k - 1)) <= max_abs:
            raise QFormatError(
                f"no Q format of {word_length} bits covers |x| <= {max_abs}"
            )
        return cls(k, word_length - k)

    # ------------------------------------------------------------------ #
    # Derived properties
    # ------------------------------------------------------------------ #
    @property
    def word_length(self) -> int:
        """Total number of bits ``K + F``."""
        return self.integer_bits + self.fraction_bits

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit, ``2**-F``."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def min_value(self) -> float:
        """The most negative representable value, ``-2**(K-1)``."""
        return -(2.0 ** (self.integer_bits - 1))

    @property
    def max_value(self) -> float:
        """The most positive representable value, ``2**(K-1) - 2**-F``."""
        return 2.0 ** (self.integer_bits - 1) - self.resolution

    @property
    def min_raw(self) -> int:
        """Most negative raw integer word, ``-2**(K+F-1)``."""
        return -(1 << (self.word_length - 1))

    @property
    def max_raw(self) -> int:
        """Most positive raw integer word, ``2**(K+F-1) - 1``."""
        return (1 << (self.word_length - 1)) - 1

    @property
    def num_values(self) -> int:
        """Number of representable values, ``2**(K+F)``."""
        return 1 << self.word_length

    @property
    def modulus(self) -> int:
        """Size of the raw-word ring, ``2**(K+F)`` — used by wrapping arithmetic."""
        return 1 << self.word_length

    @property
    def wrap_mask(self) -> int:
        """Bit mask ``2**(K+F) - 1`` selecting the word's two's-complement bits.

        These are the shared wrap-semantics constants: :meth:`wrap_raw`, the
        vectorized serving engine, and the generated C/Verilog all reduce a
        wide value into the ring as ``(v & wrap_mask)`` re-signed at
        :attr:`sign_bit` — keeping them here guarantees every backend wraps
        identically.
        """
        return self.modulus - 1

    @property
    def sign_bit(self) -> int:
        """The sign-bit mask ``2**(K+F-1)`` of the two's-complement word."""
        return 1 << (self.word_length - 1)

    # ------------------------------------------------------------------ #
    # Membership / enumeration
    # ------------------------------------------------------------------ #
    def contains(self, value: float) -> bool:
        """True if ``value`` is exactly representable in this format."""
        if not np.isfinite(value):
            return False
        if value < self.min_value or value > self.max_value:
            return False
        scaled = value * (1 << self.fraction_bits)
        return float(scaled) == float(int(round(scaled))) and abs(
            scaled - round(scaled)
        ) == 0.0

    def grid(self) -> np.ndarray:
        """All representable values in increasing order as a float64 array.

        Only sensible for small word lengths (the array has ``2**(K+F)``
        entries); guarded at 2**22 entries to avoid accidental huge
        allocations.
        """
        if self.word_length > 22:
            raise QFormatError(
                f"refusing to enumerate 2**{self.word_length} grid values; "
                "use arithmetic on raw words instead"
            )
        raws = np.arange(self.min_raw, self.max_raw + 1, dtype=np.int64)
        return raws.astype(np.float64) * self.resolution

    # ------------------------------------------------------------------ #
    # Raw <-> real conversions (exact, no rounding)
    # ------------------------------------------------------------------ #
    def to_real(self, raw: "int | np.ndarray") -> "float | np.ndarray":
        """Convert raw integer word(s) to real value(s): ``raw * 2**-F``."""
        if isinstance(raw, np.ndarray):
            return raw.astype(np.float64) * self.resolution
        return float(raw) * self.resolution

    def to_raw(self, value: "float | np.ndarray") -> "int | np.ndarray":
        """Convert exactly representable real value(s) to raw word(s).

        The caller is responsible for quantizing first; values that are not
        on the grid are rounded to the nearest raw integer without range
        checking (use :func:`repro.fixedpoint.quantize.quantize` for checked
        conversion).
        """
        from .rounding import float_to_int_exact

        scaled = np.multiply(value, 1 << self.fraction_bits)
        if isinstance(value, np.ndarray):
            return float_to_int_exact(np.rint(scaled))
        return int(round(float(scaled)))

    def wrap_raw(self, raw: "int | np.ndarray") -> "int | np.ndarray":
        """Reduce raw word(s) into range by two's-complement wrapping.

        This is the hardware behaviour the paper relies on (Section 3): sums
        are taken modulo ``2**(K+F)`` and re-interpreted as signed words.
        """
        modulus = self.modulus
        half = modulus >> 1
        if isinstance(raw, np.ndarray):
            wrapped = np.mod(raw.astype(object) + half, modulus) - half
            return np.asarray(wrapped).astype(np.int64)
        return int((int(raw) + half) % modulus - half)

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def widen(self, extra_integer: int = 0, extra_fraction: int = 0) -> "QFormat":
        """Return a new format with additional integer and/or fractional bits."""
        return QFormat(
            self.integer_bits + extra_integer, self.fraction_bits + extra_fraction
        )

    def __str__(self) -> str:
        return f"Q{self.integer_bits}.{self.fraction_bits}"

    def __repr__(self) -> str:
        return f"QFormat(integer_bits={self.integer_bits}, fraction_bits={self.fraction_bits})"
