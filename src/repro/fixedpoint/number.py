"""Scalar fixed-point numbers with exact two's-complement semantics.

:class:`Fx` models a single hardware register of format ``QK.F``.  Its value
is stored as the raw integer word, so all arithmetic is exact integer
arithmetic followed by the selected overflow policy — precisely what an RTL
implementation does.  Multiplication of two ``QK.F`` words produces a
``Q(2K).(2F)`` full-precision product which is then rounded/overflowed back
into the operand format, matching the single-format datapath the paper
assumes ("all fixed-point operations in the classifier are implemented [in]
the same format QK.F").

For vectorized work use :mod:`repro.fixedpoint.quantize` and
:mod:`repro.fixedpoint.datapath`; ``Fx`` favours clarity and is the
reference model those are tested against.
"""

from __future__ import annotations

from typing import Union

from ..errors import InputValidationError
from .overflow import OverflowMode, apply_overflow_raw
from .qformat import QFormat
from .rounding import RoundingMode, round_to_int, shift_right_rounded

__all__ = ["Fx"]

Number = Union[int, float]


class Fx:
    """An immutable fixed-point scalar.

    Parameters
    ----------
    value:
        Real value to quantize into the register (rounded with ``rounding``,
        range-reduced with ``overflow``).
    fmt:
        The register format.
    rounding, overflow:
        Policies used both for construction and for subsequent arithmetic
        involving this operand (the left operand's policies win).

    Examples
    --------
    >>> q = QFormat(3, 0)
    >>> (Fx(3, q) + Fx(3, q)).value      # wraps: 6 -> -2 in Q3.0
    -2.0
    >>> (Fx(3, q) + Fx(3, q) - Fx(4, q)).value   # ...but the final sum is exact
    2.0
    """

    __slots__ = ("_raw", "_fmt", "_rounding", "_overflow")

    def __init__(
        self,
        value: Number,
        fmt: QFormat,
        rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
        overflow: "OverflowMode | str" = OverflowMode.WRAP,
    ) -> None:
        self._fmt = fmt
        self._rounding = RoundingMode.coerce(rounding)
        self._overflow = OverflowMode.coerce(overflow)
        scaled = float(value) * (1 << fmt.fraction_bits)
        raw = int(round_to_int(scaled, mode=self._rounding))
        self._raw = int(apply_overflow_raw(raw, fmt, mode=self._overflow))

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_raw(
        cls,
        raw: int,
        fmt: QFormat,
        rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
        overflow: "OverflowMode | str" = OverflowMode.WRAP,
    ) -> "Fx":
        """Build directly from a raw integer word (overflow policy applied)."""
        out = cls.__new__(cls)
        out._fmt = fmt
        out._rounding = RoundingMode.coerce(rounding)
        out._overflow = OverflowMode.coerce(overflow)
        out._raw = int(apply_overflow_raw(int(raw), fmt, mode=out._overflow))
        return out

    def _like(self, raw: int) -> "Fx":
        """A new Fx in this register's format/policies from an unreduced raw word."""
        return Fx.from_raw(raw, self._fmt, self._rounding, self._overflow)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def raw(self) -> int:
        """The underlying integer word."""
        return self._raw

    @property
    def fmt(self) -> QFormat:
        """The register format."""
        return self._fmt

    @property
    def value(self) -> float:
        """The represented real number ``raw * 2**-F``."""
        return self._raw * self._fmt.resolution

    @property
    def bits(self) -> str:
        """The two's-complement bit pattern as a string, MSB first."""
        word = self._raw % self._fmt.modulus
        return format(word, f"0{self._fmt.word_length}b")

    # ------------------------------------------------------------------ #
    # Arithmetic (exact integer math, then overflow policy)
    # ------------------------------------------------------------------ #
    def _coerce_operand(self, other: "Fx | Number") -> "Fx":
        if isinstance(other, Fx):
            if other._fmt != self._fmt:
                raise InputValidationError(
                    f"mixed formats {self._fmt} and {other._fmt}; convert first"
                )
            return other
        return Fx(other, self._fmt, self._rounding, self._overflow)

    def __add__(self, other: "Fx | Number") -> "Fx":
        rhs = self._coerce_operand(other)
        return self._like(self._raw + rhs._raw)

    def __radd__(self, other: Number) -> "Fx":
        return self.__add__(other)

    def __sub__(self, other: "Fx | Number") -> "Fx":
        rhs = self._coerce_operand(other)
        return self._like(self._raw - rhs._raw)

    def __rsub__(self, other: Number) -> "Fx":
        return self._coerce_operand(other).__sub__(self)

    def __mul__(self, other: "Fx | Number") -> "Fx":
        rhs = self._coerce_operand(other)
        # Full product has 2F fractional bits; round F of them away using the
        # register's rounding mode, then apply overflow.
        full = self._raw * rhs._raw
        raw = shift_right_rounded(full, self._fmt.fraction_bits, self._rounding)
        return self._like(raw)

    def __rmul__(self, other: Number) -> "Fx":
        return self.__mul__(other)

    def __neg__(self) -> "Fx":
        return self._like(-self._raw)

    def __abs__(self) -> "Fx":
        return self._like(abs(self._raw))

    # ------------------------------------------------------------------ #
    # Comparisons (by represented value; formats must match for Fx operands)
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fx):
            return self._fmt == other._fmt and self._raw == other._raw
        if isinstance(other, (int, float)):
            return self.value == float(other)
        return NotImplemented

    def __lt__(self, other: "Fx | Number") -> bool:
        rhs = other.value if isinstance(other, Fx) else float(other)
        return self.value < rhs

    def __le__(self, other: "Fx | Number") -> bool:
        rhs = other.value if isinstance(other, Fx) else float(other)
        return self.value <= rhs

    def __gt__(self, other: "Fx | Number") -> bool:
        rhs = other.value if isinstance(other, Fx) else float(other)
        return self.value > rhs

    def __ge__(self, other: "Fx | Number") -> bool:
        rhs = other.value if isinstance(other, Fx) else float(other)
        return self.value >= rhs

    def __hash__(self) -> int:
        return hash((self._fmt, self._raw))

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Fx({self.value!r}, {self._fmt}, raw={self._raw})"
