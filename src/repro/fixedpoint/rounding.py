"""Rounding modes for fixed-point quantization.

A rounding mode maps a real-valued quantity (expressed in *quanta*, i.e.
already scaled by ``2**F``) to an integer raw word.  The paper uses simple
round-to-nearest when rounding training data and weights to ``QK.F``; we
additionally provide the other modes common in DSP hardware (truncation is
what a bare wire-dropping implementation does, convergent rounding is what
IEEE-style hardware does) so their effect on the classifier can be ablated.

All functions are vectorized over numpy arrays and also accept scalars.
"""

from __future__ import annotations

import enum
from typing import Callable, Union

import numpy as np

from ..errors import InputValidationError

__all__ = [
    "RoundingMode",
    "round_to_int",
    "shift_right_rounded",
    "float_to_int_exact",
    "ROUNDERS",
]

# Largest magnitude that survives a float64 -> int64 cast unharmed.  Beyond
# it the cast is undefined behaviour in numpy (it used to wrap to the
# opposite end of the range, so a saturating quantization of +huge landed on
# *min_raw*); see float_to_int_exact.
_INT64_SAFE = float(1 << 63)

ArrayLike = Union[float, np.ndarray]


class RoundingMode(enum.Enum):
    """Supported rounding modes.

    - ``NEAREST_EVEN``: round half to even (convergent rounding; unbiased).
    - ``NEAREST_AWAY``: round half away from zero (what ``round()`` in most
      hand calculators and the paper's MATLAB ``round`` do).
    - ``FLOOR``: round toward minus infinity (two's-complement truncation —
      the cheapest hardware realization: drop the low bits).
    - ``CEIL``: round toward plus infinity.
    - ``TOWARD_ZERO``: drop the fractional magnitude (sign-magnitude
      truncation).
    - ``STOCHASTIC``: round up with probability equal to the fractional
      part; requires a ``numpy.random.Generator``.  Unbiased in expectation;
      used in quantization-error ablations.
    """

    NEAREST_EVEN = "nearest-even"
    NEAREST_AWAY = "nearest-away"
    FLOOR = "floor"
    CEIL = "ceil"
    TOWARD_ZERO = "toward-zero"
    STOCHASTIC = "stochastic"

    @classmethod
    def coerce(cls, mode: "RoundingMode | str") -> "RoundingMode":
        """Accept either an enum member or its string value."""
        if isinstance(mode, cls):
            return mode
        return cls(str(mode))


def _round_nearest_even(scaled: ArrayLike) -> np.ndarray:
    return np.rint(scaled)


def _round_nearest_away(scaled: ArrayLike) -> np.ndarray:
    # trunc(v + copysign(0.5, v)) == copysign(floor(|v| + 0.5), v): both
    # shift the magnitude by one half and drop the fraction, so the float
    # results (ties, -0.0, and the >= 2**52 granularity quirks included)
    # are identical, in one allocation and three in-place ufuncs.  This
    # runs over every training sample at every sweep point, so array
    # passes dominate its cost.
    arr = np.asarray(scaled, dtype=np.float64)
    out = np.empty_like(arr)
    np.copysign(0.5, arr, out=out)
    np.add(out, arr, out=out)
    return np.trunc(out, out=out)


def _round_floor(scaled: ArrayLike) -> np.ndarray:
    return np.floor(scaled)


def _round_ceil(scaled: ArrayLike) -> np.ndarray:
    return np.ceil(scaled)


def _round_toward_zero(scaled: ArrayLike) -> np.ndarray:
    return np.trunc(scaled)


ROUNDERS: "dict[RoundingMode, Callable[[ArrayLike], np.ndarray]]" = {
    RoundingMode.NEAREST_EVEN: _round_nearest_even,
    RoundingMode.NEAREST_AWAY: _round_nearest_away,
    RoundingMode.FLOOR: _round_floor,
    RoundingMode.CEIL: _round_ceil,
    RoundingMode.TOWARD_ZERO: _round_toward_zero,
}


def float_to_int_exact(values: ArrayLike) -> np.ndarray:
    """Cast already-integral float(s) to integer words without overflow.

    ``float64 -> int64`` casts are only defined for magnitudes below
    ``2**63``; larger values used to wrap around to the opposite sign, so a
    *saturating* quantization of an out-of-range input could land on the
    wrong end of the range (min_raw instead of max_raw) for formats wider
    than ~62 bits.  This helper keeps the fast int64 cast whenever it is
    safe and otherwise converts element-wise through Python's unbounded
    ints (object dtype), which every downstream overflow policy accepts.

    Raises :class:`~repro.errors.InputValidationError` on non-finite input —
    there is no integer word for ``inf``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return arr.astype(np.int64)
    # Two reductions instead of isfinite/abs temporaries: NaN propagates
    # through min/max and +/-inf fails the isfinite test on the extrema.
    lo, hi = arr.min(), arr.max()
    if not (np.isfinite(lo) and np.isfinite(hi)):
        raise InputValidationError("cannot convert non-finite values to raw words")
    if -_INT64_SAFE < lo and hi < _INT64_SAFE:
        return arr.astype(np.int64)
    flat = np.array([int(v) for v in arr.ravel()], dtype=object)
    return flat.reshape(arr.shape)


def round_to_int(
    scaled: ArrayLike,
    mode: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """Round value(s) already expressed in quanta to integer words.

    Parameters
    ----------
    scaled:
        Real value(s) in units of one LSB (i.e. ``value * 2**F``).
    mode:
        The rounding mode; see :class:`RoundingMode`.
    rng:
        Random generator, required only for ``STOCHASTIC`` mode.

    Returns
    -------
    numpy.ndarray of int64 (0-d for scalar input); object dtype holding
    Python ints when the rounded magnitudes exceed the int64 range (wide
    formats), so the caller's overflow policy sees the true value.
    """
    mode = RoundingMode.coerce(mode)
    arr = np.asarray(scaled, dtype=np.float64)
    if mode is RoundingMode.STOCHASTIC:
        if rng is None:
            raise InputValidationError("stochastic rounding requires an explicit rng")
        low = np.floor(arr)
        frac = arr - low
        bump = (rng.random(size=arr.shape) < frac).astype(np.float64)
        result = low + bump
    else:
        result = ROUNDERS[mode](arr)
    return float_to_int_exact(result)


def shift_right_rounded(
    raw: int, shift: int, mode: "RoundingMode | str" = RoundingMode.NEAREST_AWAY
) -> int:
    """Exact integer right-shift of ``raw`` by ``shift`` bits with rounding.

    Equivalent to rounding ``raw / 2**shift`` to an integer, computed in
    unbounded integer arithmetic so the result is bit-exact for any word
    length.  This is how the datapath narrows a ``2F``-fraction product back
    to ``F`` fractional bits.
    """
    mode = RoundingMode.coerce(mode)
    if shift < 0:
        raise InputValidationError(f"shift must be >= 0, got {shift}")
    if shift == 0:
        return int(raw)
    raw = int(raw)
    div = 1 << shift
    floor_q, rem = divmod(raw, div)  # Python divmod floors toward -inf
    if mode is RoundingMode.FLOOR:
        return floor_q
    if mode is RoundingMode.CEIL:
        return floor_q + (1 if rem else 0)
    if mode is RoundingMode.TOWARD_ZERO:
        return floor_q + (1 if (rem and raw < 0) else 0)
    half = div >> 1
    if mode is RoundingMode.NEAREST_AWAY:
        if rem > half or (rem == half and raw >= 0):
            return floor_q + 1
        if rem == half and raw < 0:
            return floor_q  # floor already moved toward -inf; half goes away from 0
        return floor_q
    if mode is RoundingMode.NEAREST_EVEN:
        if rem > half:
            return floor_q + 1
        if rem < half:
            return floor_q
        return floor_q + (floor_q & 1)
    raise InputValidationError(f"unsupported mode for exact shift: {mode}")
