"""Overflow handling policies for fixed-point quantization and arithmetic.

Two's-complement hardware either *wraps* (the cheap default: high bits are
simply discarded, so values move around the ring ``[-2**(K-1), 2**(K-1))``)
or *saturates* (extra comparator logic clamps to the end of the range).
The paper's key observation in Section 3 depends on wrapping: intermediate
sums of a dot product may overflow freely as long as the final result is in
range.  ``RAISE`` is a debugging mode used by the tests.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

from ..errors import OverflowModeError
from .qformat import QFormat

__all__ = ["OverflowMode", "apply_overflow_raw"]

RawLike = Union[int, np.ndarray]


class OverflowMode(enum.Enum):
    """What to do with a raw word outside ``[min_raw, max_raw]``."""

    WRAP = "wrap"
    SATURATE = "saturate"
    RAISE = "raise"

    @classmethod
    def coerce(cls, mode: "OverflowMode | str") -> "OverflowMode":
        if isinstance(mode, cls):
            return mode
        return cls(str(mode))


def apply_overflow_raw(
    raw: RawLike, fmt: QFormat, mode: "OverflowMode | str" = OverflowMode.WRAP
) -> RawLike:
    """Bring raw integer word(s) into the representable range of ``fmt``.

    Parameters
    ----------
    raw:
        Integer word(s); may lie far outside the format's raw range (e.g.
        an exact wide accumulator value).
    fmt:
        Target format.
    mode:
        ``WRAP`` reduces modulo ``2**(K+F)`` (two's-complement wrap-around),
        ``SATURATE`` clamps to ``[min_raw, max_raw]``, ``RAISE`` raises
        :class:`~repro.errors.OverflowModeError` on any out-of-range word.
    """
    mode = OverflowMode.coerce(mode)
    if isinstance(raw, np.ndarray):
        if mode is OverflowMode.WRAP:
            return fmt.wrap_raw(raw)
        if mode is OverflowMode.SATURATE:
            # np.clip collapses 0-d object arrays (wide-format raws) to a
            # plain int; normalize back to an ndarray before the cast.
            return np.asarray(np.clip(raw, fmt.min_raw, fmt.max_raw)).astype(
                np.int64, copy=False
            )
        bad = (raw < fmt.min_raw) | (raw > fmt.max_raw)
        if np.any(bad):
            offender = int(np.asarray(raw)[bad].flat[0])
            raise OverflowModeError(
                fmt.to_real(offender), fmt.min_value, fmt.max_value
            )
        return raw.astype(np.int64)

    value = int(raw)
    if mode is OverflowMode.WRAP:
        return fmt.wrap_raw(value)
    if mode is OverflowMode.SATURATE:
        return max(fmt.min_raw, min(fmt.max_raw, value))
    if value < fmt.min_raw or value > fmt.max_raw:
        raise OverflowModeError(fmt.to_real(value), fmt.min_value, fmt.max_value)
    return value
