"""Bit-accurate simulation of the classifier's fixed-point datapath.

The on-chip classifier computes ``y = w' x - threshold`` and compares the
result against zero (paper Eq. 12).  All operands live in one ``QK.F``
format (paper Section 3); hardware performs:

1. ``M`` multiplications ``w_m * x_m``.  Each full-precision product has
   ``2K`` integer and ``2F`` fractional bits; the datapath rounds it back to
   ``QK.F`` (drop ``F`` low bits with the configured rounding) and wraps.
2. A chain of additions in ``QK.F`` with two's-complement **wrapping**.
   Intermediate sums may overflow freely — the paper's Section 3 example
   ``3 + 3 - 4`` in ``Q3.0`` wraps to ``-2`` after the first add yet the
   final result ``2`` is exact.  This simulator reproduces that behaviour
   exactly and is property-tested against exact integer arithmetic.
3. A final subtraction of the threshold and a sign comparison.

The simulator operates on raw integer words throughout, so results are
bit-exact regardless of word length (Python ints are unbounded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import InputValidationError
from .overflow import OverflowMode, apply_overflow_raw
from .qformat import QFormat
from .quantize import quantize_raw
from .rounding import RoundingMode, shift_right_rounded

__all__ = ["DatapathConfig", "DatapathTrace", "FixedPointDatapath"]


@dataclass(frozen=True)
class DatapathConfig:
    """Static configuration of the MAC datapath.

    Parameters
    ----------
    fmt:
        The single ``QK.F`` format used by every operand and register.
    rounding:
        Rounding applied when narrowing each product back to ``QK.F``.
    overflow:
        Overflow policy of the adders/registers; ``WRAP`` matches the
        paper's hardware assumption, ``SATURATE`` is provided for ablations.
    product_overflow:
        Overflow policy applied to each narrowed product.  Separate from
        ``overflow`` because the paper's per-feature constraints (Eq. 18)
        are specifically about keeping products in range — the ablation
        benchmarks disable those constraints and observe wrap damage here.
    """

    fmt: QFormat
    rounding: RoundingMode = RoundingMode.NEAREST_AWAY
    overflow: OverflowMode = OverflowMode.WRAP
    product_overflow: OverflowMode = OverflowMode.WRAP


@dataclass
class DatapathTrace:
    """Step-by-step record of one dot-product evaluation.

    Attributes
    ----------
    product_raws:
        Raw words of each narrowed product ``w_m * x_m``.
    accumulator_raws:
        Raw accumulator word after each addition (length ``M``).
    result_raw:
        Final raw word of ``w' x - threshold``.
    product_overflowed / accumulator_overflowed:
        Flags marking where the exact value fell outside the format before
        the overflow policy was applied; used to diagnose overflow damage.
    """

    product_raws: list = field(default_factory=list)
    accumulator_raws: list = field(default_factory=list)
    result_raw: int = 0
    product_overflowed: list = field(default_factory=list)
    accumulator_overflowed: list = field(default_factory=list)

    @property
    def any_product_overflow(self) -> bool:
        return any(self.product_overflowed)

    @property
    def any_accumulator_overflow(self) -> bool:
        return any(self.accumulator_overflowed)


class FixedPointDatapath:
    """Simulates ``sign(w' x - threshold)`` exactly as the RTL would compute it.

    The weight vector and threshold are fixed at construction (they are
    constants in the silicon); feature vectors stream through ``project`` /
    ``classify``.

    Parameters
    ----------
    weights:
        Real-valued weights; quantized to ``config.fmt`` on construction
        (values already on the grid pass through unchanged).
    threshold:
        Real-valued decision threshold ``w' (mu_A + mu_B) / 2``; quantized
        likewise.
    config:
        Datapath configuration.
    """

    def __init__(
        self,
        weights: Sequence[float],
        threshold: float,
        config: DatapathConfig,
    ) -> None:
        self.config = config
        fmt = config.fmt
        self.weight_raws = np.asarray(
            quantize_raw(
                np.asarray(weights, dtype=np.float64),
                fmt,
                rounding=config.rounding,
                overflow=OverflowMode.SATURATE,
            ),
            dtype=np.int64,
        )
        self.threshold_raw = int(
            quantize_raw(
                float(threshold),
                fmt,
                rounding=config.rounding,
                overflow=OverflowMode.SATURATE,
            )
        )

    # ------------------------------------------------------------------ #
    # Scalar path with tracing (reference implementation)
    # ------------------------------------------------------------------ #
    def project_traced(self, features: Sequence[float]) -> DatapathTrace:
        """Compute ``w' x - threshold`` for one sample, recording every step."""
        fmt = self.config.fmt
        x_raws = quantize_raw(
            np.asarray(features, dtype=np.float64),
            fmt,
            rounding=self.config.rounding,
            overflow=OverflowMode.SATURATE,
        )
        if x_raws.shape != self.weight_raws.shape:
            raise InputValidationError(
                f"feature length {x_raws.shape} does not match weight length "
                f"{self.weight_raws.shape}"
            )
        trace = DatapathTrace()
        acc = 0
        for w_raw, x_raw in zip(self.weight_raws.tolist(), x_raws.tolist()):
            # Full product has 2F fractional bits; narrow by F with rounding.
            full = int(w_raw) * int(x_raw)
            narrowed = shift_right_rounded(full, fmt.fraction_bits, self.config.rounding)
            prod_overflow = narrowed < fmt.min_raw or narrowed > fmt.max_raw
            prod = int(
                apply_overflow_raw(narrowed, fmt, mode=self.config.product_overflow)
            )
            trace.product_raws.append(prod)
            trace.product_overflowed.append(prod_overflow)

            exact_sum = acc + prod
            acc_overflow = exact_sum < fmt.min_raw or exact_sum > fmt.max_raw
            acc = int(apply_overflow_raw(exact_sum, fmt, mode=self.config.overflow))
            trace.accumulator_raws.append(acc)
            trace.accumulator_overflowed.append(acc_overflow)

        final = acc - self.threshold_raw
        trace.result_raw = int(
            apply_overflow_raw(final, fmt, mode=self.config.overflow)
        )
        return trace

    def project(self, features: Sequence[float]) -> float:
        """Real value of ``w' x - threshold`` as computed by the hardware."""
        return self.config.fmt.to_real(self.project_traced(features).result_raw)

    def classify(self, features: Sequence[float]) -> int:
        """Decision per Eq. 12: 1 (class A) if ``w'x - threshold >= 0`` else 0."""
        return 1 if self.project_traced(features).result_raw >= 0 else 0

    # ------------------------------------------------------------------ #
    # Vectorized path (used by evaluation loops; tested against the traced path)
    # ------------------------------------------------------------------ #
    def project_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorized ``w' x - threshold`` over rows of ``features``.

        Bit-exact with :meth:`project` (covered by a property test); uses
        object-dtype integers internally so arbitrary word lengths stay
        exact.
        """
        fmt = self.config.fmt
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        x_raws = quantize_raw(
            x, fmt, rounding=self.config.rounding, overflow=OverflowMode.SATURATE
        ).astype(object)
        w = self.weight_raws.astype(object)

        full = x_raws * w[None, :]
        narrow = np.vectorize(
            lambda r: shift_right_rounded(int(r), fmt.fraction_bits, self.config.rounding),
            otypes=[object],
        )
        narrowed = narrow(full) if full.size else full
        prods = self._apply_overflow_object(narrowed, self.config.product_overflow)

        acc = np.zeros(prods.shape[0], dtype=object)
        for m in range(prods.shape[1]):
            acc = self._apply_overflow_object(acc + prods[:, m], self.config.overflow)
        result = self._apply_overflow_object(
            acc - self.threshold_raw, self.config.overflow
        )
        return result.astype(np.int64).astype(np.float64) * fmt.resolution

    def classify_batch(self, features: np.ndarray) -> np.ndarray:
        """Vectorized decisions (1 = class A, 0 = class B)."""
        return (self.project_batch(features) >= 0.0).astype(np.int64)

    def _apply_overflow_object(self, raws: np.ndarray, mode: OverflowMode) -> np.ndarray:
        fmt = self.config.fmt
        if mode is OverflowMode.WRAP:
            half = fmt.modulus >> 1
            return (raws + half) % fmt.modulus - half
        if mode is OverflowMode.SATURATE:
            return np.clip(raws, fmt.min_raw, fmt.max_raw)
        out_of_range = (raws < fmt.min_raw) | (raws > fmt.max_raw)
        if np.any(out_of_range):
            offender = int(np.asarray(raws)[out_of_range].flat[0])
            apply_overflow_raw(offender, fmt, mode=mode)  # raises
        return raws
