"""The paper's synthetic test case (Section 5.1, Eq. 30-32).

Three features built from three independent standard Gaussians
``eps_1, eps_2, eps_3``:

    x1 = -+0.5 + 0.58 (eps1 + eps2 + eps3)      (class A: -0.5, class B: +0.5)
    x2 = 0.001 eps2 + eps3
    x3 = eps3

Only ``x1`` carries class information; ``x2`` and ``x3`` exist purely so a
classifier can *cancel* the shared noise terms — which requires very large
``w2, w3`` against a small ``w1``, the exact weight profile that breaks
under aggressive rounding (Figure 4's story).  ``make_synthetic_dataset``
reproduces the paper's parameters; ``make_noise_cancellation_dataset``
generalizes the construction for ablations.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .dataset import Dataset

__all__ = [
    "make_synthetic_dataset",
    "make_noise_cancellation_dataset",
    "SYNTHETIC_NUM_FEATURES",
]

SYNTHETIC_NUM_FEATURES = 3


def make_synthetic_dataset(
    samples_per_class: int,
    seed: int = 0,
    class_offset: float = 0.5,
    mixing: float = 0.58,
    leak: float = 0.001,
    name: str = "synthetic",
) -> Dataset:
    """Draw the paper's Eq. 30-32 synthetic dataset.

    Parameters
    ----------
    samples_per_class:
        ``N_A = N_B`` — number of trials drawn per class.
    seed:
        Seed for the Gaussian draws.
    class_offset:
        The ``+-0.5`` separation of ``x1`` (paper value 0.5).
    mixing:
        The ``0.58`` coefficient on each noise term in ``x1``.
    leak:
        The ``0.001`` coefficient of ``eps2`` in ``x2`` — this tiny leak is
        what forces the noise-cancelling weights to be huge.
    """
    if samples_per_class < 2:
        raise DataError(f"need >= 2 samples per class, got {samples_per_class}")
    rng = np.random.default_rng(seed)

    def draw_class(offset: float) -> np.ndarray:
        eps = rng.standard_normal((samples_per_class, 3))
        x1 = offset + mixing * eps.sum(axis=1)
        x2 = leak * eps[:, 1] + eps[:, 2]
        x3 = eps[:, 2]
        return np.column_stack([x1, x2, x3])

    return Dataset.from_class_arrays(
        samples_a=draw_class(-class_offset),
        samples_b=draw_class(+class_offset),
        name=name,
    )


def make_noise_cancellation_dataset(
    samples_per_class: int,
    num_noise_features: int = 2,
    seed: int = 0,
    class_offset: float = 0.5,
    mixing: float = 0.58,
    leak: float = 0.001,
    name: str = "noise-cancellation",
) -> Dataset:
    """Generalized noise-cancellation family with ``1 + num_noise_features`` dims.

    Feature 0 carries the class offset plus the sum of all noise sources;
    feature ``j`` (j >= 1) exposes noise source ``j`` with a small ``leak``
    of source ``j - 1`` mixed in (for ``j >= 2``), extending the paper's
    3-feature construction to arbitrary dimension for scaling studies.
    """
    if num_noise_features < 1:
        raise DataError(f"need >= 1 noise feature, got {num_noise_features}")
    if samples_per_class < 2:
        raise DataError(f"need >= 2 samples per class, got {samples_per_class}")
    rng = np.random.default_rng(seed)
    num_sources = num_noise_features + 1

    def draw_class(offset: float) -> np.ndarray:
        eps = rng.standard_normal((samples_per_class, num_sources))
        columns = [offset + mixing * eps.sum(axis=1)]
        for j in range(1, num_sources):
            column = eps[:, j].copy()
            if j >= 2:
                column = column + leak * eps[:, j - 1]
            elif num_sources > 1:
                column = column + leak * eps[:, 0]
            columns.append(column)
        return np.column_stack(columns)

    return Dataset.from_class_arrays(
        samples_a=draw_class(-class_offset),
        samples_b=draw_class(+class_offset),
        name=name,
    )
