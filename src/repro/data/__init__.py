"""Dataset substrate: containers, generators, and fixed-point scaling."""

from .bci import BciConfig, make_bci_dataset, make_bci_dataset_from_signals
from .dataset import LABEL_A, LABEL_B, Dataset
from .ecg import EcgBeatConfig, extract_beat_features, make_ecg_dataset, synthesize_beat
from .gaussian import (
    GaussianClassModel,
    TwoClassGaussianModel,
    make_gaussian_dataset,
)
from .scaling import FeatureScaler, scale_dataset_pair
from .synthetic import (
    SYNTHETIC_NUM_FEATURES,
    make_noise_cancellation_dataset,
    make_synthetic_dataset,
)

__all__ = [
    "Dataset",
    "LABEL_A",
    "LABEL_B",
    "BciConfig",
    "make_bci_dataset",
    "make_bci_dataset_from_signals",
    "EcgBeatConfig",
    "extract_beat_features",
    "make_ecg_dataset",
    "synthesize_beat",
    "GaussianClassModel",
    "TwoClassGaussianModel",
    "make_gaussian_dataset",
    "FeatureScaler",
    "scale_dataset_pair",
    "SYNTHETIC_NUM_FEATURES",
    "make_noise_cancellation_dataset",
    "make_synthetic_dataset",
]
