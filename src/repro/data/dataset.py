"""Two-class dataset container.

Labels follow the paper's convention: class **A** is the positive side of
the decision rule (Eq. 12, ``w'x - threshold >= 0``) and is encoded as
label ``1``; class B is label ``0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError

__all__ = ["Dataset", "LABEL_A", "LABEL_B"]

LABEL_A = 1
LABEL_B = 0


@dataclass(frozen=True)
class Dataset:
    """Features + binary labels, with class-splitting helpers.

    Attributes
    ----------
    features:
        ``(N, M)`` float array.
    labels:
        ``(N,)`` int array of 0/1 (1 = class A).
    name:
        Human-readable tag used in reports.
    """

    features: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        x = np.asarray(self.features, dtype=np.float64)
        y = np.asarray(self.labels, dtype=np.int64)
        if x.ndim != 2:
            raise DataError(f"features must be 2-D (N, M), got shape {x.shape}")
        if y.ndim != 1 or y.shape[0] != x.shape[0]:
            raise DataError(
                f"labels shape {y.shape} does not match {x.shape[0]} samples"
            )
        if x.size and not (np.isfinite(x.min()) and np.isfinite(x.max())):
            raise DataError("features contain non-finite values")
        bad = (y != LABEL_A) & (y != LABEL_B)
        if bad.any():
            extra = sorted(set(np.unique(y[bad]).tolist()))
            raise DataError(f"labels must be 0/1, found {extra}")
        object.__setattr__(self, "features", x)
        object.__setattr__(self, "labels", y)

    # ------------------------------------------------------------------ #
    @property
    def num_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def num_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def class_a(self) -> np.ndarray:
        """Rows belonging to class A (label 1)."""
        return self.features[self.labels == LABEL_A]

    @property
    def class_b(self) -> np.ndarray:
        """Rows belonging to class B (label 0)."""
        return self.features[self.labels == LABEL_B]

    def class_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(class A rows, class B rows)`` from a single label-mask pass."""
        mask = self.labels == LABEL_A
        return self.features[mask], self.features[~mask]

    def class_counts(self) -> "tuple[int, int]":
        """``(N_A, N_B)``."""
        return int(np.sum(self.labels == LABEL_A)), int(np.sum(self.labels == LABEL_B))

    # ------------------------------------------------------------------ #
    def subset(self, indices: np.ndarray, name: "str | None" = None) -> "Dataset":
        """Row subset (used by the cross-validation loops)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(
            features=self.features[idx],
            labels=self.labels[idx],
            name=name or self.name,
        )

    def map_features(self, transform, name: "str | None" = None) -> "Dataset":
        """Apply ``transform`` to the feature matrix (e.g. scaling, quantizing).

        The label array is shared with the source dataset, not copied:
        ``Dataset`` is frozen and nothing in the library mutates labels in
        place, so the copy would only add a per-sweep-point allocation.
        """
        return Dataset(
            features=np.asarray(transform(self.features), dtype=np.float64),
            labels=self.labels,
            name=name or self.name,
        )

    @classmethod
    def from_class_arrays(
        cls, samples_a: np.ndarray, samples_b: np.ndarray, name: str = "dataset"
    ) -> "Dataset":
        """Stack per-class sample arrays into one labeled dataset."""
        a = np.asarray(samples_a, dtype=np.float64)
        b = np.asarray(samples_b, dtype=np.float64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
            raise DataError(
                f"class arrays must be 2-D with equal feature counts, got "
                f"{a.shape} and {b.shape}"
            )
        features = np.vstack([a, b])
        labels = np.concatenate(
            [np.full(a.shape[0], LABEL_A), np.full(b.shape[0], LABEL_B)]
        )
        return cls(features=features, labels=labels, name=name)
