"""Synthetic ECG beat generator + features for arrhythmia detection.

The paper's introduction motivates on-chip classification with portable ECG
monitors ([3], [4]): a wearable that flags abnormal beats must classify at
microwatt budgets.  This module provides that second application end to
end: a morphological ECG beat simulator (sum-of-Gaussians P-QRS-T model,
the standard synthetic-ECG construction), a premature-ventricular-
contraction (PVC) abnormality model, and a compact clinical feature
extractor, yielding a two-class dataset on which LDA-FP trains exactly as
for the BCI case.

Beat model: each wave (P, Q, R, S, T) is a Gaussian bump with
morphology-specific center/width/amplitude; a PVC widens and inverts the
QRS complex, suppresses the P wave, and shifts the T wave — the textbook
signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import DataError
from .dataset import Dataset

__all__ = ["EcgBeatConfig", "synthesize_beat", "extract_beat_features", "make_ecg_dataset"]

# (center in beat fraction, width in beat fraction, amplitude in mV)
_NORMAL_WAVES: "Dict[str, Tuple[float, float, float]]" = {
    "P": (0.18, 0.025, 0.15),
    "Q": (0.36, 0.010, -0.12),
    "R": (0.40, 0.012, 1.20),
    "S": (0.44, 0.010, -0.25),
    "T": (0.70, 0.050, 0.35),
}

_PVC_WAVES: "Dict[str, Tuple[float, float, float]]" = {
    # No P wave; wide, high-amplitude, partially inverted QRS; discordant T.
    "Q": (0.30, 0.030, -0.45),
    "R": (0.38, 0.040, 1.50),
    "S": (0.48, 0.035, -0.80),
    "T": (0.75, 0.060, -0.40),
}


@dataclass(frozen=True)
class EcgBeatConfig:
    """Beat synthesis parameters.

    ``sample_rate`` and ``beat_seconds`` set the waveform grid;
    ``morphology_jitter`` scales the per-beat random variation of wave
    centers/widths/amplitudes; ``noise_scale`` is additive baseline noise
    (muscle artifact + electrode drift surrogate).
    """

    sample_rate: float = 250.0
    beat_seconds: float = 0.8
    morphology_jitter: float = 0.18
    noise_scale: float = 0.12
    baseline_wander: float = 0.05

    @property
    def samples_per_beat(self) -> int:
        return int(round(self.sample_rate * self.beat_seconds))

    def validate(self) -> None:
        if self.samples_per_beat < 40:
            raise DataError("beat window too short for the wave model")
        if self.morphology_jitter < 0 or self.noise_scale < 0:
            raise DataError("jitter/noise must be >= 0")


def synthesize_beat(
    config: EcgBeatConfig, rng: np.random.Generator, abnormal: bool
) -> np.ndarray:
    """One beat waveform (mV), normal or PVC."""
    config.validate()
    n = config.samples_per_beat
    t = np.linspace(0.0, 1.0, n, endpoint=False)
    waves = _PVC_WAVES if abnormal else _NORMAL_WAVES
    signal = np.zeros(n)
    jitter = config.morphology_jitter
    for center, width, amplitude in waves.values():
        c = center * (1.0 + jitter * rng.standard_normal())
        w = max(width * (1.0 + jitter * rng.standard_normal()), 1e-3)
        a = amplitude * (1.0 + jitter * rng.standard_normal())
        signal += a * np.exp(-0.5 * ((t - c) / w) ** 2)
    # Baseline wander: slow sinusoid with random phase.
    signal += config.baseline_wander * np.sin(
        2.0 * np.pi * rng.uniform(0.5, 1.5) * t + rng.uniform(0, 2 * np.pi)
    )
    signal += config.noise_scale * rng.standard_normal(n)
    return signal


def extract_beat_features(beat: np.ndarray, config: EcgBeatConfig) -> np.ndarray:
    """Compact clinical feature vector from one beat.

    Eight features a low-power front end can compute with adders and
    comparators:

    0. R amplitude (max of the waveform)
    1. S depth (min of the waveform)
    2. QRS width at 50% of R amplitude (seconds)
    3. R-peak position within the beat (fraction)
    4. P-window mean amplitude (first 30% of the beat)
    5. T-window mean amplitude (last 40% of the beat)
    6. total rectified area (sum |x| / fs)
    7. signed area (sum x / fs)
    """
    x = np.asarray(beat, dtype=np.float64)
    if x.ndim != 1 or x.size < 40:
        raise DataError(f"beat must be a 1-D waveform, got shape {x.shape}")
    n = x.size
    fs = config.sample_rate
    r_index = int(np.argmax(x))
    r_amplitude = float(x[r_index])
    s_depth = float(np.min(x))
    half = 0.5 * r_amplitude
    above = np.flatnonzero(x >= half)
    qrs_width = float((above[-1] - above[0]) / fs) if above.size else 0.0
    p_window = float(np.mean(x[: int(0.3 * n)]))
    t_window = float(np.mean(x[int(0.6 * n) :]))
    rect_area = float(np.sum(np.abs(x)) / fs)
    signed_area = float(np.sum(x) / fs)
    return np.array(
        [
            r_amplitude,
            s_depth,
            qrs_width,
            r_index / n,
            p_window,
            t_window,
            rect_area,
            signed_area,
        ]
    )


def make_ecg_dataset(
    beats_per_class: int,
    seed: int = 0,
    config: "EcgBeatConfig | None" = None,
    name: str = "ecg",
) -> Dataset:
    """Two-class beat dataset: label 1 = PVC (abnormal), 0 = normal sinus.

    Note the labeling: the *abnormal* beat is class A (positive) so the
    comparator output is directly the alarm signal.
    """
    if beats_per_class < 2:
        raise DataError("need >= 2 beats per class")
    config = config or EcgBeatConfig()
    config.validate()
    rng = np.random.default_rng(seed)
    abnormal_rows = [
        extract_beat_features(synthesize_beat(config, rng, abnormal=True), config)
        for _ in range(beats_per_class)
    ]
    normal_rows = [
        extract_beat_features(synthesize_beat(config, rng, abnormal=False), config)
        for _ in range(beats_per_class)
    ]
    return Dataset.from_class_arrays(
        samples_a=np.vstack(abnormal_rows),
        samples_b=np.vstack(normal_rows),
        name=name,
    )
