"""Simulated ECoG brain-computer-interface dataset (paper Section 5.2).

**Substitution note (see DESIGN.md Section 6).**  The paper evaluates on a
private clinical ECoG dataset (Wang et al., PLoS ONE 2013): 42 features
extracted from cortical recordings, 70 trials per binary movement direction
(left/right).  That data is not available, so this module builds a
statistically matched stand-in that preserves everything the experiment
actually exercises:

- **Dimensions**: 42 features, 70 trials per class (configurable).
- **Feature structure**: features model log band-power over simulated
  electrode channels x frequency bands.  Channels share a spatially
  correlated background (nearby electrodes see common cortical activity),
  which produces the strongly non-diagonal, ill-conditioned covariance that
  makes the BCI case hard (n_train < 3M per CV fold).
- **Class signal**: only a subset of channels is movement-tuned, each
  shifting a few band features between left and right trials — a low-rank
  mean difference buried in correlated noise, the regime where LDA's
  noise-cancelling weights blow up exactly as in the synthetic example.
- **Difficulty calibration**: default parameters land floating-point LDA
  5-fold-CV error near the paper's ~20% floor.

The generator is deterministic given ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .dataset import Dataset

__all__ = ["BciConfig", "make_bci_dataset"]


@dataclass(frozen=True)
class BciConfig:
    """Parameters of the simulated ECoG movement-decoding dataset.

    Defaults reproduce the paper's shape: ``num_channels * num_bands = 42``
    features and 70 trials per movement direction.
    """

    num_channels: int = 14
    num_bands: int = 3
    trials_per_class: int = 70
    informative_channels: int = 4
    signal_strength: float = 0.5
    spatial_correlation: float = 0.9
    band_correlation: float = 0.35
    noise_scale: float = 1.0
    trial_jitter: float = 0.25
    seed: int = 0

    @property
    def num_features(self) -> int:
        return self.num_channels * self.num_bands

    def validate(self) -> None:
        if self.num_channels < 1 or self.num_bands < 1:
            raise DataError("need at least one channel and one band")
        if self.trials_per_class < 2:
            raise DataError("need at least 2 trials per class")
        if not 0 < self.informative_channels <= self.num_channels:
            raise DataError(
                f"informative_channels must be in [1, {self.num_channels}], "
                f"got {self.informative_channels}"
            )
        if not 0.0 <= self.spatial_correlation < 1.0:
            raise DataError("spatial_correlation must be in [0, 1)")
        if not 0.0 <= self.band_correlation < 1.0:
            raise DataError("band_correlation must be in [0, 1)")


def _channel_covariance(config: BciConfig) -> np.ndarray:
    """Exponentially decaying spatial correlation along the electrode strip."""
    idx = np.arange(config.num_channels)
    distance = np.abs(idx[:, None] - idx[None, :])
    return config.spatial_correlation ** distance


def _band_covariance(config: BciConfig) -> np.ndarray:
    """Correlation between frequency bands of the same channel."""
    idx = np.arange(config.num_bands)
    distance = np.abs(idx[:, None] - idx[None, :])
    return config.band_correlation ** distance


def make_bci_dataset(config: "BciConfig | None" = None, name: str = "bci") -> Dataset:
    """Draw the simulated ECoG movement-decoding dataset.

    Features are ordered channel-major: feature ``c * num_bands + b`` is
    band ``b`` of channel ``c``.  Class A is "left", class B is "right".
    """
    config = config or BciConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    # Noise covariance: Kronecker(channel spatial, band) — the standard
    # separable model for multi-channel band-power features.
    covariance = np.kron(_channel_covariance(config), _band_covariance(config))
    covariance *= config.noise_scale**2
    num_features = config.num_features

    # Movement tuning: a few channels shift some of their bands between
    # classes.  Tuning signs/magnitudes are drawn once (they are properties
    # of the simulated cortex, not of individual trials).
    tuned_channels = rng.choice(
        config.num_channels, size=config.informative_channels, replace=False
    )
    mean_shift = np.zeros(num_features)
    for channel in tuned_channels:
        band_tuning = rng.normal(0.0, 1.0, size=config.num_bands)
        band_tuning /= max(np.linalg.norm(band_tuning), 1e-12)
        start = channel * config.num_bands
        mean_shift[start : start + config.num_bands] = (
            config.signal_strength * band_tuning
        )

    def draw_trials(sign: float) -> np.ndarray:
        base = rng.multivariate_normal(
            sign * 0.5 * mean_shift, covariance, size=config.trials_per_class
        )
        # Per-trial excitability jitter: multiplies the whole trial's power,
        # the dominant non-Gaussian artifact in real ECoG band power.
        gain = 1.0 + config.trial_jitter * rng.standard_normal(
            (config.trials_per_class, 1)
        )
        return base * gain

    return Dataset.from_class_arrays(
        samples_a=draw_trials(+1.0),
        samples_b=draw_trials(-1.0),
        name=name,
    )


def make_bci_dataset_from_signals(
    trials_per_class: int = 70,
    seed: int = 0,
    name: str = "bci-raw",
) -> Dataset:
    """The deep-simulation alternative: raw ECoG -> filters -> band power.

    Instead of drawing band-power features from a Gaussian model, simulate
    raw multi-channel cortical signals (:class:`repro.signal.EcogSimulator`)
    and run the actual Welch band-power front end
    (:class:`repro.signal.BandPowerExtractor`) over them — 14 channels x 3
    bands = the paper's 42 features.  Slower than :func:`make_bci_dataset`
    (seconds, not milliseconds) but exercises the full signal chain; used
    by ``examples/ecog_pipeline.py`` and the end-to-end tests.
    """
    from ..signal.features import BandPowerExtractor, trials_to_dataset
    from ..signal.timeseries import EcogSimulator

    simulator = EcogSimulator(seed=seed)
    trials = simulator.trials(trials_per_class)
    extractor = BandPowerExtractor(sample_rate=simulator.config.sample_rate)
    dataset = trials_to_dataset(trials, extractor, name=name)
    return dataset
