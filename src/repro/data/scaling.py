"""Feature scaling into the fixed-point range (paper Section 3 preprocessing).

"For the feature vector x, all features in x can be carefully scaled to
avoid overflow" — before anything is quantized, features are mapped into a
target interval inside the ``QK.F`` range.  The scaler is fit on training
data only and then applied to test data (a fitted affine map per feature),
mirroring how a front-end amplifier/ADC chain would be calibrated once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, InputValidationError
from ..fixedpoint.qformat import QFormat
from .dataset import Dataset

__all__ = ["FeatureScaler", "scale_dataset_pair"]


@dataclass
class FeatureScaler:
    """Per-feature affine map ``x -> (x - offset) * gain`` into ``[-limit, limit]``.

    Parameters
    ----------
    limit:
        Half-width of the target interval.  For a format ``QK.F`` the
        natural choice is slightly inside ``2**(K-1)`` so that quantized
        features cannot saturate; :meth:`for_format` picks
        ``limit = (2**(K-1)) * margin``.
    center:
        When True (default), features are centered at the midpoint of their
        training range; otherwise only gain is applied.
    """

    limit: float = 1.0
    center: bool = True

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise InputValidationError(f"limit must be > 0, got {self.limit}")
        self._offset: "np.ndarray | None" = None
        self._gain: "np.ndarray | None" = None

    @classmethod
    def for_format(cls, fmt: QFormat, margin: float = 0.9, center: bool = True) -> "FeatureScaler":
        """Scaler targeting ``margin`` of the format's positive range."""
        if not 0.0 < margin <= 1.0:
            raise InputValidationError(f"margin must be in (0, 1], got {margin}")
        return cls(limit=float(2.0 ** (fmt.integer_bits - 1)) * margin, center=center)

    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._gain is not None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        """Learn per-feature offset and gain from training rows."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 1:
            raise DataError(f"features must be a non-empty (N, M) array, got {x.shape}")
        col_min = x.min(axis=0)
        col_max = x.max(axis=0)
        if self.center:
            offset = 0.5 * (col_min + col_max)
        else:
            offset = np.zeros(x.shape[1])
        half_range = np.maximum(
            np.maximum(np.abs(col_max - offset), np.abs(col_min - offset)), 1e-12
        )
        self._offset = offset
        self._gain = self.limit / half_range
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted map.  Test rows may exceed ``[-limit, limit]`` slightly."""
        if not self.is_fitted:
            raise DataError("scaler is not fitted; call fit() first")
        x = np.asarray(features, dtype=np.float64)
        return (x - self._offset) * self._gain

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


def scale_dataset_pair(
    train: Dataset, test: Dataset, fmt: QFormat, margin: float = 0.9
) -> "tuple[Dataset, Dataset, FeatureScaler]":
    """Fit a scaler on ``train`` and apply it to both datasets.

    Returns the scaled datasets and the fitted scaler (needed to deploy the
    same front-end scaling on-chip).
    """
    scaler = FeatureScaler.for_format(fmt, margin=margin)
    scaler.fit(train.features)
    return (
        train.map_features(scaler.transform),
        test.map_features(scaler.transform),
        scaler,
    )
