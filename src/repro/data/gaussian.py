"""Generic two-class Gaussian generators and exact error analysis.

The paper's statistical model (Eq. 14) treats each class as a multivariate
Gaussian.  This module draws datasets from explicit class Gaussians and —
because for a *linear* classifier on Gaussian classes the error is available
in closed form — computes the exact (population) classification error of any
weight/threshold pair.  Tests use this to verify Monte-Carlo error estimates
and the intuition behind Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from ..stats.normal import norm_cdf
from .dataset import Dataset

__all__ = ["GaussianClassModel", "TwoClassGaussianModel", "make_gaussian_dataset"]


@dataclass(frozen=True)
class GaussianClassModel:
    """One class: ``x ~ Gauss(mean, covariance)``."""

    mean: np.ndarray
    covariance: np.ndarray

    def __post_init__(self) -> None:
        mean = np.asarray(self.mean, dtype=np.float64)
        cov = np.asarray(self.covariance, dtype=np.float64)
        if mean.ndim != 1:
            raise DataError(f"mean must be 1-D, got shape {mean.shape}")
        if cov.shape != (mean.size, mean.size):
            raise DataError(
                f"covariance shape {cov.shape} does not match mean length {mean.size}"
            )
        object.__setattr__(self, "mean", mean)
        object.__setattr__(self, "covariance", 0.5 * (cov + cov.T))

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.multivariate_normal(self.mean, self.covariance, size=count)


@dataclass(frozen=True)
class TwoClassGaussianModel:
    """The full Eq. 14 model: class A and class B Gaussians, equal priors."""

    class_a: GaussianClassModel
    class_b: GaussianClassModel

    def __post_init__(self) -> None:
        if self.class_a.mean.shape != self.class_b.mean.shape:
            raise DataError("class dimensions differ")

    @property
    def num_features(self) -> int:
        return int(self.class_a.mean.size)

    def sample_dataset(
        self, samples_per_class: int, seed: int = 0, name: str = "gaussian"
    ) -> Dataset:
        """Draw a balanced dataset from the model."""
        rng = np.random.default_rng(seed)
        return Dataset.from_class_arrays(
            samples_a=self.class_a.sample(samples_per_class, rng),
            samples_b=self.class_b.sample(samples_per_class, rng),
            name=name,
        )

    def linear_classifier_error(self, weights: np.ndarray, threshold: float) -> float:
        """Exact population error of ``predict A iff w'x - threshold >= 0``.

        For Gaussian ``x``, the projection ``w'x`` is Gaussian per class, so
        each class's error rate is one normal cdf evaluation.  Degenerate
        zero-variance projections are handled by treating the projection as
        deterministic.
        """
        w = np.asarray(weights, dtype=np.float64)
        threshold = float(threshold)
        errors = []
        for model, predicted_positive in ((self.class_a, True), (self.class_b, False)):
            mean = float(w @ model.mean) - threshold
            std = float(np.sqrt(max(w @ model.covariance @ w, 0.0)))
            if std == 0.0:
                wrong = (mean < 0.0) if predicted_positive else (mean >= 0.0)
                errors.append(1.0 if wrong else 0.0)
            else:
                prob_positive = 1.0 - float(norm_cdf(-mean / std))
                errors.append(1.0 - prob_positive if predicted_positive else prob_positive)
        return float(np.mean(errors))

    def bayes_error_equal_covariance(self) -> float:
        """Bayes error when both classes share the covariance of class A.

        ``0.5 * erfc(d / (2 sqrt(2)))`` with Mahalanobis distance ``d``;
        used as a floor reference in the experiment reports.
        """
        pooled = 0.5 * (self.class_a.covariance + self.class_b.covariance)
        diff = self.class_a.mean - self.class_b.mean
        mahalanobis = float(np.sqrt(diff @ np.linalg.solve(pooled, diff)))
        return float(norm_cdf(-0.5 * mahalanobis))


def make_gaussian_dataset(
    mean_a: np.ndarray,
    mean_b: np.ndarray,
    covariance: np.ndarray,
    samples_per_class: int,
    seed: int = 0,
    name: str = "gaussian",
) -> Dataset:
    """Shared-covariance two-class Gaussian dataset (the textbook LDA setting)."""
    model = TwoClassGaussianModel(
        class_a=GaussianClassModel(mean_a, covariance),
        class_b=GaussianClassModel(mean_b, covariance),
    )
    return model.sample_dataset(samples_per_class, seed=seed, name=name)
