"""Energy-per-classification estimates.

Combines the gate-count area model with a switching-activity assumption to
estimate energy per decision: each gate switches with activity ``alpha``
per evaluated operation, and a serial MAC performs ``M`` multiply-adds per
classification.  Absolute numbers are in normalized gate-switch units; only
ratios across word lengths are meaningful, which is exactly how the paper
argues (9x, 1.8x).
"""

from __future__ import annotations

from dataclasses import dataclass

from .area import mac_datapath_gates
from ..errors import InputValidationError

__all__ = ["EnergyModel", "EnergyEstimate"]


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown for one classification (normalized units)."""

    per_mac: float
    num_macs: int
    total: float


@dataclass(frozen=True)
class EnergyModel:
    """Switched-capacitance energy model over the serial MAC datapath.

    Parameters
    ----------
    activity:
        Mean switching activity per gate per operation (typical 0.1-0.3 for
        datapath logic).
    """

    activity: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 < self.activity <= 1.0:
            raise InputValidationError(f"activity must be in (0, 1], got {self.activity}")

    def per_classification(self, word_length: int, num_features: int) -> EnergyEstimate:
        """Energy of one ``M``-feature classification at ``word_length`` bits."""
        if num_features < 1:
            raise InputValidationError(f"num_features must be >= 1, got {num_features}")
        gates = mac_datapath_gates(word_length)
        per_mac = self.activity * gates.total
        return EnergyEstimate(
            per_mac=per_mac, num_macs=num_features, total=per_mac * num_features
        )

    def reduction(self, from_bits: int, to_bits: int, num_features: int) -> float:
        """Energy ratio between two word lengths (feature count cancels)."""
        return (
            self.per_classification(from_bits, num_features).total
            / self.per_classification(to_bits, num_features).total
        )
