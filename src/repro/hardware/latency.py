"""Latency / throughput model for the classifier datapath.

The paper's first motivation is *small latency* (real-time response for
vital-sign monitoring and deep-brain stimulation); this module quantifies
the latency side of the serial-vs-parallel MAC architecture choice:

- **serial** — one multiplier shared across features: ``M + pipeline``
  cycles per decision, minimal area, the sub-10 uW choice;
- **parallel** — one multiplier per feature with an adder tree:
  ``1 + ceil(log2(M)) + pipeline`` cycles, ``M``-times the multiplier
  area;
- **digit-serial** — ``d`` bits per cycle through a narrow multiplier:
  ``M * ceil(WL / d)`` cycles, the knob between the two extremes.

Clock-rate limits are modeled with a unit-gate critical-path estimate so
latency converts to wall-clock time per decision, and the throughput check
against a sampling rate answers "can this front end keep up?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DataError
from .area import multiplier_gates

__all__ = ["LatencyEstimate", "estimate_latency", "meets_sample_rate"]

# Unit-gate delay estimates (one 2-input NAND = 1 delay unit).
_GATE_DELAY_NS = 0.5  # a conservative subthreshold-ish gate delay
_PIPELINE_STAGES = 1  # output register


@dataclass(frozen=True)
class LatencyEstimate:
    """Cycles and wall-clock latency of one classification."""

    architecture: str
    cycles_per_decision: int
    critical_path_gates: int
    max_clock_hz: float
    latency_seconds: float
    relative_multiplier_area: float


def _critical_path(word_length: int, architecture: str, num_features: int) -> int:
    """Unit-gate critical path of one cycle."""
    # Array multiplier: ~2*WL full-adder stages of 2 gate levels each.
    multiplier_path = 4 * word_length
    adder_path = 2 * word_length  # ripple carry
    if architecture == "parallel":
        tree_depth = max(1, math.ceil(math.log2(max(num_features, 2))))
        return multiplier_path + tree_depth * adder_path
    return multiplier_path + adder_path


def estimate_latency(
    word_length: int,
    num_features: int,
    architecture: str = "serial",
    digit_bits: int = 4,
) -> LatencyEstimate:
    """Latency of one decision for the chosen MAC architecture.

    Parameters
    ----------
    word_length:
        Datapath width ``K + F``.
    num_features:
        ``M`` — multiplications per decision.
    architecture:
        ``"serial"``, ``"parallel"``, or ``"digit-serial"``.
    digit_bits:
        Digits processed per cycle for the digit-serial variant.
    """
    if word_length < 1 or num_features < 1:
        raise DataError("word_length and num_features must be >= 1")
    if architecture == "serial":
        cycles = num_features + _PIPELINE_STAGES
        area = 1.0
    elif architecture == "parallel":
        cycles = 1 + math.ceil(math.log2(max(num_features, 2))) + _PIPELINE_STAGES
        area = float(num_features)
    elif architecture == "digit-serial":
        if digit_bits < 1:
            raise DataError(f"digit_bits must be >= 1, got {digit_bits}")
        cycles = num_features * math.ceil(word_length / digit_bits) + _PIPELINE_STAGES
        area = multiplier_gates(max(digit_bits, 1)) / multiplier_gates(word_length)
    else:
        raise DataError(f"unknown architecture {architecture!r}")

    path = _critical_path(word_length, architecture, num_features)
    max_clock = 1.0 / (path * _GATE_DELAY_NS * 1e-9)
    return LatencyEstimate(
        architecture=architecture,
        cycles_per_decision=cycles,
        critical_path_gates=path,
        max_clock_hz=max_clock,
        latency_seconds=cycles / max_clock,
        relative_multiplier_area=area,
    )


def meets_sample_rate(estimate: LatencyEstimate, sample_rate_hz: float) -> bool:
    """Can the datapath produce one decision per input sample?"""
    if sample_rate_hz <= 0:
        raise DataError(f"sample rate must be > 0, got {sample_rate_hz}")
    return estimate.latency_seconds <= 1.0 / sample_rate_hz
