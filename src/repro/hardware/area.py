"""Gate-level area estimates for the classifier datapath (unit-gate model).

Standard unit-gate accounting (one 2-input NAND = 1 gate, one full adder =
9 gates, one register bit = 4 gates): a ripple-carry adder of width ``n``
costs ``9n`` gates, an ``n x n`` array multiplier costs roughly ``9n^2``
(one full adder per partial-product bit) plus ``n^2`` AND gates for partial
products.  These are the textbook numbers behind the paper's power-scales-
quadratically argument, and they let the report module print area/energy
next to classification error.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import InputValidationError

__all__ = ["GateCounts", "adder_gates", "multiplier_gates", "register_gates", "mac_datapath_gates"]

FULL_ADDER_GATES = 9
AND_GATE = 1
REGISTER_BIT_GATES = 4


@dataclass(frozen=True)
class GateCounts:
    """Gate-count breakdown of one classifier datapath."""

    multiplier: int
    adder: int
    registers: int
    comparator: int

    @property
    def total(self) -> int:
        return self.multiplier + self.adder + self.registers + self.comparator


def adder_gates(width: int) -> int:
    """Ripple-carry adder of ``width`` bits: one full adder per bit."""
    if width < 1:
        raise InputValidationError(f"width must be >= 1, got {width}")
    return FULL_ADDER_GATES * width


def multiplier_gates(width: int) -> int:
    """``width x width`` array multiplier: AND array + (width-1) adder rows."""
    if width < 1:
        raise InputValidationError(f"width must be >= 1, got {width}")
    partial_products = AND_GATE * width * width
    adder_rows = FULL_ADDER_GATES * width * max(width - 1, 0)
    return partial_products + adder_rows


def register_gates(width: int) -> int:
    """One ``width``-bit register."""
    if width < 1:
        raise InputValidationError(f"width must be >= 1, got {width}")
    return REGISTER_BIT_GATES * width


def mac_datapath_gates(word_length: int, serial: bool = True) -> GateCounts:
    """Gate counts for the classifier's multiply-accumulate datapath.

    Parameters
    ----------
    word_length:
        The shared ``K + F`` width.
    serial:
        True models the low-power time-multiplexed implementation (one
        multiplier + one accumulator shared across features, the usual
        choice at <10 uW budgets).  False would scale the multiplier and
        adder by the feature count, which callers can do themselves.
    """
    multiplier = multiplier_gates(word_length)
    adder = adder_gates(word_length)
    registers = register_gates(word_length) * 2  # accumulator + operand reg
    comparator = word_length  # sign check + zero compare, ~1 gate/bit
    counts = GateCounts(
        multiplier=multiplier, adder=adder, registers=registers, comparator=comparator
    )
    if not serial:
        raise NotImplementedError("parallel datapath accounting is left to callers")
    return counts
