"""ctypes loader turning generated C kernels into an execution backend.

:func:`load_native_kernel` is the artifact-load-time entry point: generate
the batch kernel C for a classifier (:mod:`repro.hardware.cgen`), compile
it through the content-hash build cache (:mod:`repro.hardware.compile`),
``ctypes.CDLL`` the result, and wrap it as a :class:`NativeKernel` whose
:meth:`NativeKernel.run_raws` consumes/produces exactly the arrays the
numpy fast path does — so :class:`repro.serve.engine.BatchInferenceEngine`
can swap it in as a third engine path with no semantic seam.

Every failure mode (no compiler, unsupported format/overflow, compile
error, corrupted cache entry that also fails after one evict-and-rebuild)
raises :class:`~repro.errors.NativeBackendError`; the engine catches it and
falls back to the numpy paths, recording the reason.  Bit-exactness of the
loaded kernel is enforced continuously by the ``native_vs_fast``
conformance oracle and the ``native_engine`` golden vectors.
"""

from __future__ import annotations

import ctypes
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..errors import InputValidationError, NativeBackendError
from ..fixedpoint.overflow import OverflowMode
from . import cgen
from .compile import compile_shared_library, evict_cache_entry, find_compiler

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..core.classifier import FixedPointLinearClassifier

__all__ = ["NativeKernel", "load_native_kernel", "native_backend_available"]

_I64_P = ctypes.POINTER(ctypes.c_int64)
_I8_P = ctypes.POINTER(ctypes.c_int8)
_U8_P = ctypes.POINTER(ctypes.c_uint8)


def native_backend_available() -> bool:
    """True when a C compiler is on this host (kernels may still fail)."""
    return find_compiler() is not None


class NativeKernel:
    """One compiled batch kernel bound to one classifier's constants.

    Attributes
    ----------
    library_path:
        The cached shared library backing this kernel.
    source:
        The exact C translation unit that was compiled (its content hash is
        the cache key).
    num_features:
        Expected feature-vector width ``M``.
    """

    def __init__(
        self,
        source: str,
        library_path: str,
        num_features: int,
    ) -> None:
        self.source = source
        self.library_path = library_path
        self.num_features = int(num_features)
        try:
            library = ctypes.CDLL(library_path)
            fn = getattr(library, cgen.BATCH_KERNEL_SYMBOL)
        except (OSError, AttributeError) as exc:
            raise NativeBackendError(
                f"cannot load native kernel {library_path!r}: {exc}"
            ) from exc
        fn.restype = None
        fn.argtypes = [_I64_P, ctypes.c_int64, _I64_P, _I8_P, _U8_P, _U8_P]
        self._library = library  # keep the dlopen handle alive
        self._fn = fn

    def run_raws(
        self, x_raws: np.ndarray
    ) -> "Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """Project a batch of in-range int64 raw words through the kernel.

        Returns ``(projection_raws, labels, product_overflowed,
        accumulator_overflowed)`` with the same dtypes/shapes the engine's
        numpy fast path produces.  The caller guarantees quantization and
        range clipping already happened (as for the numpy paths).
        """
        x = np.ascontiguousarray(x_raws, dtype=np.int64)
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise NativeBackendError(
                f"kernel expects (n, {self.num_features}) raw words, "
                f"got shape {x.shape}"
            )
        n, m = x.shape
        projection_raws = np.empty(n, dtype=np.int64)
        labels8 = np.empty(n, dtype=np.int8)
        # The kernel stores strict 0/1 bytes, which are valid numpy bool_
        # representations — writing the flags straight into bool arrays
        # avoids two full-batch astype copies on the hot path.
        product_overflowed = np.empty((n, m), dtype=np.bool_)
        accumulator_overflowed = np.empty((n, m), dtype=np.bool_)
        self._fn(
            x.ctypes.data_as(_I64_P),
            ctypes.c_int64(n),
            projection_raws.ctypes.data_as(_I64_P),
            labels8.ctypes.data_as(_I8_P),
            product_overflowed.ctypes.data_as(_U8_P),
            accumulator_overflowed.ctypes.data_as(_U8_P),
        )
        return (
            projection_raws,
            labels8.astype(np.int64),
            product_overflowed,
            accumulator_overflowed,
        )

    def describe(self) -> str:
        """One-line summary (library path tail + width)."""
        return f"NativeKernel(M={self.num_features}, lib={self.library_path})"


def load_native_kernel(
    classifier: "FixedPointLinearClassifier",
    overflow: "OverflowMode | str" = OverflowMode.WRAP,
    cache_dir: Optional[str] = None,
    compiler: Optional[str] = None,
    sanitize: bool = False,
) -> NativeKernel:
    """Generate, compile (or reuse from cache), and load a batch kernel.

    ``sanitize=True`` compiles with UBSan + ASan instrumentation (separate
    cache key).  The ASan runtime must already be loaded in this process —
    run under ``LD_PRELOAD`` of
    :func:`repro.hardware.compile.sanitizer_runtime_preload` — or the
    ``dlopen`` here fails cleanly with
    :class:`~repro.errors.NativeBackendError`.

    A cache entry that exists but cannot be ``dlopen``-ed (corruption,
    truncated write from a killed process) is evicted and rebuilt exactly
    once; a second failure propagates as
    :class:`~repro.errors.NativeBackendError`.
    """
    try:
        source = cgen.generate_batch_kernel_c(classifier, overflow=overflow)
    except InputValidationError as exc:
        # Normalize "this classifier is not generable" into the one error
        # type the engine's fallback logic handles.
        raise NativeBackendError(str(exc)) from exc
    library_path = compile_shared_library(
        source, cache_dir=cache_dir, compiler=compiler, sanitize=sanitize
    )
    try:
        return NativeKernel(source, library_path, classifier.num_features)
    except NativeBackendError:
        # Corrupted cache entry: evict, rebuild once, then give up.
        evict_cache_entry(source, cache_dir, sanitize=sanitize)
        library_path = compile_shared_library(
            source, cache_dir=cache_dir, compiler=compiler, sanitize=sanitize
        )
        return NativeKernel(source, library_path, classifier.num_features)
