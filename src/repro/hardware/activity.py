"""Data-driven switching-activity and dynamic-energy estimation.

The static :class:`~repro.hardware.energy.EnergyModel` assumes a fixed
switching activity per gate; real power sign-off counts **toggles** on real
stimulus.  This module replays a feature stream through the bit-exact
datapath and counts Hamming-distance bit flips on the architectural
registers and buses of the serial MAC:

- the operand bus (feature word per cycle),
- the coefficient bus (weight word per cycle),
- the product bus,
- the accumulator register.

Dynamic energy is the toggle count weighted by each node's capacitance
proxy (its gate count share), giving an energy-per-classification figure
that reflects the *actual data statistics* — e.g. a classifier whose
features idle near zero toggles far less than the 0.5-activity worst case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classifier import FixedPointLinearClassifier
from ..errors import DataError
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.quantize import quantize_raw
from .area import adder_gates, multiplier_gates, register_gates

__all__ = ["ActivityReport", "measure_switching_activity"]


def _hamming(a: int, b: int, width: int) -> int:
    mask = (1 << width) - 1
    return int(bin((a ^ b) & mask).count("1"))


@dataclass(frozen=True)
class ActivityReport:
    """Measured toggles and the derived dynamic-energy estimate.

    Toggle counts are totals over all samples; ``*_activity`` fields are
    mean toggles per bit per cycle (0.5 = uniformly random data).
    """

    samples: int
    cycles: int
    operand_toggles: int
    weight_toggles: int
    product_toggles: int
    accumulator_toggles: int
    operand_activity: float
    weight_activity: float
    product_activity: float
    accumulator_activity: float
    dynamic_energy_per_classification: float

    @property
    def total_toggles(self) -> int:
        return (
            self.operand_toggles
            + self.weight_toggles
            + self.product_toggles
            + self.accumulator_toggles
        )


def measure_switching_activity(
    classifier: FixedPointLinearClassifier, features: np.ndarray
) -> ActivityReport:
    """Replay ``features`` through the serial MAC and count register toggles.

    Parameters
    ----------
    classifier:
        The trained classifier (weights define the coefficient bus).
    features:
        ``(N, M)`` real-valued feature rows; quantized like the datapath
        front end.

    Returns
    -------
    ActivityReport
        Toggle totals, per-bit activities, and a dynamic-energy estimate in
        gate-capacitance units (toggles weighted by node gate counts,
        normalized per classification).
    """
    x = np.atleast_2d(np.asarray(features, dtype=np.float64))
    if x.shape[1] != classifier.num_features:
        raise DataError(
            f"features have {x.shape[1]} columns, classifier expects "
            f"{classifier.num_features}"
        )
    if x.shape[0] < 1:
        raise DataError("need at least one sample")
    fmt = classifier.fmt
    width = fmt.word_length
    datapath = classifier.datapath()

    x_raws = np.asarray(
        quantize_raw(
            x, fmt, rounding=classifier.rounding, overflow=OverflowMode.SATURATE
        ),
        dtype=np.int64,
    )
    weight_raws = datapath.weight_raws

    operand_toggles = 0
    weight_toggles = 0
    product_toggles = 0
    accumulator_toggles = 0
    cycles = 0
    previous_operand = 0
    previous_weight = 0
    previous_product = 0
    previous_accumulator = 0

    for row in x_raws:
        trace = datapath.project_traced(fmt.to_real(row))
        accumulator = 0
        for m, (x_raw, w_raw) in enumerate(zip(row.tolist(), weight_raws.tolist())):
            operand_toggles += _hamming(previous_operand, x_raw, width)
            weight_toggles += _hamming(previous_weight, w_raw, width)
            product = trace.product_raws[m]
            product_toggles += _hamming(previous_product, product, width)
            accumulator = trace.accumulator_raws[m]
            accumulator_toggles += _hamming(previous_accumulator, accumulator, width)
            previous_operand, previous_weight = x_raw, w_raw
            previous_product, previous_accumulator = product, accumulator
            cycles += 1

    # Capacitance proxies: toggles on the operand/weight buses drive the
    # multiplier array; product toggles drive the adder; accumulator
    # toggles drive its register.  Per-bit toggle cost = node gates / width.
    mult_cap = multiplier_gates(width) / width
    adder_cap = adder_gates(width) / width
    reg_cap = register_gates(width) / width
    energy_total = (
        (operand_toggles + weight_toggles) * mult_cap
        + product_toggles * adder_cap
        + accumulator_toggles * reg_cap
    )
    bits_cycles = max(cycles * width, 1)
    return ActivityReport(
        samples=int(x.shape[0]),
        cycles=cycles,
        operand_toggles=operand_toggles,
        weight_toggles=weight_toggles,
        product_toggles=product_toggles,
        accumulator_toggles=accumulator_toggles,
        operand_activity=operand_toggles / bits_cycles,
        weight_activity=weight_toggles / bits_cycles,
        product_activity=product_toggles / bits_cycles,
        accumulator_activity=accumulator_toggles / bits_cycles,
        dynamic_energy_per_classification=energy_total / x.shape[0],
    )
