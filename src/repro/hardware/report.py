"""Text report builder combining accuracy and hardware cost.

Produces the implementation summary a designer would want after training:
format, weights, estimated gates/energy/power-scaling, and the reproduction
of the paper's power-reduction arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classifier import FixedPointLinearClassifier
from .area import mac_datapath_gates
from .energy import EnergyModel
from .power import paper_power_model

__all__ = ["ImplementationReport", "build_report"]


@dataclass(frozen=True)
class ImplementationReport:
    """Hardware-facing summary of a trained classifier."""

    word_length: int
    num_features: int
    total_gates: int
    energy_per_classification: float
    text: str


def build_report(
    classifier: FixedPointLinearClassifier,
    test_error: "float | None" = None,
    reference_word_length: "int | None" = None,
    activity_features: "np.ndarray | None" = None,
) -> ImplementationReport:
    """Build the implementation report for a trained classifier.

    Parameters
    ----------
    classifier:
        The trained fixed-point classifier.
    test_error:
        Optional measured classification error to include.
    reference_word_length:
        If given, the report quotes the power reduction relative to this
        word length using the paper's quadratic model.
    activity_features:
        Optional ``(N, M)`` representative feature stream; when given, the
        report adds measured (toggle-count) switching activity and dynamic
        energy next to the static model.
    """
    from .latency import estimate_latency

    fmt = classifier.fmt
    gates = mac_datapath_gates(fmt.word_length)
    energy = EnergyModel().per_classification(fmt.word_length, classifier.num_features)
    latency = estimate_latency(fmt.word_length, classifier.num_features, "serial")

    lines = [
        "LDA-FP implementation report",
        "=" * 34,
        f"format            : {fmt} ({fmt.word_length}-bit)",
        f"features          : {classifier.num_features}",
        f"weights           : {np.array2string(classifier.weights, precision=6)}",
        f"threshold         : {classifier.threshold:+.6g}",
        f"polarity          : {'A on >=0' if classifier.polarity > 0 else 'A on <0'}",
        "",
        "serial MAC datapath (unit-gate model)",
        f"  multiplier gates: {gates.multiplier}",
        f"  adder gates     : {gates.adder}",
        f"  register gates  : {gates.registers}",
        f"  comparator gates: {gates.comparator}",
        f"  total gates     : {gates.total}",
        f"energy/decision   : {energy.total:.1f} gate-switch units",
        f"latency/decision  : {latency.cycles_per_decision} cycles "
        f"(~{1e6 * latency.latency_seconds:.2f} us at the unit-gate clock limit)",
    ]
    if activity_features is not None:
        from .activity import measure_switching_activity

        measured = measure_switching_activity(classifier, activity_features)
        lines.append(
            f"measured activity : operand {measured.operand_activity:.3f}, "
            f"product {measured.product_activity:.3f}, "
            f"accumulator {measured.accumulator_activity:.3f} toggles/bit/cycle"
        )
        lines.append(
            f"measured energy   : {measured.dynamic_energy_per_classification:.1f} "
            f"gate-capacitance units/decision "
            f"({measured.samples} samples replayed)"
        )
    if test_error is not None:
        lines.append(f"test error        : {100.0 * test_error:.2f}%")
    if reference_word_length is not None:
        ratio = paper_power_model().reduction(reference_word_length, fmt.word_length)
        lines.append(
            f"power vs {reference_word_length}-bit : {ratio:.2f}x reduction "
            "(quadratic model, paper Section 5.1)"
        )
    text = "\n".join(lines) + "\n"
    return ImplementationReport(
        word_length=fmt.word_length,
        num_features=classifier.num_features,
        total_gates=gates.total,
        energy_per_classification=energy.total,
        text=text,
    )
