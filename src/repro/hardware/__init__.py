"""Hardware cost models and code generators for the trained classifier."""

from .activity import ActivityReport, measure_switching_activity
from .area import (
    GateCounts,
    adder_gates,
    mac_datapath_gates,
    multiplier_gates,
    register_gates,
)
from .cgen import BATCH_KERNEL_SYMBOL, generate_batch_kernel_c, generate_classifier_c
from .compile import compile_shared_library, default_cache_dir, find_compiler
from .energy import EnergyEstimate, EnergyModel
from .native import NativeKernel, load_native_kernel, native_backend_available
from .latency import LatencyEstimate, estimate_latency, meets_sample_rate
from .power import PowerModel, paper_power_model, power_ratio
from .report import ImplementationReport, build_report
from .testbench import TestbenchBundle, generate_testbench
from .verilog import VerilogGenerator, generate_classifier_verilog

__all__ = [
    "ActivityReport",
    "measure_switching_activity",
    "GateCounts",
    "adder_gates",
    "multiplier_gates",
    "register_gates",
    "mac_datapath_gates",
    "generate_classifier_c",
    "generate_batch_kernel_c",
    "BATCH_KERNEL_SYMBOL",
    "compile_shared_library",
    "default_cache_dir",
    "find_compiler",
    "NativeKernel",
    "load_native_kernel",
    "native_backend_available",
    "EnergyEstimate",
    "EnergyModel",
    "LatencyEstimate",
    "estimate_latency",
    "meets_sample_rate",
    "PowerModel",
    "paper_power_model",
    "power_ratio",
    "ImplementationReport",
    "build_report",
    "TestbenchBundle",
    "generate_testbench",
    "VerilogGenerator",
    "generate_classifier_verilog",
]
