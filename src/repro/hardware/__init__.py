"""Hardware cost models and code generators for the trained classifier."""

from .activity import ActivityReport, measure_switching_activity
from .area import (
    GateCounts,
    adder_gates,
    mac_datapath_gates,
    multiplier_gates,
    register_gates,
)
from .cgen import generate_classifier_c
from .energy import EnergyEstimate, EnergyModel
from .latency import LatencyEstimate, estimate_latency, meets_sample_rate
from .power import PowerModel, paper_power_model, power_ratio
from .report import ImplementationReport, build_report
from .testbench import TestbenchBundle, generate_testbench
from .verilog import VerilogGenerator, generate_classifier_verilog

__all__ = [
    "ActivityReport",
    "measure_switching_activity",
    "GateCounts",
    "adder_gates",
    "multiplier_gates",
    "register_gates",
    "mac_datapath_gates",
    "generate_classifier_c",
    "EnergyEstimate",
    "EnergyModel",
    "LatencyEstimate",
    "estimate_latency",
    "meets_sample_rate",
    "PowerModel",
    "paper_power_model",
    "power_ratio",
    "ImplementationReport",
    "build_report",
    "TestbenchBundle",
    "generate_testbench",
    "VerilogGenerator",
    "generate_classifier_verilog",
]
