"""Power model: quadratic in word length (paper Section 5.1, citing [13]).

"Since the power consumption of on-chip fixed-point arithmetic is almost a
quadratic function of the word length, LDA-FP reduces the power consumption
by up to 9x in this example."  The dominant datapath component is the array
multiplier, whose switched capacitance grows as the square of the operand
width; adders contribute a linear term.  We expose both the paper's pure
quadratic rule (used to reproduce the 9x and 1.8x claims) and a calibrated
quadratic-plus-linear model for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import InputValidationError

__all__ = ["PowerModel", "power_ratio", "paper_power_model"]


@dataclass(frozen=True)
class PowerModel:
    """``P(word_length) = quadratic * WL^2 + linear * WL + static`` (arbitrary units).

    The paper's headline numbers use the pure quadratic (``linear = static
    = 0``), for which power ratios depend only on the word-length ratio.
    """

    quadratic: float = 1.0
    linear: float = 0.0
    static: float = 0.0

    def __post_init__(self) -> None:
        if self.quadratic < 0 or self.linear < 0 or self.static < 0:
            raise InputValidationError("power model coefficients must be non-negative")
        if self.quadratic == 0 and self.linear == 0 and self.static == 0:
            raise InputValidationError("power model is identically zero")

    def power(self, word_length: int) -> float:
        """Power at a given word length (arbitrary units)."""
        if word_length < 1:
            raise InputValidationError(f"word length must be >= 1, got {word_length}")
        wl = float(word_length)
        return self.quadratic * wl * wl + self.linear * wl + self.static

    def reduction(self, from_bits: int, to_bits: int) -> float:
        """Power reduction factor when shrinking ``from_bits -> to_bits``.

        With the paper's pure quadratic model, ``reduction(12, 4) == 9.0``
        and ``reduction(8, 6) ~= 1.78`` ("1.8x").
        """
        return self.power(from_bits) / self.power(to_bits)


def paper_power_model() -> PowerModel:
    """The pure quadratic model behind the paper's 9x / 1.8x claims."""
    return PowerModel(quadratic=1.0, linear=0.0, static=0.0)


def power_ratio(from_bits: int, to_bits: int) -> float:
    """Shorthand for the paper's quadratic-rule power reduction factor."""
    return paper_power_model().reduction(from_bits, to_bits)
