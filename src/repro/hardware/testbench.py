"""Verilog testbench generator with golden vectors from the Python datapath.

Closes the verification loop for the generated RTL: the testbench streams a
set of quantized feature vectors into the classifier module and compares
each decision against the expectation computed by the *bit-exact Python
datapath simulator* — so a simulator run (iverilog/verilator) directly
checks RTL-vs-model equivalence.  The stimulus file format is plain
``$readmemh``-compatible hex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classifier import FixedPointLinearClassifier
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.quantize import quantize_raw
from ..errors import InputValidationError

__all__ = ["TestbenchBundle", "generate_testbench"]


@dataclass(frozen=True)
class TestbenchBundle:
    """The three artifacts a simulation run needs.

    Attributes
    ----------
    testbench:
        Verilog testbench source (`*_tb.v`).
    stimulus_hex:
        ``$readmemh`` file: one feature word per line, samples concatenated.
    expected_hex:
        ``$readmemh`` file: one expected decision bit per sample.
    """

    testbench: str
    stimulus_hex: str
    expected_hex: str


def _to_hex_word(raw: int, width: int) -> str:
    hex_digits = (width + 3) // 4
    return f"{raw & ((1 << width) - 1):0{hex_digits}X}"


def generate_testbench(
    classifier: FixedPointLinearClassifier,
    samples: np.ndarray,
    module_name: str = "lda_fp_classifier",
    stimulus_path: str = "stimulus.hex",
    expected_path: str = "expected.hex",
) -> TestbenchBundle:
    """Build the testbench + golden vectors for ``samples``.

    Parameters
    ----------
    classifier:
        The trained classifier the RTL was generated from.
    samples:
        ``(N, M)`` real-valued feature rows; they are quantized exactly as
        the datapath front-end would.
    module_name:
        Must match the module name passed to the Verilog generator.
    stimulus_path, expected_path:
        File names the testbench will ``$readmemh`` at simulation time.
    """
    fmt = classifier.fmt
    x = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    if x.shape[1] != classifier.num_features:
        raise InputValidationError(
            f"samples have {x.shape[1]} features, classifier expects "
            f"{classifier.num_features}"
        )
    num_samples, num_features = x.shape
    width = fmt.word_length

    raws = quantize_raw(
        x, fmt, rounding=classifier.rounding, overflow=OverflowMode.SATURATE
    )
    expected = classifier.predict_bitexact(x)

    stimulus_lines = [
        _to_hex_word(int(raws[s, f]), width)
        for s in range(num_samples)
        for f in range(num_features)
    ]
    expected_lines = [str(int(bit)) for bit in expected]

    tb: "list[str]" = []
    emit = tb.append
    emit("// Auto-generated testbench — do not edit.")
    emit("// Golden outputs computed by repro's bit-exact datapath model.")
    emit("`timescale 1ns/1ps")
    emit(f"module {module_name}_tb;")
    emit(f"    localparam WIDTH = {width};")
    emit(f"    localparam NUM_FEATURES = {num_features};")
    emit(f"    localparam NUM_SAMPLES = {num_samples};")
    emit("")
    emit("    reg clk = 1'b0;")
    emit("    reg rst_n = 1'b0;")
    emit("    reg in_valid = 1'b0;")
    emit("    reg signed [WIDTH-1:0] feature;")
    emit("    wire out_valid;")
    emit("    wire class_a;")
    emit("")
    emit(f"    {module_name} dut (")
    emit("        .clk(clk), .rst_n(rst_n), .in_valid(in_valid),")
    emit("        .feature(feature), .out_valid(out_valid), .class_a(class_a)")
    emit("    );")
    emit("")
    emit("    reg [WIDTH-1:0] stimulus [0:NUM_SAMPLES*NUM_FEATURES-1];")
    emit("    reg expected [0:NUM_SAMPLES-1];")
    emit("    integer sample_idx = 0;")
    emit("    integer feature_idx = 0;")
    emit("    integer failures = 0;")
    emit("")
    emit("    always #5 clk = ~clk;")
    emit("")
    emit("    initial begin")
    emit(f'        $readmemh("{stimulus_path}", stimulus);')
    emit(f'        $readmemh("{expected_path}", expected);')
    emit("        repeat (2) @(posedge clk);")
    emit("        rst_n = 1'b1;")
    emit("        @(posedge clk);")
    emit("        for (sample_idx = 0; sample_idx < NUM_SAMPLES; sample_idx = sample_idx + 1) begin")
    emit("            for (feature_idx = 0; feature_idx < NUM_FEATURES; feature_idx = feature_idx + 1) begin")
    emit("                feature  = stimulus[sample_idx*NUM_FEATURES + feature_idx];")
    emit("                in_valid = 1'b1;")
    emit("                @(posedge clk);")
    emit("            end")
    emit("            in_valid = 1'b0;")
    emit("            @(posedge clk);")
    emit("            if (class_a !== expected[sample_idx]) begin")
    emit('                $display("MISMATCH sample %0d: got %b expected %b",')
    emit("                         sample_idx, class_a, expected[sample_idx]);")
    emit("                failures = failures + 1;")
    emit("            end")
    emit("        end")
    emit('        if (failures == 0) $display("PASS: %0d samples", NUM_SAMPLES);')
    emit('        else $display("FAIL: %0d mismatches", failures);')
    emit("        $finish;")
    emit("    end")
    emit("endmodule")

    return TestbenchBundle(
        testbench="\n".join(tb) + "\n",
        stimulus_hex="\n".join(stimulus_lines) + "\n",
        expected_hex="\n".join(expected_lines) + "\n",
    )
