"""Content-hash-keyed build cache for generated C kernels.

:func:`compile_shared_library` turns a generated translation unit (see
:func:`repro.hardware.cgen.generate_batch_kernel_c`) into a shared library
the :mod:`repro.hardware.native` loader can ``ctypes.CDLL``.  The cache is
keyed by the SHA-256 of the *source text* (plus a cache-schema tag), so:

- identical artifacts reuse one compiled library across processes — the
  generator is deterministic (byte-identical C for identical classifiers),
  so the key is stable;
- any change to the emitted C — a different artifact, a codegen fix, an
  injected mutation from the fuzz selftest — lands on a fresh key and
  triggers a rebuild; a *stale* entry for the new source cannot exist by
  construction;
- a corrupted entry (truncated/garbage ``.so``) is detected at load time by
  the caller, evicted with :func:`evict_cache_entry`, and rebuilt once.

Layout: ``<cache_dir>/<digest16>.c`` (the exact compiled source, kept for
debuggability) and ``<cache_dir>/<digest16>.so``.  ``cache_dir`` defaults
to ``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro/native``.  Writes are
atomic (temp file + ``os.replace``) so concurrent builders race benignly.

No compiler is a *supported* configuration: :func:`find_compiler` returns
``None`` and every consumer degrades to the numpy engine paths (see
docs/native_backend.md for the fallback semantics).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import List, Optional

from ..errors import NativeBackendError

__all__ = [
    "CACHE_SCHEMA",
    "SANITIZE_FLAGS",
    "default_cache_dir",
    "find_compiler",
    "source_digest",
    "cache_paths",
    "compile_shared_library",
    "evict_cache_entry",
    "sanitizer_runtime_preload",
]

# Folded into every source digest; bump when the cache layout or the
# compile command changes so old entries can never be mistaken for new.
CACHE_SCHEMA = "repro.native-cache/v1"

# Candidate drivers probed in order when $CC is unset.
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

_COMPILE_FLAGS = ["-O2", "-shared", "-fPIC", "-fvisibility=default"]

#: Extra flags for ``sanitize=True`` builds: UBSan + ASan, abort on the
#: first report (a recovered report would silently pass CI), line info so
#: reports point at the generated source.
SANITIZE_FLAGS = [
    "-fsanitize=undefined,address",
    "-fno-sanitize-recover=all",
    "-g",
]


def default_cache_dir() -> str:
    """The build-cache directory: ``$REPRO_NATIVE_CACHE`` or ``~/.cache``."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")


def find_compiler() -> Optional[str]:
    """Absolute path of the C compiler to use, or None when there is none.

    ``$CC`` wins when set (and resolvable on PATH — a bogus ``$CC`` means
    "no compiler", it does not silently fall back to ``cc``, so CI can force
    the fallback paths deterministically); otherwise the first of ``cc``,
    ``gcc``, ``clang`` found on PATH.
    """
    env = os.environ.get("CC")
    if env:
        return shutil.which(env)
    for name in _COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def source_digest(source: str, sanitize: bool = False) -> str:
    """SHA-256 hex digest keying one generated translation unit.

    Sanitized builds fold a tag into the digest so a sanitizer-instrumented
    ``.so`` can never be served where a plain build is expected (and vice
    versa); plain-build digests are unchanged from prior releases.
    """
    schema = f"{CACHE_SCHEMA}:sanitize" if sanitize else CACHE_SCHEMA
    blob = f"{schema}\n{source}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def cache_paths(
    source: str, cache_dir: Optional[str] = None, sanitize: bool = False
) -> "tuple[str, str]":
    """The ``(c_path, so_path)`` cache locations for ``source``."""
    digest = source_digest(source, sanitize=sanitize)[:16]
    directory = cache_dir or default_cache_dir()
    return (
        os.path.join(directory, f"{digest}.c"),
        os.path.join(directory, f"{digest}.so"),
    )


def _atomic_write(path: str, data: bytes) -> None:
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def compile_shared_library(
    source: str,
    cache_dir: Optional[str] = None,
    compiler: Optional[str] = None,
    sanitize: bool = False,
) -> str:
    """Compile ``source`` (or reuse the cached build); return the ``.so`` path.

    ``sanitize=True`` adds :data:`SANITIZE_FLAGS` (UBSan + ASan, no
    recovery) and keys the cache entry separately — the instrumented
    library is for the conformance fuzzer and golden-vector runs, never
    for serving.  Loading an ASan-instrumented ``.so`` into a plain
    python process requires preloading the ASan runtime; see
    :func:`sanitizer_runtime_preload`.

    Raises :class:`~repro.errors.NativeBackendError` when no compiler is
    available or the compile fails — the error message carries the
    compiler's stderr so a codegen bug is diagnosable from the exception.
    """
    c_path, so_path = cache_paths(source, cache_dir, sanitize=sanitize)
    if os.path.exists(so_path):
        return so_path

    cc = compiler or find_compiler()
    if cc is None:
        raise NativeBackendError(
            "no C compiler found (checked $CC, cc, gcc, clang); "
            "the native backend is unavailable on this host"
        )

    directory = os.path.dirname(so_path)
    os.makedirs(directory, exist_ok=True)
    _atomic_write(c_path, source.encode("utf-8"))

    extra = SANITIZE_FLAGS if sanitize else []
    fd, tmp_so = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".so")
    os.close(fd)
    command: "List[str]" = [cc, *_COMPILE_FLAGS, *extra, "-o", tmp_so, c_path]
    try:
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        _silent_unlink(tmp_so)
        raise NativeBackendError(f"compiler invocation failed: {exc}") from exc
    if proc.returncode != 0:
        _silent_unlink(tmp_so)
        raise NativeBackendError(
            f"C kernel compile failed (exit {proc.returncode}) with "
            f"{' '.join(command)}:\n{proc.stderr.strip()}"
        )
    os.replace(tmp_so, so_path)
    return so_path


def evict_cache_entry(
    source: str, cache_dir: Optional[str] = None, sanitize: bool = False
) -> None:
    """Delete the cached build of ``source`` (corrupted-entry recovery)."""
    for path in cache_paths(source, cache_dir, sanitize=sanitize):
        _silent_unlink(path)


def sanitizer_runtime_preload(compiler: Optional[str] = None) -> Optional[str]:
    """Path of the ASan runtime to ``LD_PRELOAD``, or None if unknown.

    ``dlopen``-ing an ASan-instrumented shared library from an
    uninstrumented executable (the python interpreter) requires the ASan
    runtime to be loaded *first*; the supported way is
    ``LD_PRELOAD=$(cc -print-file-name=libasan.so)`` in a fresh process.
    Returns None when no compiler is available or the runtime cannot be
    resolved — callers should then skip sanitized execution gracefully.
    """
    cc = compiler or find_compiler()
    if cc is None:
        return None
    try:
        proc = subprocess.run(
            [cc, "-print-file-name=libasan.so"],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    candidate = proc.stdout.strip()
    if proc.returncode != 0 or not candidate:
        return None
    # An unresolvable runtime prints the bare name back; require a real path.
    if candidate == "libasan.so" or not os.path.exists(candidate):
        return None
    return os.path.realpath(candidate)


def _silent_unlink(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
