"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FixedPointError(ReproError):
    """Base class for fixed-point arithmetic errors."""


class QFormatError(FixedPointError):
    """An invalid ``QK.F`` format specification (e.g. zero integer bits)."""


class OverflowModeError(FixedPointError):
    """A value fell outside the representable range under ``OverflowMode.RAISE``."""

    def __init__(self, value: float, lo: float, hi: float) -> None:
        self.value = value
        self.lo = lo
        self.hi = hi
        super().__init__(
            f"value {value!r} overflows fixed-point range [{lo!r}, {hi!r}]"
        )


class LinAlgError(ReproError):
    """A numerical linear-algebra routine failed (singular matrix, non-PSD, ...)."""


class OptimizationError(ReproError):
    """An optimization routine failed to produce a usable answer."""


class InfeasibleProblemError(OptimizationError):
    """The constraint set of an optimization problem is (detected to be) empty."""


class SolverBudgetExceeded(OptimizationError):
    """A solver ran out of its node or time budget before reaching its target.

    Solvers that can still return their incumbent do so instead of raising;
    this error is reserved for the case where no feasible point was found at
    all within the budget.
    """


class InputValidationError(ReproError, ValueError):
    """Invalid argument values passed to a public :mod:`repro` API.

    Derives from :class:`ValueError` as well, so callers that predate the
    library's exception hierarchy (``except ValueError``) keep working while
    new code can catch :class:`ReproError` uniformly.  The RPC004 lint rule
    (:mod:`repro.check.lint`) requires public functions to raise this (or
    another :mod:`repro.errors` type) instead of a bare ``ValueError``.
    """


class CheckError(ReproError):
    """A :mod:`repro.check` static-analysis run failed (not: found findings)."""


class LintError(CheckError):
    """The custom lint engine could not analyze a file (syntax error, I/O)."""


class DataError(ReproError):
    """A dataset is malformed (wrong shapes, missing classes, NaNs, ...)."""


class TrainingError(ReproError):
    """Classifier training failed in a way that yields no usable model."""


class NativeBackendError(ReproError):
    """The compiled native datapath backend is unavailable or failed to build.

    Raised by :mod:`repro.hardware.native` when a kernel cannot be produced
    (no C compiler on PATH, compile failure, unloadable cache entry, or a
    classifier outside the int64 fast path).  The serving engine catches it
    and falls back to the numpy paths; callers that *require* the native
    backend (the conformance oracle, the benchmark) let it propagate.
    """


class ServeError(ReproError):
    """The :mod:`repro.serve` runtime rejected a request or configuration."""


class ModelNotFoundError(ServeError):
    """A registry lookup (by name or content-hash prefix) matched no model."""


class OverloadedError(ServeError):
    """Admission control rejected a request: the pending queue is full.

    Maps to a structured 503 (``overloaded``) on both the HTTP and binary
    wire paths and increments the ``requests_shed_total`` counter.  The
    request was never enqueued, so shedding can never change the bits of
    any answer that *is* returned.
    """


class DeadlineExceededError(ServeError):
    """A request's deadline expired while it waited in the batcher queue.

    Maps to a structured 503 (``deadline``); the batcher drops the request
    at flush time instead of burning an engine slot on an answer the
    client has already given up on.
    """


class StreamSessionError(ServeError):
    """A streaming-session protocol violation.

    Raised by :class:`~repro.serve.stream.StreamManager` and
    :class:`~repro.serve.stream.StreamSession` for unknown or closed
    sessions, duplicate session keys, and out-of-order chunk sequence
    numbers.  Maps to a structured 409 on both the HTTP and binary wire
    paths: the request was well-formed but violates the session's state
    machine, so replaying it verbatim can never succeed.
    """


class CertificationError(ServeError):
    """An artifact's static certificate has a VIOLATED invariant.

    Raised by :class:`~repro.serve.registry.ModelRegistry` when it is
    configured with a certifier and asked to register a model whose
    certificate contains at least one VIOLATED invariant.
    """
