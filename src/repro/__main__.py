"""Allow ``python -m repro ...`` to dispatch into the CLI."""

import sys

from .cli import main

sys.exit(main())
