"""The paper's derived power claims (Sections 5.1-5.2 and the abstract).

Two arithmetic claims ride on the measured tables:

- Table 1: LDA needs 12 bits to beat chance, LDA-FP works at 4 — "3x word
  length reduction, equivalent to 9x power reduction" under the quadratic
  power model.
- Table 2: matching LDA's 20.71% error needs 8 bits for LDA but only 6 for
  LDA-FP — "power consumption can be reduced by 1.8x".

This module recomputes both claims from any measured rows: find the
smallest word length at which each method reaches a target error, then
apply the quadratic model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..hardware.power import paper_power_model
from .runner import ComparisonRow

__all__ = ["PowerClaim", "smallest_word_length", "derive_power_claim"]


@dataclass(frozen=True)
class PowerClaim:
    """A derived word-length/power-reduction claim."""

    target_error: float
    lda_bits: Optional[int]
    ldafp_bits: Optional[int]
    power_reduction: Optional[float]

    def describe(self) -> str:
        if self.lda_bits is None or self.ldafp_bits is None:
            return (
                f"target error {100*self.target_error:.2f}%: not reached by "
                f"{'LDA' if self.lda_bits is None else 'LDA-FP'} at any swept word length"
            )
        return (
            f"target error {100*self.target_error:.2f}%: LDA needs {self.lda_bits} bits, "
            f"LDA-FP needs {self.ldafp_bits} bits -> power reduction "
            f"{self.power_reduction:.2f}x (quadratic model)"
        )


def smallest_word_length(
    rows: Sequence[ComparisonRow], method: str, target_error: float
) -> Optional[int]:
    """Smallest swept word length whose error is at or below the target."""
    best: Optional[int] = None
    for row in rows:
        error = row.lda_error if method == "lda" else row.ldafp_error
        if error <= target_error and (best is None or row.word_length < best):
            best = row.word_length
    return best


def derive_power_claim(
    rows: Sequence[ComparisonRow], target_error: float
) -> PowerClaim:
    """Recompute the paper's power-reduction arithmetic from measured rows."""
    lda_bits = smallest_word_length(rows, "lda", target_error)
    ldafp_bits = smallest_word_length(rows, "lda-fp", target_error)
    reduction = None
    if lda_bits is not None and ldafp_bits is not None:
        reduction = paper_power_model().reduction(lda_bits, ldafp_bits)
    return PowerClaim(
        target_error=target_error,
        lda_bits=lda_bits,
        ldafp_bits=ldafp_bits,
        power_reduction=reduction,
    )
