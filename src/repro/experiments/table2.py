"""Table 2 — BCI movement decoding: 5-fold CV error vs word length.

The paper evaluates on a private ECoG dataset (42 features, 70 trials per
movement direction) with stratified 5-fold cross-validation at word lengths
3-8.  We substitute the simulated ECoG generator (see
:mod:`repro.data.bci` and DESIGN.md Section 6) and run the identical
protocol.  At M = 42 the branch-and-bound cannot exhaust the grid within
any sane budget — the regime the paper's undisclosed heuristics target — so
LDA-FP runs budget-limited with the local-search polish carrying the
incumbent quality; EXPERIMENTS.md records the budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.ldafp import LdaFpConfig
from ..core.pipeline import PipelineConfig, TrainingPipeline
from ..data.bci import BciConfig, make_bci_dataset
from ..data.dataset import Dataset
from ..stats.crossval import StratifiedKFold
from .runner import ComparisonRow, format_table

__all__ = ["Table2Config", "PAPER_TABLE2", "run_table2", "format_table2"]

# word_length -> (LDA error, LDA-FP error, LDA-FP runtime seconds)
PAPER_TABLE2: "Dict[int, tuple[float, float, float]]" = {
    3: (0.5000, 0.5214, 39.9),
    4: (0.4643, 0.3717, 219.7),
    5: (0.4071, 0.3214, 1913.5),
    6: (0.3214, 0.2071, 2977.0),
    7: (0.2143, 0.1929, 152.8),
    8: (0.2071, 0.2000, 221.1),
}


@dataclass(frozen=True)
class Table2Config:
    """Sweep parameters for the Table 2 reproduction."""

    word_lengths: Sequence[int] = (3, 4, 5, 6, 7, 8)
    folds: int = 5
    seed: int = 0
    integer_bits: int = 2
    scale_margin: float = 0.45
    max_nodes: int = 60
    time_limit: float = 20.0
    shrinkage: float = 1e-3
    bci: BciConfig = BciConfig()


def _cv_error(
    pipeline: TrainingPipeline, dataset: Dataset, wl: int, folds: int, seed: int
) -> "tuple[float, float, bool, str]":
    """Mean CV error, total train seconds, all-folds-proven flag, and a
    bootstrap 95% interval over the pooled out-of-fold predictions."""
    from ..data.scaling import FeatureScaler
    from ..stats.bootstrap import bootstrap_error_interval

    splitter = StratifiedKFold(n_splits=folds, shuffle=True, seed=seed)
    errors: "list[float]" = []
    seconds = 0.0
    proven = True
    pooled_true: "list[np.ndarray]" = []
    pooled_pred: "list[np.ndarray]" = []
    for train_idx, test_idx in splitter.split(dataset.labels):
        train, test = dataset.subset(train_idx), dataset.subset(test_idx)
        result = pipeline.run(train, test, wl)
        errors.append(result.test_error)
        seconds += result.train_seconds
        if result.ldafp_report is not None and not result.ldafp_report.proven_optimal:
            proven = False
        # Re-apply the pipeline's fitted scaling to score the fold's
        # predictions for pooling (error_on already did this internally).
        scaler = FeatureScaler(
            limit=pipeline.config.scale_margin
            * (2.0 ** (pipeline.config.integer_bits - 1))
        )
        scaler.fit(train.features)
        pooled_true.append(test.labels)
        pooled_pred.append(
            result.classifier.predict(scaler.transform(test.features))
        )
    interval = bootstrap_error_interval(
        np.concatenate(pooled_true), np.concatenate(pooled_pred), seed=seed
    )
    return float(np.mean(errors)), seconds, proven, interval.describe()


def run_table2(config: "Table2Config | None" = None) -> List[ComparisonRow]:
    """Run the full Table 2 sweep (both methods, 5-fold CV per word length)."""
    config = config or Table2Config()
    dataset = make_bci_dataset(config.bci)

    lda_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda",
            integer_bits=config.integer_bits,
            scale_margin=config.scale_margin,
            lda_shrinkage=config.shrinkage,
        )
    )
    ldafp_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda-fp",
            integer_bits=config.integer_bits,
            scale_margin=config.scale_margin,
            ldafp=LdaFpConfig(
                max_nodes=config.max_nodes,
                time_limit=config.time_limit,
                shrinkage=config.shrinkage,
                # At M=42 every relaxation is expensive; lean on rounding +
                # local search (the practical regime for this dimension).
                local_search_radius=1,
            ),
        )
    )

    rows: List[ComparisonRow] = []
    for wl in config.word_lengths:
        lda_error, _, _, lda_ci = _cv_error(
            lda_pipe, dataset, wl, config.folds, config.seed
        )
        fp_error, fp_seconds, proven, fp_ci = _cv_error(
            ldafp_pipe, dataset, wl, config.folds, config.seed
        )
        paper = PAPER_TABLE2.get(wl)
        rows.append(
            ComparisonRow(
                word_length=wl,
                lda_error=lda_error,
                ldafp_error=fp_error,
                ldafp_runtime=fp_seconds,
                proven_optimal=proven,
                paper_lda_error=paper[0] if paper else None,
                paper_ldafp_error=paper[1] if paper else None,
                paper_runtime=paper[2] if paper else None,
                lda_interval=lda_ci,
                ldafp_interval=fp_ci,
            )
        )
    return rows


def format_table2(rows: Sequence[ComparisonRow]) -> str:
    return format_table("Table 2 — BCI movement decoding, 5-fold CV (ours vs paper)", rows)
