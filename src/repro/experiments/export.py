"""Export experiment rows to CSV / JSON for downstream plotting.

The text tables are for humans; anyone regenerating the paper's figures in
their own plotting stack wants machine-readable rows.  Plain-stdlib
serialization (csv / json), schema documented by the header row.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from .runner import ComparisonRow
from ..errors import InputValidationError

__all__ = ["rows_to_csv", "rows_to_json", "write_rows"]

_FIELDS = (
    "word_length",
    "lda_error",
    "ldafp_error",
    "ldafp_runtime",
    "proven_optimal",
    "paper_lda_error",
    "paper_ldafp_error",
    "paper_runtime",
    "lda_interval",
    "ldafp_interval",
)


def rows_to_csv(rows: Sequence[ComparisonRow]) -> str:
    """Render rows as CSV text (header + one line per word length)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_FIELDS)
    for row in rows:
        writer.writerow([getattr(row, field) for field in _FIELDS])
    return buffer.getvalue()


def rows_to_json(rows: Sequence[ComparisonRow]) -> str:
    """Render rows as a JSON array of objects."""
    payload = [
        {field: getattr(row, field) for field in _FIELDS} for row in rows
    ]
    return json.dumps(payload, indent=2) + "\n"


def write_rows(rows: Sequence[ComparisonRow], path: str) -> None:
    """Write rows to ``path``; format chosen by extension (.csv or .json)."""
    if path.endswith(".csv"):
        text = rows_to_csv(rows)
    elif path.endswith(".json"):
        text = rows_to_json(rows)
    else:
        raise InputValidationError(f"unsupported extension in {path!r} (use .csv or .json)")
    with open(path, "w") as handle:
        handle.write(text)
