"""Experiment harness: one module per paper table/figure plus ablations."""

from .export import rows_to_csv, rows_to_json, write_rows
from .figure1 import Figure1Config, ProjectionSummary, format_figure1, run_figure1
from .figure2 import Figure2Config, SensitivityPoint, format_figure2, run_figure2
from .figure4 import Figure4Config, WeightsPoint, format_figure4, run_figure4
from .power_claims import PowerClaim, derive_power_claim, smallest_word_length
from .runner import ComparisonRow, format_table
from .table1 import PAPER_TABLE1, Table1Config, format_table1, run_table1
from .table2 import PAPER_TABLE2, Table2Config, format_table2, run_table2

__all__ = [
    "ComparisonRow",
    "format_table",
    "rows_to_csv",
    "rows_to_json",
    "write_rows",
    "PAPER_TABLE1",
    "Table1Config",
    "format_table1",
    "run_table1",
    "PAPER_TABLE2",
    "Table2Config",
    "format_table2",
    "run_table2",
    "Figure1Config",
    "ProjectionSummary",
    "format_figure1",
    "run_figure1",
    "Figure2Config",
    "SensitivityPoint",
    "format_figure2",
    "run_figure2",
    "Figure4Config",
    "WeightsPoint",
    "format_figure4",
    "run_figure4",
    "PowerClaim",
    "derive_power_claim",
    "smallest_word_length",
]
