"""Figure 2 — rounding sensitivity of the decision boundary.

The paper's Figure 2 is a 2-D cartoon: the LDA-optimal boundary can sit so
that a one-LSB perturbation of ``w`` causes a large error jump, while a
"robust" boundary tolerates the same perturbation.  We make that cartoon
quantitative: on a 2-D Gaussian problem we take each trained weight vector,
enumerate *all* one-LSB perturbations of its elements, and measure the
spread (worst-case increase) of the exact population error using the
closed-form Gaussian error of :mod:`repro.data.gaussian`.

Expected shape: the worst-case error under perturbation is dramatically
larger for rounded conventional LDA than for LDA-FP at small word lengths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.ldafp import LdaFpConfig
from ..core.pipeline import PipelineConfig, TrainingPipeline
from ..data.gaussian import GaussianClassModel, TwoClassGaussianModel
from ..fixedpoint.qformat import QFormat

__all__ = ["Figure2Config", "SensitivityPoint", "run_figure2", "format_figure2"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Perturbation-sensitivity summary for one method at one word length."""

    word_length: int
    method: str
    nominal_error: float
    worst_error: float
    mean_error: float

    @property
    def spread(self) -> float:
        """Worst-case error increase under one-LSB perturbations."""
        return self.worst_error - self.nominal_error


@dataclass(frozen=True)
class Figure2Config:
    """The 2-D correlated-Gaussian example behind the cartoon."""

    word_lengths: Sequence[int] = (4, 6, 8)
    train_per_class: int = 2000
    seed: int = 0
    integer_bits: int = 2
    scale_margin: float = 0.45
    correlation: float = 0.95
    separation: float = 0.8
    max_nodes: int = 4000
    time_limit: float = 20.0


def _make_model(config: Figure2Config) -> TwoClassGaussianModel:
    cov = np.array([[1.0, config.correlation], [config.correlation, 1.0]])
    half = 0.5 * config.separation
    # Mean shift along the low-variance direction of the correlated pair —
    # the geometry that makes the LDA boundary rounding-fragile.
    shift = np.array([half, -half])
    return TwoClassGaussianModel(
        class_a=GaussianClassModel(shift, cov),
        class_b=GaussianClassModel(-shift, cov),
    )


def _perturbation_errors(
    model: TwoClassGaussianModel,
    weights: np.ndarray,
    threshold: float,
    polarity: int,
    fmt: QFormat,
    scale_back: "np.ndarray",
    offset_back: "np.ndarray",
) -> "list[float]":
    """Population errors of all one-LSB weight perturbations (scaled space)."""
    errors = []
    deltas = (-fmt.resolution, 0.0, fmt.resolution)
    for combo in itertools.product(deltas, repeat=weights.size):
        w = weights + np.array(combo)
        if np.any(w < fmt.min_value) or np.any(w > fmt.max_value):
            continue
        errors.append(
            _population_error(model, w, threshold, polarity, scale_back, offset_back)
        )
    return errors


def _population_error(model, w, threshold, polarity, gain, offset) -> float:
    # The classifier operates on scaled features z = (x - offset) * gain, so
    # in raw-feature space the rule is (w*gain)'x >= threshold + (w*gain)'offset.
    w_raw = w * gain
    thr_raw = threshold + float(w_raw @ offset)
    if polarity < 0:
        return 1.0 - model.linear_classifier_error(w_raw, thr_raw)
    return model.linear_classifier_error(w_raw, thr_raw)


def run_figure2(config: "Figure2Config | None" = None) -> List[SensitivityPoint]:
    """Quantify boundary sensitivity for both methods at each word length."""
    config = config or Figure2Config()
    model = _make_model(config)
    train = model.sample_dataset(config.train_per_class, seed=config.seed)
    test = model.sample_dataset(2000, seed=config.seed + 1)

    points: List[SensitivityPoint] = []
    for method in ("lda", "lda-fp"):
        pipe = TrainingPipeline(
            PipelineConfig(
                method=method,
                integer_bits=config.integer_bits,
                scale_margin=config.scale_margin,
                lda_shrinkage=0.0,
                ldafp=LdaFpConfig(
                    max_nodes=config.max_nodes, time_limit=config.time_limit
                ),
            )
        )
        for wl in config.word_lengths:
            result = pipe.run(train, test, wl)
            classifier = result.classifier
            # Recover the scaler the pipeline fit (refit identically).
            from ..data.scaling import FeatureScaler

            scaler = FeatureScaler(
                limit=config.scale_margin * (2.0 ** (config.integer_bits - 1))
            )
            scaler.fit(train.features)
            gain = scaler._gain
            offset = scaler._offset
            errors = _perturbation_errors(
                model,
                classifier.weights,
                classifier.threshold,
                classifier.polarity,
                classifier.fmt,
                gain,
                offset,
            )
            nominal = _population_error(
                model,
                classifier.weights,
                classifier.threshold,
                classifier.polarity,
                gain,
                offset,
            )
            points.append(
                SensitivityPoint(
                    word_length=wl,
                    method=method,
                    nominal_error=nominal,
                    worst_error=float(np.max(errors)),
                    mean_error=float(np.mean(errors)),
                )
            )
    return points


def format_figure2(points: Sequence[SensitivityPoint]) -> str:
    lines = [
        "Figure 2 — boundary sensitivity to one-LSB weight perturbations",
        "=" * 64,
        "  WL | method | nominal | worst-case | mean  | spread",
        "-----+--------+---------+------------+-------+-------",
    ]
    for p in points:
        lines.append(
            f"  {p.word_length:2d} | {p.method:6s} | {100*p.nominal_error:6.2f}% |"
            f"   {100*p.worst_error:6.2f}%  | {100*p.mean_error:5.2f}% | {100*p.spread:5.2f}%"
        )
    return "\n".join(lines) + "\n"
