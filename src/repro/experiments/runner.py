"""Shared experiment plumbing: row containers and table formatting.

Every experiment module produces a list of row dataclasses and can render
them in the same layout as the paper's tables, with the paper's published
numbers alongside for eyeball comparison (absolute values are not expected
to match — see EXPERIMENTS.md — but the shape should).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["ComparisonRow", "format_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One word-length row of a Table-1/2-style comparison.

    Attributes
    ----------
    word_length:
        Total bits ``K + F``.
    lda_error:
        Conventional-LDA classification error.
    ldafp_error:
        LDA-FP classification error.
    ldafp_runtime:
        LDA-FP training wall time in seconds.
    proven_optimal:
        Whether the branch-and-bound closed its gap (budget-limited runs
        report False; the paper does not publish this column, we do).
    paper_lda_error, paper_ldafp_error, paper_runtime:
        The published values, when the paper reports this word length.
    """

    word_length: int
    lda_error: float
    ldafp_error: float
    ldafp_runtime: float
    proven_optimal: bool
    paper_lda_error: Optional[float] = None
    paper_ldafp_error: Optional[float] = None
    paper_runtime: Optional[float] = None
    lda_interval: Optional[str] = None
    ldafp_interval: Optional[str] = None


def _pct(value: "float | None") -> str:
    return "     --" if value is None else f"{100.0 * value:6.2f}%"


def _sec(value: "float | None") -> str:
    return "      --" if value is None else f"{value:8.2f}"


def format_table(title: str, rows: Sequence[ComparisonRow]) -> str:
    """Render rows in the paper's column layout plus our extra columns."""
    lines = [
        title,
        "=" * len(title),
        "  WL |  LDA err (paper) | LDA-FP err (paper) | runtime s (paper) | proven",
        "-----+------------------+--------------------+-------------------+-------",
    ]
    for row in rows:
        lines.append(
            f"  {row.word_length:2d} | {_pct(row.lda_error)} ({_pct(row.paper_lda_error).strip()})"
            f" | {_pct(row.ldafp_error)}  ({_pct(row.paper_ldafp_error).strip()})"
            f" | {_sec(row.ldafp_runtime)} ({_sec(row.paper_runtime).strip()})"
            f" | {'yes' if row.proven_optimal else 'no'}"
        )
    if any(row.lda_interval or row.ldafp_interval for row in rows):
        lines.append("")
        lines.append("bootstrap 95% intervals (pooled CV predictions):")
        for row in rows:
            lines.append(
                f"  {row.word_length:2d} | LDA {row.lda_interval or '--'} | "
                f"LDA-FP {row.ldafp_interval or '--'}"
            )
    return "\n".join(lines) + "\n"
