"""Figure 4 — the trained weights w1, w2, w3 as functions of word length.

The paper's Figure 4 explains *why* LDA-FP wins: conventional LDA's tiny
``w1`` (the only discriminative weight) rounds to zero below ~12 bits,
while LDA-FP lifts ``w1`` off zero at every word length, trading perfect
noise cancellation for a nonzero signal path.  We sweep word length, train
both methods, and record the three weights (normalized to unit infinity
norm so different grid scales are comparable across word lengths, matching
the figure's presentation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.ldafp import LdaFpConfig
from ..core.pipeline import PipelineConfig, TrainingPipeline
from ..data.synthetic import make_synthetic_dataset

__all__ = ["Figure4Config", "WeightsPoint", "run_figure4", "format_figure4"]


@dataclass(frozen=True)
class WeightsPoint:
    """One word-length sample of the weight trajectories."""

    word_length: int
    lda_weights: np.ndarray
    ldafp_weights: np.ndarray

    @staticmethod
    def _normalize(w: np.ndarray) -> np.ndarray:
        peak = float(np.max(np.abs(w)))
        return w / peak if peak > 0 else w

    @property
    def lda_normalized(self) -> np.ndarray:
        return self._normalize(self.lda_weights)

    @property
    def ldafp_normalized(self) -> np.ndarray:
        return self._normalize(self.ldafp_weights)


@dataclass(frozen=True)
class Figure4Config:
    """Sweep parameters (shared with Table 1 by default)."""

    word_lengths: Sequence[int] = (4, 6, 8, 10, 12, 14, 16)
    train_per_class: int = 4000
    seed: int = 0
    integer_bits: int = 2
    scale_margin: float = 0.45
    max_nodes: int = 8_000
    time_limit: float = 30.0


def run_figure4(config: "Figure4Config | None" = None) -> List[WeightsPoint]:
    """Sweep word lengths and capture both methods' weight vectors."""
    config = config or Figure4Config()
    train = make_synthetic_dataset(config.train_per_class, seed=config.seed)
    test = make_synthetic_dataset(200, seed=config.seed + 1)  # evaluation unused

    lda_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda",
            integer_bits=config.integer_bits,
            scale_margin=config.scale_margin,
            lda_shrinkage=0.0,
        )
    )
    ldafp_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda-fp",
            integer_bits=config.integer_bits,
            scale_margin=config.scale_margin,
            ldafp=LdaFpConfig(max_nodes=config.max_nodes, time_limit=config.time_limit),
        )
    )

    points: List[WeightsPoint] = []
    for wl in config.word_lengths:
        lda_result = lda_pipe.run(train, test, wl)
        fp_result = ldafp_pipe.run(train, test, wl)
        points.append(
            WeightsPoint(
                word_length=wl,
                lda_weights=lda_result.classifier.weights.copy(),
                ldafp_weights=fp_result.classifier.weights.copy(),
            )
        )
    return points


def format_figure4(points: Sequence[WeightsPoint]) -> str:
    """Text rendering of the Figure 4 series (normalized weights)."""
    lines = [
        "Figure 4 — weight values vs word length (normalized to max |w|)",
        "=" * 64,
        "  WL |        LDA w1/w2/w3         |       LDA-FP w1/w2/w3",
        "-----+-----------------------------+-----------------------------",
    ]
    for p in points:
        lda = p.lda_normalized
        fp = p.ldafp_normalized
        lines.append(
            f"  {p.word_length:2d} | {lda[0]:+8.5f} {lda[1]:+8.5f} {lda[2]:+8.5f}"
            f" | {fp[0]:+8.5f} {fp[1]:+8.5f} {fp[2]:+8.5f}"
        )
    lines.append("")
    lines.append("shape check: LDA w1 == 0 at small word lengths; LDA-FP w1 != 0 everywhere")
    return "\n".join(lines) + "\n"
