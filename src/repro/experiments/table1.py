"""Table 1 — synthetic data: classification error and runtime vs word length.

The paper trains conventional LDA and LDA-FP on the Eq. 30-32 synthetic set
at word lengths 4-16 and reports fixed-point test error plus LDA-FP
training runtime.  We regenerate the data (the paper does not publish its
sample count; we default to 2000 train + 5000 test trials per class, which
makes error estimates stable to ~1%), run both methods, and print the rows
next to the published ones.

Published values (paper Table 1) are embedded for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.ldafp import LdaFpConfig
from ..core.pipeline import PipelineConfig, TrainingPipeline
from ..data.synthetic import make_synthetic_dataset
from .runner import ComparisonRow, format_table

__all__ = ["Table1Config", "PAPER_TABLE1", "run_table1", "format_table1"]

# word_length -> (LDA error, LDA-FP error, LDA-FP runtime seconds)
PAPER_TABLE1: "Dict[int, tuple[float, float, float]]" = {
    4: (0.5000, 0.2704, 0.81),
    6: (0.5000, 0.2683, 5.87),
    8: (0.5000, 0.2598, 20.42),
    10: (0.5000, 0.2262, 29.16),
    12: (0.2446, 0.1960, 29.11),
    14: (0.1948, 0.1933, 0.06),
    16: (0.1933, 0.1933, 0.06),
}


@dataclass(frozen=True)
class Table1Config:
    """Sweep parameters for the Table 1 reproduction.

    ``time_limit`` bounds each LDA-FP branch-and-bound run; mid word
    lengths are budget-limited exactly as the paper's runtimes peak there.
    """

    word_lengths: Sequence[int] = (4, 6, 8, 10, 12, 14, 16)
    train_per_class: int = 4000
    test_per_class: int = 10_000
    seed: int = 0
    integer_bits: int = 2
    scale_margin: float = 0.45
    max_nodes: int = 20_000
    time_limit: float = 45.0
    relative_gap: float = 2e-4
    bitexact_eval: bool = False


def run_table1(config: "Table1Config | None" = None) -> List[ComparisonRow]:
    """Run the full Table 1 sweep and return one row per word length."""
    config = config or Table1Config()
    train = make_synthetic_dataset(config.train_per_class, seed=config.seed)
    test = make_synthetic_dataset(config.test_per_class, seed=config.seed + 1)

    lda_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda",
            integer_bits=config.integer_bits,
            scale_margin=config.scale_margin,
            lda_shrinkage=0.0,
        )
    )
    ldafp_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda-fp",
            integer_bits=config.integer_bits,
            scale_margin=config.scale_margin,
            ldafp=LdaFpConfig(
                max_nodes=config.max_nodes,
                time_limit=config.time_limit,
                relative_gap=config.relative_gap,
            ),
        )
    )

    rows: List[ComparisonRow] = []
    for wl in config.word_lengths:
        lda_result = lda_pipe.run(train, test, wl, bitexact_eval=config.bitexact_eval)
        fp_result = ldafp_pipe.run(train, test, wl, bitexact_eval=config.bitexact_eval)
        paper = PAPER_TABLE1.get(wl)
        rows.append(
            ComparisonRow(
                word_length=wl,
                lda_error=lda_result.test_error,
                ldafp_error=fp_result.test_error,
                ldafp_runtime=fp_result.train_seconds,
                proven_optimal=bool(
                    fp_result.ldafp_report and fp_result.ldafp_report.proven_optimal
                ),
                paper_lda_error=paper[0] if paper else None,
                paper_ldafp_error=paper[1] if paper else None,
                paper_runtime=paper[2] if paper else None,
            )
        )
    return rows


def format_table1(rows: Sequence[ComparisonRow]) -> str:
    return format_table("Table 1 — synthetic data (ours vs paper)", rows)
