"""Ablations over the design choices DESIGN.md calls out.

Each ablation isolates one ingredient of LDA-FP and measures its effect on
the synthetic benchmark at a small word length, where the effects are
largest:

- **beta sweep** — the overflow confidence level (Eq. 16) trades
  feasible-set size against wrap risk.  We report both the Fisher cost and
  the bit-exact (wrapping-datapath) test error per beta.
- **rounding mode** — how the conventional baseline degrades under floor /
  nearest / stochastic rounding of its weights.
- **wrap vs saturate** — datapath overflow policy when the overflow
  constraints are deliberately loosened (small beta): wrapping damage vs
  saturation damage.
- **solver heuristics** — warm start / scale sweep / local search on-off
  matrix: incumbent cost reached under a fixed node budget.
- **backend** — from-scratch barrier vs scipy SLSQP node solver agreement
  and speed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.ldafp import LdaFpConfig, train_lda_fp
from ..core.lda import fit_lda, quantize_lda
from ..data.scaling import FeatureScaler
from ..data.synthetic import make_synthetic_dataset
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import RoundingMode

__all__ = [
    "BetaAblationPoint",
    "run_beta_ablation",
    "RoundingAblationPoint",
    "run_rounding_ablation",
    "HeuristicAblationPoint",
    "run_heuristic_ablation",
    "BackendAblationPoint",
    "run_backend_ablation",
    "PropagationAblationPoint",
    "run_propagation_ablation",
    "DimensionScalingPoint",
    "run_dimension_scaling",
    "BitexactAblationPoint",
    "run_bitexact_ablation",
]


def _scaled_pair(word_length: int, integer_bits: int, margin: float, seed: int = 0):
    fmt = QFormat(integer_bits, word_length - integer_bits)
    train = make_synthetic_dataset(1500, seed=seed)
    test = make_synthetic_dataset(4000, seed=seed + 1)
    scaler = FeatureScaler(limit=margin * (2.0 ** (integer_bits - 1)))
    scaler.fit(train.features)
    return (
        fmt,
        train.map_features(scaler.transform),
        test.map_features(scaler.transform),
    )


# --------------------------------------------------------------------- #
# Beta / confidence-level ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BetaAblationPoint:
    rho: float
    beta: float
    cost: float
    float_error: float
    bitexact_error: float


def run_beta_ablation(
    rhos: Sequence[float] = (0.5, 0.9, 0.99, 0.999),
    word_length: int = 6,
    integer_bits: int = 2,
    margin: float = 0.45,
    max_nodes: int = 600,
    time_limit: float = 15.0,
) -> List[BetaAblationPoint]:
    """Sweep the Eq. 16 confidence level and measure wrap damage."""
    from ..stats.normal import confidence_beta

    fmt, train, test = _scaled_pair(word_length, integer_bits, margin)
    points: List[BetaAblationPoint] = []
    for rho in rhos:
        config = LdaFpConfig(rho=rho, max_nodes=max_nodes, time_limit=time_limit)
        classifier, report = train_lda_fp(train, fmt, config)
        points.append(
            BetaAblationPoint(
                rho=rho,
                beta=confidence_beta(rho),
                cost=report.cost,
                float_error=classifier.error_on(test, bitexact=False),
                bitexact_error=classifier.error_on(test, bitexact=True),
            )
        )
    return points


# --------------------------------------------------------------------- #
# Rounding-mode ablation (conventional baseline)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RoundingAblationPoint:
    mode: str
    error: float


def run_rounding_ablation(
    word_length: int = 12,
    integer_bits: int = 2,
    margin: float = 0.45,
) -> List[RoundingAblationPoint]:
    """How the LDA baseline's error depends on the weight-rounding mode."""
    fmt, train, test = _scaled_pair(word_length, integer_bits, margin)
    model = fit_lda(train, shrinkage=0.0)
    points: List[RoundingAblationPoint] = []
    for mode in (
        RoundingMode.NEAREST_AWAY,
        RoundingMode.NEAREST_EVEN,
        RoundingMode.FLOOR,
        RoundingMode.TOWARD_ZERO,
    ):
        classifier = quantize_lda(model, fmt, rounding=mode)
        points.append(
            RoundingAblationPoint(mode=mode.value, error=classifier.error_on(test))
        )
    return points


# --------------------------------------------------------------------- #
# Heuristic on/off matrix
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class HeuristicAblationPoint:
    warm_start: bool
    scale_sweep: bool
    local_search: bool
    cost: float
    nodes: int
    seconds: float


def run_heuristic_ablation(
    word_length: int = 6,
    integer_bits: int = 2,
    margin: float = 0.45,
    max_nodes: int = 300,
    time_limit: float = 10.0,
) -> List[HeuristicAblationPoint]:
    """Incumbent quality under a fixed budget with heuristics toggled."""
    fmt, train, _ = _scaled_pair(word_length, integer_bits, margin)
    points: List[HeuristicAblationPoint] = []
    for warm in (True, False):
        for sweep in (True, False):
            for polish in (True, False):
                config = LdaFpConfig(
                    warm_start=warm,
                    scale_sweep=sweep,
                    local_search=polish,
                    max_nodes=max_nodes,
                    time_limit=time_limit,
                )
                start = time.perf_counter()
                _, report = train_lda_fp(train, fmt, config)
                points.append(
                    HeuristicAblationPoint(
                        warm_start=warm,
                        scale_sweep=sweep,
                        local_search=polish,
                        cost=report.cost,
                        nodes=report.nodes_expanded,
                        seconds=time.perf_counter() - start,
                    )
                )
    return points


# --------------------------------------------------------------------- #
# Float-path vs bit-exact deployment ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BitexactAblationPoint:
    word_length: int
    float_error: float
    wrap_error: float
    saturate_error: float


def run_bitexact_ablation(
    word_lengths: "tuple[int, ...]" = (4, 6, 8),
    integer_bits: int = 2,
    margin: float = 0.45,
    max_nodes: int = 200,
    time_limit: float = 10.0,
) -> List[BitexactAblationPoint]:
    """Does the deployed (wrapping) datapath match the float evaluation?

    The whole point of the Eq. 18/20 overflow constraints is that the
    *wrapping* hardware path stays faithful; this ablation measures the
    LDA-FP test error through three evaluation paths: the float fast path,
    the bit-exact wrapping datapath, and the bit-exact saturating variant.
    """
    points: List[BitexactAblationPoint] = []
    for wl in word_lengths:
        fmt, train, test = _scaled_pair(wl, integer_bits, margin, seed=7)
        classifier, _ = train_lda_fp(
            train, fmt, LdaFpConfig(max_nodes=max_nodes, time_limit=time_limit)
        )
        # Keep the datapath replay affordable: a slice of the test set.
        subset_idx = np.arange(min(600, test.num_samples))
        subset = test.subset(subset_idx)
        points.append(
            BitexactAblationPoint(
                word_length=wl,
                float_error=classifier.error_on(subset, bitexact=False),
                wrap_error=classifier.error_on(subset, bitexact=True),
                saturate_error=float(
                    np.mean(
                        classifier.predict_bitexact(
                            subset.features, overflow=OverflowMode.SATURATE
                        )
                        != subset.labels
                    )
                ),
            )
        )
    return points


# --------------------------------------------------------------------- #
# Bound-propagation ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PropagationAblationPoint:
    bound_propagation: bool
    cost: float
    nodes: int
    relaxations: int
    seconds: float
    proven: bool


def run_propagation_ablation(
    word_length: int = 6,
    integer_bits: int = 2,
    margin: float = 0.45,
    max_nodes: int = 3000,
    time_limit: float = 30.0,
) -> List[PropagationAblationPoint]:
    """Domain propagation on/off: node count to prove the same optimum."""
    fmt, train, _ = _scaled_pair(word_length, integer_bits, margin)
    points: List[PropagationAblationPoint] = []
    for enabled in (True, False):
        config = LdaFpConfig(
            bound_propagation=enabled,
            max_nodes=max_nodes,
            time_limit=time_limit,
            relative_gap=1e-6,
        )
        start = time.perf_counter()
        _, report = train_lda_fp(train, fmt, config)
        points.append(
            PropagationAblationPoint(
                bound_propagation=enabled,
                cost=report.cost,
                nodes=report.nodes_expanded,
                relaxations=report.relaxations_solved,
                seconds=time.perf_counter() - start,
                proven=report.proven_optimal,
            )
        )
    return points


# --------------------------------------------------------------------- #
# Runtime-vs-dimension scaling study
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class DimensionScalingPoint:
    num_features: int
    cost: float
    lower_bound: float
    nodes: int
    seconds: float


def run_dimension_scaling(
    dimensions: "tuple[int, ...]" = (2, 3, 5, 8, 12),
    word_length: int = 5,
    integer_bits: int = 2,
    margin: float = 0.45,
    max_nodes: int = 200,
    time_limit: float = 10.0,
    seed: int = 0,
) -> List[DimensionScalingPoint]:
    """How solve effort grows with feature count (noise-cancellation family).

    The paper's two cases are M = 3 and M = 42; this fills in the curve in
    between on the generalized Eq. 30-32 family.
    """
    from ..data.synthetic import make_noise_cancellation_dataset

    fmt = QFormat(integer_bits, word_length - integer_bits)
    points: List[DimensionScalingPoint] = []
    for m in dimensions:
        ds = make_noise_cancellation_dataset(
            800, num_noise_features=m - 1, seed=seed
        )
        scaler = FeatureScaler(limit=margin * (2.0 ** (integer_bits - 1)))
        ds = ds.map_features(scaler.fit(ds.features).transform)
        config = LdaFpConfig(max_nodes=max_nodes, time_limit=time_limit)
        start = time.perf_counter()
        _, report = train_lda_fp(ds, fmt, config)
        points.append(
            DimensionScalingPoint(
                num_features=m,
                cost=report.cost,
                lower_bound=report.lower_bound,
                nodes=report.nodes_expanded,
                seconds=time.perf_counter() - start,
            )
        )
    return points


# --------------------------------------------------------------------- #
# Node-solver backend ablation
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendAblationPoint:
    backend: str
    cost: float
    lower_bound: float
    seconds: float
    proven: bool


def run_backend_ablation(
    word_length: int = 4,
    integer_bits: int = 2,
    margin: float = 0.45,
    max_nodes: int = 2000,
    time_limit: float = 30.0,
) -> List[BackendAblationPoint]:
    """Barrier vs SLSQP node relaxations on the same instance."""
    fmt, train, _ = _scaled_pair(word_length, integer_bits, margin)
    points: List[BackendAblationPoint] = []
    for backend in ("slsqp", "barrier", "auto"):
        config = LdaFpConfig(
            backend=backend, max_nodes=max_nodes, time_limit=time_limit
        )
        start = time.perf_counter()
        _, report = train_lda_fp(train, fmt, config)
        points.append(
            BackendAblationPoint(
                backend=backend,
                cost=report.cost,
                lower_bound=report.lower_bound,
                seconds=time.perf_counter() - start,
                proven=report.proven_optimal,
            )
        )
    return points
