"""Figure 1 — LDA's projection intuition, made quantitative.

The paper's Figure 1 shows two 2-D classes maximally separated by
projecting onto the LDA direction ``w``.  We regenerate it as numbers: on a
correlated 2-D Gaussian problem, compare the class separation achieved by
projecting onto (a) the LDA direction, (b) the naive mean-difference
direction, and (c) the worst single axis — and render text histograms of
the projections.

The separation metric is the Fisher ratio's inverse square root
(``|mu_A_proj - mu_B_proj| / sigma_proj``, i.e. the d-prime), which LDA
maximizes by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.lda import fit_lda
from ..data.gaussian import GaussianClassModel, TwoClassGaussianModel

__all__ = ["Figure1Config", "ProjectionSummary", "run_figure1", "format_figure1"]


@dataclass(frozen=True)
class ProjectionSummary:
    """Separation achieved by one projection direction."""

    name: str
    direction: np.ndarray
    d_prime: float
    histogram_a: np.ndarray
    histogram_b: np.ndarray
    bin_edges: np.ndarray


@dataclass(frozen=True)
class Figure1Config:
    samples_per_class: int = 4000
    correlation: float = 0.8
    separation: float = 1.2
    seed: int = 0
    bins: int = 25


def _summarize(name: str, direction: np.ndarray, a: np.ndarray, b: np.ndarray, bins: int) -> ProjectionSummary:
    direction = direction / max(float(np.linalg.norm(direction)), 1e-300)
    proj_a = a @ direction
    proj_b = b @ direction
    pooled_std = float(np.sqrt(0.5 * (np.var(proj_a) + np.var(proj_b))))
    d_prime = abs(float(proj_a.mean() - proj_b.mean())) / max(pooled_std, 1e-300)
    lo = min(proj_a.min(), proj_b.min())
    hi = max(proj_a.max(), proj_b.max())
    edges = np.linspace(lo, hi, bins + 1)
    hist_a, _ = np.histogram(proj_a, bins=edges)
    hist_b, _ = np.histogram(proj_b, bins=edges)
    return ProjectionSummary(
        name=name,
        direction=direction,
        d_prime=d_prime,
        histogram_a=hist_a,
        histogram_b=hist_b,
        bin_edges=edges,
    )


def run_figure1(config: "Figure1Config | None" = None) -> List[ProjectionSummary]:
    """Compare projection directions on the Figure 1 geometry."""
    config = config or Figure1Config()
    cov = np.array([[1.0, config.correlation], [config.correlation, 1.0]])
    half = 0.5 * config.separation
    # Shift along x1 only: with correlated noise this makes the LDA
    # direction (Sigma^-1 d) visibly different from the mean difference —
    # LDA recruits x2 to cancel the shared noise, exactly Figure 1's point.
    mean_shift = np.array([half, 0.0])
    model = TwoClassGaussianModel(
        class_a=GaussianClassModel(mean_shift, cov),
        class_b=GaussianClassModel(-mean_shift, cov),
    )
    ds = model.sample_dataset(config.samples_per_class, seed=config.seed)
    a, b = ds.class_a, ds.class_b

    lda = fit_lda(ds, shrinkage=0.0)
    summaries = [
        _summarize("lda (w)", lda.weights, a, b, config.bins),
        _summarize("mean difference", mean_shift, a, b, config.bins),
        _summarize("x1 axis", np.array([1.0, 0.0]), a, b, config.bins),
    ]
    return summaries


def _text_histogram(summary: ProjectionSummary, width: int = 40) -> "list[str]":
    peak = max(int(summary.histogram_a.max()), int(summary.histogram_b.max()), 1)
    lines = []
    for count_a, count_b in zip(summary.histogram_a, summary.histogram_b):
        bar_a = "A" * int(round(width * count_a / peak))
        bar_b = "B" * int(round(width * count_b / peak))
        lines.append(f"  |{bar_a:<{width}}|{bar_b:<{width}}|")
    return lines


def format_figure1(summaries: Sequence[ProjectionSummary], histograms: bool = False) -> str:
    lines = [
        "Figure 1 — class separation by projection direction",
        "=" * 52,
        "  direction        |  d-prime (higher = better separated)",
        "-------------------+--------------------------------------",
    ]
    for s in summaries:
        lines.append(f"  {s.name:17s} | {s.d_prime:8.3f}")
    lines.append("")
    lines.append("shape check: the LDA direction dominates both alternatives")
    if histograms:
        for s in summaries:
            lines.append(f"\nprojection histogram — {s.name} (left column A, right B):")
            lines.extend(_text_histogram(s))
    return "\n".join(lines) + "\n"
