"""Cholesky factorization and SPD solves.

The LDA-FP relaxation's second-order cone constraints are written as
``beta * ||L' w||_2 <= ...`` with ``L`` the Cholesky factor of a class
covariance (paper Eq. 20 / 25), and the conventional LDA weight vector is
the SPD solve ``S_W w = mu_A - mu_B`` (Eq. 11).  Both use this module.
"""

from __future__ import annotations

import numpy as np

from ..errors import LinAlgError
from .triangular import solve_lower, solve_upper

__all__ = ["cholesky", "solve_spd", "logdet_spd"]


def cholesky(matrix: np.ndarray, jitter: float = 0.0) -> np.ndarray:
    """Lower-triangular Cholesky factor ``L`` with ``L L' = matrix``.

    Parameters
    ----------
    matrix:
        Symmetric positive-definite matrix.  Symmetry is enforced by
        averaging with the transpose (guards against floating-point
        asymmetry in accumulated covariance estimates).
    jitter:
        Optional value added to the diagonal before factorizing — the usual
        remedy for barely-PSD sample covariances.

    Raises
    ------
    LinAlgError
        If the (jittered) matrix is not positive definite.
    """
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinAlgError(f"expected a square matrix, got shape {a.shape}")
    a = 0.5 * (a + a.T)
    if jitter:
        a = a + float(jitter) * np.eye(a.shape[0])
    n = a.shape[0]
    lower = np.zeros_like(a)
    for j in range(n):
        diag = a[j, j] - lower[j, :j] @ lower[j, :j]
        if diag <= 0.0 or not np.isfinite(diag):
            raise LinAlgError(
                f"matrix is not positive definite (pivot {diag:.3e} at column {j}); "
                "consider covariance shrinkage or a diagonal jitter"
            )
        lower[j, j] = np.sqrt(diag)
        if j + 1 < n:
            lower[j + 1 :, j] = (a[j + 1 :, j] - lower[j + 1 :, :j] @ lower[j, :j]) / lower[j, j]
    return lower


def solve_spd(matrix: np.ndarray, rhs: np.ndarray, jitter: float = 0.0) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` for symmetric positive-definite ``matrix``."""
    lower = cholesky(matrix, jitter=jitter)
    y = solve_lower(lower, rhs)
    return solve_upper(lower.T, y)


def logdet_spd(matrix: np.ndarray, jitter: float = 0.0) -> float:
    """Log-determinant of an SPD matrix via its Cholesky factor."""
    lower = cholesky(matrix, jitter=jitter)
    return float(2.0 * np.sum(np.log(np.diag(lower))))
