"""Covariance shrinkage regularization.

With 42 features and only ~56 training trials per class per CV fold (the
paper's BCI setting), the sample covariance is ill-conditioned or singular,
which makes both the conventional LDA solve (Eq. 11) and the cone-program
Cholesky factors fragile.  The standard remedy — and the one any practical
reimplementation must adopt — is linear shrinkage toward a scaled identity:

    ``Sigma_hat = (1 - gamma) * S + gamma * (tr(S) / M) * I``

We provide both a fixed-``gamma`` shrinkage and the Ledoit-Wolf
data-driven choice of ``gamma`` (implemented from scratch; validated against
its defining optimality conditions in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, InputValidationError
from .psd import symmetrize

__all__ = ["ShrinkageResult", "shrink_covariance", "ledoit_wolf_gamma"]


@dataclass(frozen=True)
class ShrinkageResult:
    """A shrunk covariance and the intensity used to produce it."""

    covariance: np.ndarray
    gamma: float
    target_scale: float


def shrink_covariance(sample_cov: np.ndarray, gamma: float) -> ShrinkageResult:
    """Shrink ``sample_cov`` toward ``(tr(S)/M) * I`` with intensity ``gamma``."""
    s = symmetrize(sample_cov)
    if not 0.0 <= gamma <= 1.0:
        raise InputValidationError(f"gamma must be in [0, 1], got {gamma}")
    m = s.shape[0]
    target_scale = float(np.trace(s)) / m
    shrunk = (1.0 - gamma) * s + gamma * target_scale * np.eye(m)
    return ShrinkageResult(covariance=shrunk, gamma=float(gamma), target_scale=target_scale)


def ledoit_wolf_gamma(samples: np.ndarray) -> float:
    """Ledoit-Wolf optimal shrinkage intensity for rows-as-samples data.

    Implements the standard estimator: ``gamma* = min(1, (b^2)/(d^2))``
    where ``d^2 = ||S - m I||_F^2`` measures dispersion of the sample
    covariance around the scaled identity and ``b^2`` estimates the
    sampling noise of ``S``.

    Parameters
    ----------
    samples:
        ``(N, M)`` array; rows are observations.  Must have ``N >= 2``.
    """
    x = np.asarray(samples, dtype=np.float64)
    if x.ndim != 2:
        raise DataError(f"samples must be 2-D (N, M), got shape {x.shape}")
    n, m = x.shape
    if n < 2:
        raise DataError(f"need at least 2 samples for shrinkage, got {n}")
    centered = x - x.mean(axis=0, keepdims=True)
    sample_cov = centered.T @ centered / n
    mu = float(np.trace(sample_cov)) / m
    d2 = float(np.sum((sample_cov - mu * np.eye(m)) ** 2))
    if d2 == 0.0:
        return 0.0
    # b^2: average squared Frobenius distance of per-sample outer products
    # from the sample covariance, divided by N (Ledoit & Wolf 2004, Lemma 3.3).
    b2_sum = 0.0
    for row in centered:
        outer = np.outer(row, row)
        b2_sum += float(np.sum((outer - sample_cov) ** 2))
    b2 = min(b2_sum / (n * n), d2)
    return float(b2 / d2)
