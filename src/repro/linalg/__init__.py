"""From-scratch numerical linear algebra used by the classifiers and solver."""

from .cholesky import cholesky, logdet_spd, solve_spd
from .elimination import LUFactors, lu_factor, lu_solve, solve
from .psd import is_psd, is_symmetric, nearest_psd, symmetrize
from .shrinkage import ShrinkageResult, ledoit_wolf_gamma, shrink_covariance
from .triangular import solve_lower, solve_upper

__all__ = [
    "cholesky",
    "solve_spd",
    "logdet_spd",
    "LUFactors",
    "lu_factor",
    "lu_solve",
    "solve",
    "is_psd",
    "is_symmetric",
    "nearest_psd",
    "symmetrize",
    "ShrinkageResult",
    "ledoit_wolf_gamma",
    "shrink_covariance",
    "solve_lower",
    "solve_upper",
]
