"""Triangular solves (forward/back substitution).

Building blocks for the from-scratch Cholesky and Gaussian-elimination
solvers used by the LDA closed form and by the interior-point solver's
Newton steps.  Implemented with numpy row operations (vectorized inner
loops), validated against ``scipy.linalg.solve_triangular`` in the tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import LinAlgError

__all__ = ["solve_lower", "solve_upper"]

_SINGULAR_TOL = 1e-300


def _check_square(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinAlgError(f"expected a square matrix, got shape {a.shape}")
    return a


def solve_lower(lower: np.ndarray, rhs: np.ndarray, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``L y = rhs`` for lower-triangular ``L`` by forward substitution.

    ``rhs`` may be a vector or a matrix of stacked right-hand-side columns.
    """
    lower = _check_square(lower)
    b = np.asarray(rhs, dtype=np.float64)
    vector_input = b.ndim == 1
    if vector_input:
        b = b[:, None]
    if b.shape[0] != lower.shape[0]:
        raise LinAlgError(
            f"rhs has {b.shape[0]} rows but matrix is {lower.shape[0]}x{lower.shape[0]}"
        )
    n = lower.shape[0]
    y = b.copy()
    for i in range(n):
        if i > 0:
            y[i] -= lower[i, :i] @ y[:i]
        if not unit_diagonal:
            pivot = lower[i, i]
            if abs(pivot) < _SINGULAR_TOL:
                raise LinAlgError(f"zero pivot at row {i} in triangular solve")
            y[i] /= pivot
    return y[:, 0] if vector_input else y


def solve_upper(upper: np.ndarray, rhs: np.ndarray, unit_diagonal: bool = False) -> np.ndarray:
    """Solve ``U x = rhs`` for upper-triangular ``U`` by back substitution."""
    upper = _check_square(upper)
    b = np.asarray(rhs, dtype=np.float64)
    vector_input = b.ndim == 1
    if vector_input:
        b = b[:, None]
    if b.shape[0] != upper.shape[0]:
        raise LinAlgError(
            f"rhs has {b.shape[0]} rows but matrix is {upper.shape[0]}x{upper.shape[0]}"
        )
    n = upper.shape[0]
    x = b.copy()
    for i in range(n - 1, -1, -1):
        if i < n - 1:
            x[i] -= upper[i, i + 1 :] @ x[i + 1 :]
        if not unit_diagonal:
            pivot = upper[i, i]
            if abs(pivot) < _SINGULAR_TOL:
                raise LinAlgError(f"zero pivot at row {i} in triangular solve")
            x[i] /= pivot
    return x[:, 0] if vector_input else x
