"""Gaussian elimination with partial pivoting (LU factorization).

The paper's introduction motivates LDA-FP by analogy with classical
numerical robustness techniques — "pivoting is an important technique for
Gaussian elimination that is needed to mitigate the numerical error of a
linear solver" — so the linear solver used for general (non-SPD) systems in
this library is exactly that: LU with partial pivoting, built from scratch
and validated against ``numpy.linalg.solve``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import LinAlgError
from .triangular import solve_lower, solve_upper

__all__ = ["LUFactors", "lu_factor", "lu_solve", "solve"]


@dataclass(frozen=True)
class LUFactors:
    """Packed LU factorization ``P A = L U``.

    Attributes
    ----------
    lower:
        Unit lower-triangular factor ``L``.
    upper:
        Upper-triangular factor ``U``.
    permutation:
        Row permutation as an index array: row ``i`` of ``P A`` is row
        ``permutation[i]`` of ``A``.
    """

    lower: np.ndarray
    upper: np.ndarray
    permutation: np.ndarray

    @property
    def determinant(self) -> float:
        """Determinant of the factored matrix (sign from the permutation parity)."""
        perm = list(self.permutation)
        swaps = 0
        seen = [False] * len(perm)
        for start in range(len(perm)):
            if seen[start]:
                continue
            length = 0
            node = start
            while not seen[node]:
                seen[node] = True
                node = perm[node]
                length += 1
            swaps += length - 1
        sign = -1.0 if swaps % 2 else 1.0
        return float(sign * np.prod(np.diag(self.upper)))


def lu_factor(matrix: np.ndarray, pivot_tol: float = 1e-12) -> LUFactors:
    """Factor ``matrix`` as ``P A = L U`` with partial (row) pivoting.

    Raises :class:`~repro.errors.LinAlgError` when the best available pivot
    at some column is below ``pivot_tol`` times the matrix's max magnitude —
    the matrix is singular to working precision.
    """
    a = np.asarray(matrix, dtype=np.float64).copy()
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinAlgError(f"expected a square matrix, got shape {a.shape}")
    n = a.shape[0]
    perm = np.arange(n)
    scale = np.max(np.abs(a)) or 1.0
    for k in range(n):
        pivot_row = k + int(np.argmax(np.abs(a[k:, k])))
        if abs(a[pivot_row, k]) < pivot_tol * scale:
            raise LinAlgError(
                f"matrix is singular to working precision (column {k})"
            )
        if pivot_row != k:
            a[[k, pivot_row]] = a[[pivot_row, k]]
            perm[[k, pivot_row]] = perm[[pivot_row, k]]
        a[k + 1 :, k] /= a[k, k]
        a[k + 1 :, k + 1 :] -= np.outer(a[k + 1 :, k], a[k, k + 1 :])
    lower = np.tril(a, -1) + np.eye(n)
    upper = np.triu(a)
    return LUFactors(lower=lower, upper=upper, permutation=perm)


def lu_solve(factors: LUFactors, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = rhs`` given ``P A = L U`` factors."""
    b = np.asarray(rhs, dtype=np.float64)
    permuted = b[factors.permutation]
    y = solve_lower(factors.lower, permuted, unit_diagonal=True)
    return solve_upper(factors.upper, y)


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot pivoted Gaussian-elimination solve of ``A x = rhs``."""
    return lu_solve(lu_factor(matrix), rhs)
