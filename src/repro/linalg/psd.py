"""Positive-semidefinite utilities.

Sample covariances estimated from few trials (the BCI case: 42 features,
~112 training trials per fold) are frequently indefinite at working
precision.  These helpers test and repair PSD-ness so the cone-program
constraints (which take Cholesky factors of class covariances) stay valid.
"""

from __future__ import annotations

import numpy as np

from ..errors import LinAlgError

__all__ = ["is_symmetric", "is_psd", "nearest_psd", "symmetrize"]


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(A + A') / 2``."""
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinAlgError(f"expected a square matrix, got shape {a.shape}")
    return 0.5 * (a + a.T)


def is_symmetric(matrix: np.ndarray, tol: float = 1e-10) -> bool:
    """True when ``A`` equals its transpose to within ``tol`` (relative)."""
    a = np.asarray(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        return False
    scale = max(1.0, float(np.max(np.abs(a))))
    return bool(np.max(np.abs(a - a.T)) <= tol * scale)


def is_psd(matrix: np.ndarray, tol: float = 1e-10) -> bool:
    """True when the symmetric part of ``A`` has no eigenvalue below ``-tol*scale``."""
    a = symmetrize(matrix)
    eigvals = np.linalg.eigvalsh(a)
    scale = max(1.0, float(np.max(np.abs(eigvals))) if eigvals.size else 1.0)
    return bool(eigvals.min() >= -tol * scale)


def nearest_psd(matrix: np.ndarray, floor: float = 0.0) -> np.ndarray:
    """Project onto the PSD cone by clipping negative eigenvalues.

    Parameters
    ----------
    matrix:
        Square matrix (symmetrized internally).
    floor:
        Minimum eigenvalue of the result; ``floor > 0`` yields a strictly
        positive-definite matrix, which is what the Cholesky-based cone
        constraints require.
    """
    a = symmetrize(matrix)
    eigvals, eigvecs = np.linalg.eigh(a)
    clipped = np.maximum(eigvals, float(floor))
    return symmetrize(eigvecs @ np.diag(clipped) @ eigvecs.T)
