"""The deployable fixed-point linear classifier (paper Eq. 12 in ``QK.F``).

A trained classifier is three constants baked into silicon: the quantized
weight vector ``w``, the quantized threshold ``w' (mu_A + mu_B) / 2``, and
the format ``QK.F``.  Prediction offers two paths:

- ``predict`` — float evaluation of the quantized constants (fast; exact
  when no datapath overflow occurs), used by the big experiment sweeps;
- ``predict_bitexact`` — routes every sample through the
  :class:`~repro.fixedpoint.datapath.FixedPointDatapath` RTL-equivalent
  simulator, reproducing product rounding and wrapping accumulation.

The test suite asserts the two paths agree whenever the datapath reports no
overflow, and the overflow ablation studies where they diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError, TrainingError
from ..fixedpoint.datapath import DatapathConfig, FixedPointDatapath
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.quantize import quantize
from ..fixedpoint.rounding import RoundingMode
from ..data.dataset import Dataset
from ..stats.metrics import classification_error

__all__ = ["FixedPointLinearClassifier"]


@dataclass(frozen=True)
class FixedPointLinearClassifier:
    """Quantized weights + threshold in one ``QK.F`` format.

    Attributes
    ----------
    weights:
        Grid-exact weight vector (every element representable in ``fmt``).
    threshold:
        Grid-exact decision threshold.
    fmt:
        The shared fixed-point format.
    rounding:
        Rounding mode of the datapath multipliers (kept so the bit-exact
        path matches how the classifier was characterized).
    polarity:
        ``+1`` predicts class A when ``w'x - threshold >= 0`` (Eq. 12);
        ``-1`` inverts the comparator output.  The Fisher cost (Eq. 10) is
        invariant under ``w -> -w``, so a solver may return the mirrored
        vector; because the ``QK.F`` range is asymmetric by one LSB,
        ``-w`` is not always representable, and flipping the comparator —
        free in hardware — is the faithful fix.
    """

    weights: np.ndarray
    threshold: float
    fmt: QFormat
    rounding: RoundingMode = RoundingMode.NEAREST_AWAY
    polarity: int = 1

    def __post_init__(self) -> None:
        if self.polarity not in (1, -1):
            raise TrainingError(f"polarity must be +1 or -1, got {self.polarity}")
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise TrainingError(f"weights must be a non-empty vector, got {w.shape}")
        snapped = np.asarray(quantize(w, self.fmt, rounding=self.rounding))
        if not np.allclose(snapped, w, atol=0.0):
            raise TrainingError(
                "weights are not exactly representable in "
                f"{self.fmt}; quantize before constructing the classifier"
            )
        object.__setattr__(self, "weights", w)
        object.__setattr__(
            self,
            "threshold",
            float(quantize(float(self.threshold), self.fmt, rounding=self.rounding)),
        )

    # ------------------------------------------------------------------ #
    @property
    def num_features(self) -> int:
        return int(self.weights.size)

    @property
    def word_length(self) -> int:
        return self.fmt.word_length

    # ------------------------------------------------------------------ #
    def decision_values(self, features: np.ndarray) -> np.ndarray:
        """Float ``w'x - threshold`` over rows (features quantized to the grid)."""
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        xq = np.asarray(
            quantize(x, self.fmt, rounding=self.rounding, overflow=OverflowMode.SATURATE)
        )
        out = xq @ self.weights
        out -= self.threshold
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Labels (1 = class A) from the float fast path (Eq. 12)."""
        values = self.decision_values(features)
        # Fold the +/-1 polarity into the comparison direction instead of
        # multiplying it through the whole batch (0 ties stay class A
        # either way: -1 * 0 >= 0 and 0 <= 0 are both true).
        if self.polarity >= 0:
            return (values >= 0.0).astype(np.int64)
        return (values <= 0.0).astype(np.int64)

    def datapath(
        self, overflow: OverflowMode = OverflowMode.WRAP
    ) -> FixedPointDatapath:
        """The RTL-equivalent simulator for this classifier."""
        config = DatapathConfig(
            fmt=self.fmt,
            rounding=self.rounding,
            overflow=overflow,
            product_overflow=overflow,
        )
        return FixedPointDatapath(self.weights, self.threshold, config)

    def predict_bitexact(
        self, features: np.ndarray, overflow: OverflowMode = OverflowMode.WRAP
    ) -> np.ndarray:
        """Labels computed through the bit-accurate datapath."""
        projections = self.datapath(overflow=overflow).project_batch(
            np.atleast_2d(np.asarray(features, dtype=np.float64))
        )
        return (self.polarity * projections >= 0.0).astype(np.int64)

    # ------------------------------------------------------------------ #
    def error_on(self, dataset: Dataset, bitexact: bool = False) -> float:
        """Classification error on a labeled dataset."""
        if bitexact:
            predictions = self.predict_bitexact(dataset.features)
            return classification_error(dataset.labels, predictions)
        if dataset.labels.size == 0:
            raise DataError("empty label arrays")
        # Same mismatch fraction as classification_error(labels, predict()),
        # staying in the bool domain: the sweep scores every word length on
        # the full test set, so the int64 label round-trip is measurable.
        values = self.decision_values(dataset.features)
        predicted_a = values >= 0.0 if self.polarity >= 0 else values <= 0.0
        return float(np.mean(predicted_a != (dataset.labels != 0)))

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"FixedPointLinearClassifier(fmt={self.fmt}, M={self.num_features}, "
            f"threshold={self.threshold:+.6g})"
        )
