"""Cross-validated hyperparameter selection for the training pipeline.

Two knobs matter in practice and are not set by the paper: the covariance
shrinkage intensity (critical in the BCI small-sample regime) and the
overflow confidence level ``rho``.  Both are selected here by stratified
cross-validation on the *training* data only, so experiment protocols stay
honest (the test fold never touches selection).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence

import numpy as np

from ..errors import DataError
from ..data.dataset import Dataset
from ..stats.crossval import StratifiedKFold
from .pipeline import PipelineConfig, TrainingPipeline

__all__ = ["SelectionResult", "select_shrinkage", "select_rho"]


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a CV hyperparameter search."""

    best_value: float
    best_cv_error: float
    candidates: "tuple[float, ...]"
    cv_errors: "tuple[float, ...]"


def _cv_error(
    config: PipelineConfig,
    dataset: Dataset,
    word_length: int,
    folds: int,
    seed: int,
) -> float:
    pipeline = TrainingPipeline(config)
    splitter = StratifiedKFold(n_splits=folds, shuffle=True, seed=seed)
    errors: "List[float]" = []
    for train_idx, test_idx in splitter.split(dataset.labels):
        result = pipeline.run(
            dataset.subset(train_idx), dataset.subset(test_idx), word_length
        )
        errors.append(result.test_error)
    return float(np.mean(errors))


def select_shrinkage(
    dataset: Dataset,
    word_length: int,
    base_config: "PipelineConfig | None" = None,
    candidates: Sequence[float] = (0.0, 1e-4, 1e-3, 1e-2, 0.05, 0.2),
    folds: int = 4,
    seed: int = 0,
) -> SelectionResult:
    """Pick the covariance shrinkage by inner cross-validation.

    Applies the candidate to both the conventional-LDA path
    (``lda_shrinkage``) and the LDA-FP config so either method can be
    selected for.
    """
    if not candidates:
        raise DataError("no shrinkage candidates")
    base = base_config or PipelineConfig()
    errors: "List[float]" = []
    for value in candidates:
        config = replace(
            base,
            lda_shrinkage=float(value),
            ldafp=replace(base.ldafp, shrinkage=float(value)),
        )
        errors.append(_cv_error(config, dataset, word_length, folds, seed))
    best_index = int(np.argmin(errors))
    return SelectionResult(
        best_value=float(candidates[best_index]),
        best_cv_error=errors[best_index],
        candidates=tuple(float(c) for c in candidates),
        cv_errors=tuple(errors),
    )


def select_rho(
    dataset: Dataset,
    word_length: int,
    base_config: "PipelineConfig | None" = None,
    candidates: Sequence[float] = (0.9, 0.99, 0.999),
    folds: int = 4,
    seed: int = 0,
) -> SelectionResult:
    """Pick the overflow confidence level ``rho`` (LDA-FP only) by CV."""
    if not candidates:
        raise DataError("no rho candidates")
    base = base_config or PipelineConfig()
    if base.method != "lda-fp":
        raise DataError("rho selection only applies to method='lda-fp'")
    errors: "List[float]" = []
    for value in candidates:
        config = replace(base, ldafp=replace(base.ldafp, rho=float(value)))
        errors.append(_cv_error(config, dataset, word_length, folds, seed))
    best_index = int(np.argmin(errors))
    return SelectionResult(
        best_value=float(candidates[best_index]),
        best_cv_error=errors[best_index],
        candidates=tuple(float(c) for c in candidates),
        cv_errors=tuple(errors),
    )
