"""Core contribution: conventional LDA, the LDA-FP program, and its solver."""

from .classifier import FixedPointLinearClassifier
from .lda import LdaModel, fit_lda, quantize_lda
from .ldafp import LdaFpConfig, LdaFpNodeProblem, LdaFpReport, train_lda_fp
from .localsearch import LocalSearchResult, coordinate_descent, scale_sweep_candidates
from .multiclass import MulticlassFixedPointClassifier, train_one_vs_rest
from .pipeline import PipelineConfig, PipelineResult, TrainingPipeline
from .problem import LdaFpProblem, eta_inf, eta_sup
from .selection import SelectionResult, select_rho, select_shrinkage
from .serialize import (
    classifier_from_dict,
    classifier_to_dict,
    load_classifier,
    save_classifier,
)

__all__ = [
    "FixedPointLinearClassifier",
    "LdaModel",
    "fit_lda",
    "quantize_lda",
    "LdaFpConfig",
    "LdaFpNodeProblem",
    "LdaFpReport",
    "train_lda_fp",
    "LocalSearchResult",
    "coordinate_descent",
    "scale_sweep_candidates",
    "PipelineConfig",
    "PipelineResult",
    "TrainingPipeline",
    "LdaFpProblem",
    "eta_inf",
    "eta_sup",
    "MulticlassFixedPointClassifier",
    "train_one_vs_rest",
    "SelectionResult",
    "select_rho",
    "select_shrinkage",
    "classifier_from_dict",
    "classifier_to_dict",
    "load_classifier",
    "save_classifier",
]
