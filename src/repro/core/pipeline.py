"""End-to-end training/evaluation pipeline used by the experiments.

One :class:`TrainingPipeline` run mirrors how the paper evaluates both
algorithms at a given word length:

1. pick the ``QK.F`` split for the requested word length,
2. fit the feature scaler on training data and scale train + test
   ("carefully scaled to avoid overflow", Section 3),
3. quantize the scaled features to the grid,
4. train either conventional LDA (fit in float, then round — Section 2) or
   LDA-FP (Algorithm 1),
5. report test error (float fast path by default, bit-exact on request)
   and training time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..errors import InputValidationError, TrainingError
from ..fixedpoint.qformat import QFormat
from ..data.dataset import Dataset
from ..data.scaling import FeatureScaler
from .classifier import FixedPointLinearClassifier
from .lda import fit_lda, quantize_lda
from .ldafp import LdaFpConfig, LdaFpReport, train_lda_fp

__all__ = ["PipelineConfig", "PipelineResult", "TrainingPipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """Static settings shared across word lengths.

    Attributes
    ----------
    integer_bits:
        ``K`` of the shared ``QK.F`` format (the paper quotes only total
        word lengths; we fix ``K`` per experiment and document it).
    scale_margin:
        Features are scaled into ``margin * [-2^(K-1), 2^(K-1)]``.
    method:
        ``"lda"`` or ``"lda-fp"``.
    lda_shrinkage:
        Shrinkage used by the conventional-LDA fit.
    lda_weight_scale:
        ``"unit"`` (paper baseline) or ``"grid-max"`` (stronger baseline).
    ldafp:
        Full LDA-FP config (ignored for ``method="lda"``).
    """

    integer_bits: int = 2
    scale_margin: float = 0.45
    method: str = "lda-fp"
    lda_shrinkage: float = 1e-6
    lda_weight_scale: str = "unit"
    ldafp: LdaFpConfig = field(default_factory=LdaFpConfig)

    def __post_init__(self) -> None:
        if self.method not in ("lda", "lda-fp"):
            raise InputValidationError(f"unknown method {self.method!r}")
        if not 0.0 < self.scale_margin <= 1.0:
            raise InputValidationError(
                f"scale_margin must be in (0, 1], got {self.scale_margin}"
            )


@dataclass
class PipelineResult:
    """Everything one train+test run produced."""

    classifier: FixedPointLinearClassifier
    fmt: QFormat
    test_error: float
    train_seconds: float
    method: str
    ldafp_report: Optional[LdaFpReport] = None

    @property
    def word_length(self) -> int:
        return self.fmt.word_length


class TrainingPipeline:
    """Train and evaluate one method at one word length."""

    def __init__(self, config: "PipelineConfig | None" = None) -> None:
        self.config = config or PipelineConfig()

    def format_for(self, word_length: int) -> QFormat:
        """The experiment's ``QK.F`` split for a total word length."""
        k = self.config.integer_bits
        if word_length <= k:
            raise TrainingError(
                f"word length {word_length} leaves no fractional bits below K={k}"
            )
        return QFormat(k, word_length - k)

    def scaler_for(self, word_length: int) -> FeatureScaler:
        """The (unfitted) feature scaler :meth:`run` would build.

        The target limit depends only on ``K`` and ``scale_margin`` — not on
        the total word length — which is why a sweep over word lengths can
        fit one scaler and reuse it at every point.
        """
        fmt = self.format_for(word_length)
        return FeatureScaler(
            limit=self.config.scale_margin * (2.0 ** (fmt.integer_bits - 1))
        )

    def run(
        self,
        train: Dataset,
        test: Dataset,
        word_length: int,
        bitexact_eval: bool = False,
        trace=None,
        scaler: "FeatureScaler | None" = None,
        warm_start_direction=None,
        incumbent_seeds=None,
        pre_scaled: bool = False,
    ) -> PipelineResult:
        """Scale, quantize, train, and score one configuration.

        ``trace`` is an optional :class:`~repro.optim.trace.SolverTrace`
        recording the LDA-FP solver's event stream (ignored for
        ``method="lda"``, which has no solver).

        ``scaler`` optionally supplies an already-fitted
        :class:`~repro.data.scaling.FeatureScaler` (its ``limit`` must
        match this config's target — the scaler is word-length-invariant
        for a fixed ``K``, so a sweep fits it once).  With
        ``pre_scaled=True``, ``train`` and ``test`` are taken as *already
        transformed* by that scaler and the per-point transform is skipped
        entirely (the scaled datasets are word-length-invariant too, so a
        sweep transforms them once); the fitted ``scaler`` is still
        required, to validate its limit against this config.
        ``warm_start_direction`` and ``incumbent_seeds`` are forwarded to
        :func:`~repro.core.ldafp.train_lda_fp` (ignored for
        ``method="lda"``).
        """
        config = self.config
        fmt = self.format_for(word_length)

        expected_limit = config.scale_margin * (2.0 ** (fmt.integer_bits - 1))
        if scaler is None:
            if pre_scaled:
                raise InputValidationError(
                    "pre_scaled=True requires the fitted scaler that "
                    "produced the data"
                )
            scaler = FeatureScaler(limit=expected_limit)
            scaler.fit(train.features)
        else:
            if not scaler.is_fitted:
                raise InputValidationError(
                    "a precomputed scaler must already be fitted"
                )
            if abs(scaler.limit - expected_limit) > 1e-12 * max(1.0, expected_limit):
                raise InputValidationError(
                    f"precomputed scaler limit {scaler.limit} does not match "
                    f"the config's target {expected_limit}"
                )
        if pre_scaled:
            train_scaled, test_scaled = train, test
        else:
            train_scaled = train.map_features(scaler.transform)
            test_scaled = test.map_features(scaler.transform)

        start = time.perf_counter()
        ldafp_report: Optional[LdaFpReport] = None
        if config.method == "lda":
            model = fit_lda(train_scaled, shrinkage=config.lda_shrinkage)
            classifier = quantize_lda(
                model, fmt, weight_scale=config.lda_weight_scale
            )
        else:
            classifier, ldafp_report = train_lda_fp(
                train_scaled,
                fmt,
                config.ldafp,
                trace=trace,
                warm_start_direction=warm_start_direction,
                incumbent_seeds=incumbent_seeds,
            )
        train_seconds = time.perf_counter() - start

        test_error = classifier.error_on(test_scaled, bitexact=bitexact_eval)
        return PipelineResult(
            classifier=classifier,
            fmt=fmt,
            test_error=test_error,
            train_seconds=train_seconds,
            method=config.method,
            ldafp_report=ldafp_report,
        )
