"""Save/load trained classifiers as JSON deployment artifacts.

A trained fixed-point classifier is a handful of integers — exactly the
kind of artifact that gets checked into a hardware project's repository and
diffed in code review.  The JSON schema stores **raw integer words**, not
floats, so the artifact is bit-exact by construction and human-auditable:

```json
{
  "schema": "repro.fixed-point-classifier.v1",
  "format": {"integer_bits": 2, "fraction_bits": 4},
  "weight_raws": [8, -4, 16],
  "threshold_raw": 2,
  "polarity": 1,
  "rounding": "nearest-away"
}
```
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from ..errors import DataError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import RoundingMode
from .classifier import FixedPointLinearClassifier

__all__ = ["classifier_to_dict", "classifier_from_dict", "save_classifier", "load_classifier"]

_SCHEMA = "repro.fixed-point-classifier.v1"


def classifier_to_dict(classifier: FixedPointLinearClassifier) -> "Dict[str, Any]":
    """Serializable dict with raw integer words (bit-exact)."""
    fmt = classifier.fmt
    return {
        "schema": _SCHEMA,
        "format": {
            "integer_bits": fmt.integer_bits,
            "fraction_bits": fmt.fraction_bits,
        },
        "weight_raws": [int(fmt.to_raw(w)) for w in classifier.weights],
        "threshold_raw": int(fmt.to_raw(classifier.threshold)),
        "polarity": int(classifier.polarity),
        "rounding": classifier.rounding.value,
    }


def classifier_from_dict(payload: "Dict[str, Any]") -> FixedPointLinearClassifier:
    """Rebuild a classifier from :func:`classifier_to_dict` output.

    Raises :class:`~repro.errors.DataError` on schema mismatch or raw words
    outside the declared format's range (a corrupted artifact must never
    silently wrap).
    """
    if payload.get("schema") != _SCHEMA:
        raise DataError(
            f"unsupported schema {payload.get('schema')!r}; expected {_SCHEMA!r}"
        )
    try:
        fmt = QFormat(
            int(payload["format"]["integer_bits"]),
            int(payload["format"]["fraction_bits"]),
        )
        weight_raws = [int(r) for r in payload["weight_raws"]]
        threshold_raw = int(payload["threshold_raw"])
        polarity = int(payload.get("polarity", 1))
        rounding = RoundingMode(payload.get("rounding", "nearest-away"))
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed classifier payload: {exc}") from exc
    for raw in weight_raws + [threshold_raw]:
        if raw < fmt.min_raw or raw > fmt.max_raw:
            raise DataError(
                f"raw word {raw} outside the range of {fmt} "
                f"[{fmt.min_raw}, {fmt.max_raw}]"
            )
    weights = np.array(weight_raws, dtype=np.float64) * fmt.resolution
    return FixedPointLinearClassifier(
        weights=weights,
        threshold=float(threshold_raw) * fmt.resolution,
        fmt=fmt,
        rounding=rounding,
        polarity=polarity,
    )


def save_classifier(classifier: FixedPointLinearClassifier, path: str) -> None:
    """Write the JSON artifact to ``path``."""
    with open(path, "w") as handle:
        json.dump(classifier_to_dict(classifier), handle, indent=2)
        handle.write("\n")


def load_classifier(path: str) -> FixedPointLinearClassifier:
    """Read a JSON artifact written by :func:`save_classifier`."""
    with open(path) as handle:
        return classifier_from_dict(json.load(handle))
