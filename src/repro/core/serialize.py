"""Save/load trained classifiers as JSON deployment artifacts.

A trained fixed-point classifier is a handful of integers — exactly the
kind of artifact that gets checked into a hardware project's repository and
diffed in code review.  The JSON schema stores **raw integer words**, not
floats, so the artifact is bit-exact by construction and human-auditable:

```json
{
  "schema": "repro.fixed-point-classifier.v1",
  "format": {"integer_bits": 2, "fraction_bits": 4},
  "weight_raws": [8, -4, 16],
  "threshold_raw": 2,
  "polarity": 1,
  "rounding": "nearest-away"
}
```
"""

from __future__ import annotations

import json
from typing import Any, Dict

import numpy as np

from ..errors import DataError, QFormatError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import RoundingMode
from .classifier import FixedPointLinearClassifier

__all__ = ["classifier_to_dict", "classifier_from_dict", "save_classifier", "load_classifier"]

_SCHEMA = "repro.fixed-point-classifier.v1"
_SCHEMA_FAMILY = "repro.fixed-point-classifier."
_SUPPORTED_SCHEMAS = (_SCHEMA,)


def _as_raw_int(value: Any, what: str) -> int:
    """Coerce a JSON raw-word field to int, rejecting anything lossy.

    Accepts Python/numpy integers and integral floats (some JSON writers
    emit ``8.0``); rejects booleans, NaN/inf, fractional floats, and every
    other type — a corrupted artifact must fail loudly, never truncate.
    """
    if isinstance(value, bool):
        raise DataError(f"{what} must be an integer, got boolean {value!r}")
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, float):
        if not np.isfinite(value) or value != int(value):
            raise DataError(f"{what} must be an integer, got {value!r}")
        return int(value)
    raise DataError(f"{what} must be an integer, got {type(value).__name__}")


def classifier_to_dict(classifier: FixedPointLinearClassifier) -> "Dict[str, Any]":
    """Serializable dict with raw integer words (bit-exact)."""
    fmt = classifier.fmt
    return {
        "schema": _SCHEMA,
        "format": {
            "integer_bits": fmt.integer_bits,
            "fraction_bits": fmt.fraction_bits,
        },
        "weight_raws": [int(fmt.to_raw(w)) for w in classifier.weights],
        "threshold_raw": int(fmt.to_raw(classifier.threshold)),
        "polarity": int(classifier.polarity),
        "rounding": classifier.rounding.value,
    }


def classifier_from_dict(payload: "Dict[str, Any]") -> FixedPointLinearClassifier:
    """Rebuild a classifier from :func:`classifier_to_dict` output.

    Raises :class:`~repro.errors.DataError` on schema mismatch or raw words
    outside the declared format's range (a corrupted artifact must never
    silently wrap).
    """
    if not isinstance(payload, dict):
        raise DataError(
            f"classifier payload must be a JSON object, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema not in _SUPPORTED_SCHEMAS:
        if isinstance(schema, str) and schema.startswith(_SCHEMA_FAMILY):
            raise DataError(
                f"unknown schema version {schema!r}; this build supports "
                f"{', '.join(_SUPPORTED_SCHEMAS)} — refusing to guess at a "
                "newer artifact layout"
            )
        raise DataError(
            f"unsupported schema {schema!r}; expected one of {_SUPPORTED_SCHEMAS}"
        )
    try:
        fmt_payload = payload["format"]
        fmt = QFormat(
            _as_raw_int(fmt_payload["integer_bits"], "format.integer_bits"),
            _as_raw_int(fmt_payload["fraction_bits"], "format.fraction_bits"),
        )
        raw_list = payload["weight_raws"]
        if not isinstance(raw_list, (list, tuple)) or not raw_list:
            raise DataError("weight_raws must be a non-empty list")
        weight_raws = [
            _as_raw_int(r, f"weight_raws[{i}]") for i, r in enumerate(raw_list)
        ]
        threshold_raw = _as_raw_int(payload["threshold_raw"], "threshold_raw")
        polarity = _as_raw_int(payload.get("polarity", 1), "polarity")
        rounding = RoundingMode(payload.get("rounding", "nearest-away"))
    except DataError:
        raise
    except (KeyError, TypeError, ValueError, QFormatError) as exc:
        raise DataError(f"malformed classifier payload: {exc}") from exc
    if polarity not in (1, -1):
        raise DataError(f"polarity must be +1 or -1, got {polarity}")
    for raw in weight_raws + [threshold_raw]:
        if raw < fmt.min_raw or raw > fmt.max_raw:
            raise DataError(
                f"raw word {raw} outside the range of {fmt} "
                f"[{fmt.min_raw}, {fmt.max_raw}]"
            )
    weights = np.array(weight_raws, dtype=np.float64) * fmt.resolution
    return FixedPointLinearClassifier(
        weights=weights,
        threshold=float(threshold_raw) * fmt.resolution,
        fmt=fmt,
        rounding=rounding,
        polarity=polarity,
    )


def save_classifier(classifier: FixedPointLinearClassifier, path: str) -> None:
    """Write the JSON artifact to ``path``."""
    with open(path, "w") as handle:
        json.dump(classifier_to_dict(classifier), handle, indent=2)
        handle.write("\n")


def load_classifier(path: str) -> FixedPointLinearClassifier:
    """Read a JSON artifact written by :func:`save_classifier`."""
    with open(path) as handle:
        return classifier_from_dict(json.load(handle))
