"""The LDA-FP mixed-integer program (paper Eq. 21) and its node relaxation (Eq. 25).

:class:`LdaFpProblem` owns everything static about one training instance:
the two-class statistics (computed from *quantized* training data, per
Algorithm 1 step 1), the format ``QK.F``, and the confidence parameter
``beta`` (Eq. 16).  From these it can

- check **exact discrete feasibility** of a grid weight vector against the
  per-feature (Eq. 18) and projection (Eq. 20) overflow constraints,
- evaluate the **exact cost** (Eq. 10/21, with ``inf`` on a vanishing
  denominator),
- build the **root box** over ``(w, t)`` (Eq. 28-29), and
- build the **convex cone-program relaxation** of any node box (Eq. 25),
  with ``eta`` chosen by the supremum rule (Eq. 26, lower bounds) or the
  infimum rule (Eq. 27, upper-bound heuristic).

Convexification detail: each Eq. 18 row contains ``|w_m|`` and expands into
two linear rows (``w mu + beta |w| sigma`` is the max of two lines in
``w_m``; ``w mu - beta |w| sigma`` the min) — see DESIGN.md Section 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import OptimizationError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.quantize import quantize
from ..linalg.cholesky import cholesky
from ..linalg.psd import nearest_psd
from ..optim.boxes import Box
from ..optim.cone import ConeProgram, LinearInequality, SocConstraint
from ..optim.cuts import ReflectionCut
from ..optim.presolve import Presolver
from ..stats.normal import confidence_beta
from ..stats.scatter import TwoClassStats

__all__ = ["LdaFpProblem", "eta_sup", "eta_inf"]


def eta_sup(t_lo: float, t_hi: float) -> float:
    """Paper Eq. 26: ``sup t^2`` over ``[t_lo, t_hi]``."""
    if t_hi < t_lo:
        raise OptimizationError(f"empty t interval [{t_lo}, {t_hi}]")
    return max(t_lo * t_lo, t_hi * t_hi)


def eta_inf(t_lo: float, t_hi: float) -> float:
    """Paper Eq. 27: ``inf t^2`` over ``[t_lo, t_hi]`` (0 when it straddles 0)."""
    if t_hi < t_lo:
        raise OptimizationError(f"empty t interval [{t_lo}, {t_hi}]")
    if t_lo <= 0.0 <= t_hi:
        return 0.0
    return min(t_lo * t_lo, t_hi * t_hi)


@dataclass
class LdaFpProblem:
    """One LDA-FP training instance (Eq. 21).

    Parameters
    ----------
    stats:
        Two-class statistics estimated from the fixed-point-rounded
        training data (Algorithm 1 step 1-2).
    fmt:
        The ``QK.F`` format of weights, features, products, and sums.
    rho:
        Confidence level of the overflow intervals (Eq. 16); ``beta`` is
        derived as ``Phi^-1(0.5 + 0.5 rho)``.  Mutually exclusive with an
        explicit ``beta``.
    beta:
        Explicit ``beta`` overriding ``rho`` when given.
    psd_floor:
        Eigenvalue floor applied to class covariances before Cholesky so the
        SOC constraints are well-defined for rank-deficient sample
        covariances (BCI regime).
    """

    stats: TwoClassStats
    fmt: QFormat
    rho: float = 0.99
    beta: Optional[float] = None
    psd_floor: float = 1e-9

    def __post_init__(self) -> None:
        if self.beta is None:
            self.beta = confidence_beta(self.rho)
        self.beta = float(self.beta)
        if self.beta < 0:
            raise OptimizationError(f"beta must be >= 0, got {self.beta}")
        self._chol_a = cholesky(
            nearest_psd(self.stats.class_a.covariance, floor=self.psd_floor)
        )
        self._chol_b = cholesky(
            nearest_psd(self.stats.class_b.covariance, floor=self.psd_floor)
        )

    # ------------------------------------------------------------------ #
    @property
    def num_features(self) -> int:
        return self.stats.num_features

    @property
    def value_lo(self) -> float:
        """``-2^(K-1)`` — the format's most negative value."""
        return self.fmt.min_value

    @property
    def value_hi(self) -> float:
        """``2^(K-1) - 2^-F`` — the format's most positive value."""
        return self.fmt.max_value

    # ------------------------------------------------------------------ #
    # Exact discrete-space evaluation
    # ------------------------------------------------------------------ #
    def cost(self, weights: np.ndarray) -> float:
        """Eq. 21 objective: ``w' S_W w / ((mu_A - mu_B)' w)^2``."""
        return self.stats.fisher_cost(weights)

    def on_grid(self, weights: np.ndarray, tol: float = 1e-12) -> bool:
        """Eq. 13: every element representable in ``QK.F``."""
        w = np.asarray(weights, dtype=np.float64)
        snapped = np.asarray(quantize(w, self.fmt))
        return bool(np.max(np.abs(snapped - w)) <= tol)

    def constraint_violation(self, weights: np.ndarray) -> float:
        """Largest violation of the Eq. 18 + Eq. 20 constraints (<= 0 feasible).

        Evaluated exactly (with ``|w|`` and the square root), not through
        the linearized relaxation rows.
        """
        w = np.asarray(weights, dtype=np.float64)
        beta = self.beta
        lo, hi = self.value_lo, self.value_hi
        worst = -np.inf

        for cls in (self.stats.class_a, self.stats.class_b):
            mu, sigma = cls.mean, cls.std
            upper = w * mu + beta * np.abs(w) * sigma
            lower = w * mu - beta * np.abs(w) * sigma
            worst = max(worst, float(np.max(upper - hi)))
            worst = max(worst, float(np.max(lo - lower)))

        for cls, chol in (
            (self.stats.class_a, self._chol_a),
            (self.stats.class_b, self._chol_b),
        ):
            center = float(w @ cls.mean)
            spread = beta * float(np.linalg.norm(chol.T @ w))
            worst = max(worst, (center + spread) - hi)
            worst = max(worst, lo - (center - spread))

        # Box membership of the weights themselves (Eq. 28).
        worst = max(worst, float(np.max(w - self.value_hi)))
        worst = max(worst, float(np.max(self.value_lo - w)))
        return worst

    def is_feasible(self, weights: np.ndarray, tol: float = 1e-9) -> bool:
        """Exact feasibility of a candidate: grid membership + constraints."""
        return self.on_grid(weights) and self.constraint_violation(weights) <= tol

    def continuous_optimum(self) -> float:
        """Global lower bound: the unconstrained continuous Fisher optimum.

        ``min_w w' S_W w / (d'w)^2 = 1 / (d' S_W^-1 d)`` (the Eq. 11
        solution).  It lower-bounds the discrete Eq. 21 optimum because
        (a) dropping the grid constraint only enlarges the feasible set and
        (b) the overflow constraints never bind from below — any continuous
        ``w`` can be scaled down without changing the cost until every
        constraint is slack.  Returns 0.0 when ``S_W`` is singular (infinite
        separation is possible in the continuous limit).
        """
        from ..linalg.cholesky import solve_spd

        d = self.stats.mean_difference
        try:
            inv_d = solve_spd(self.stats.within_scatter, d, jitter=0.0)
        except Exception:
            return 0.0
        denom = float(d @ inv_d)
        if denom <= 0.0 or not np.isfinite(denom):
            return 0.0
        return 1.0 / denom

    # ------------------------------------------------------------------ #
    # Bound tightening (domain propagation)
    # ------------------------------------------------------------------ #
    def static_weight_bounds(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-dimension bounds implied by the single-variable Eq. 18 rows.

        Every per-feature overflow constraint involves exactly one ``w_m``,
        so each linearized row ``c * w_m <= hi`` / ``>= lo`` clips that
        dimension's interval directly.  The result (intersected with the
        Eq. 28 range) is computed once and reused by the root box and by
        node-level propagation — a free, exact domain reduction.
        """
        m = self.num_features
        lo = np.full(m, self.value_lo)
        hi = np.full(m, self.value_hi)
        beta = self.beta
        for cls in (self.stats.class_a, self.stats.class_b):
            for i in range(m):
                for coeff in (
                    cls.mean[i] + beta * cls.std[i],
                    cls.mean[i] - beta * cls.std[i],
                ):
                    if coeff > 1e-300:
                        hi[i] = min(hi[i], self.value_hi / coeff)
                        lo[i] = max(lo[i], self.value_lo / coeff)
                    elif coeff < -1e-300:
                        hi[i] = min(hi[i], self.value_lo / coeff)
                        lo[i] = max(lo[i], self.value_hi / coeff)
                    # coeff == 0: the row is vacuous (0 <= hi always holds)
        return lo, hi

    def propagate_t_interval(
        self,
        w_lo: np.ndarray,
        w_hi: np.ndarray,
        t_lo: float,
        t_hi: float,
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        """Tighten per-dimension ``w`` bounds using ``t = d'w in [t_lo, t_hi]``.

        One pass of interval (feasibility-based) propagation: for each
        dimension, the other dimensions' extreme contributions bound what
        ``d_i w_i`` must supply.  Returns ``None`` when the tightened box is
        empty (the node is infeasible).
        """
        d = self.stats.mean_difference
        lo = w_lo.copy()
        hi = w_hi.copy()
        contrib_lo = np.minimum(d * lo, d * hi)
        contrib_hi = np.maximum(d * lo, d * hi)
        total_lo = float(np.sum(contrib_lo))
        total_hi = float(np.sum(contrib_hi))
        for i in range(d.size):
            di = d[i]
            if di == 0.0:
                continue
            other_lo = total_lo - contrib_lo[i]
            other_hi = total_hi - contrib_hi[i]
            needed_lo = t_lo - other_hi  # least d_i w_i can be
            needed_hi = t_hi - other_lo  # most d_i w_i can be
            if di > 0:
                new_lo, new_hi = needed_lo / di, needed_hi / di
            else:
                new_lo, new_hi = needed_hi / di, needed_lo / di
            lo[i] = max(lo[i], new_lo)
            hi[i] = min(hi[i], new_hi)
            if lo[i] > hi[i] + 1e-15:
                return None
        return lo, hi

    # ------------------------------------------------------------------ #
    # Presolve and symmetry-cut factories
    # ------------------------------------------------------------------ #
    def presolver(self, max_rounds: int = 3) -> Presolver:
        """Build the node presolver from the static constraint structure.

        The linear rows are the single-variable Eq. 18 expansions (the same
        rows :meth:`overflow_rows` emits) plus axis outer-approximations of
        the Eq. 20 cones: ``c'w + beta ||L'w|| <= b`` implies
        ``(c ± beta L[:, k])' w <= b`` for every column ``k`` (project the
        norm onto ``±e_k``).  Those couple the features, which is what lets
        FBBT tighten one weight from the others' intervals.  The incumbent
        ellipsoid pass gets ``diag(S_W^-1)`` when the scatter is invertible.
        """
        m = self.num_features
        beta = self.beta
        rows_a: List[np.ndarray] = []
        rows_b: List[float] = []
        hi, lo = self.value_hi, self.value_lo
        for cls in (self.stats.class_a, self.stats.class_b):
            for coeffs in (cls.mean + beta * cls.std, cls.mean - beta * cls.std):
                for i in range(m):
                    unit = np.zeros(m)
                    unit[i] = coeffs[i]
                    rows_a.append(unit)
                    rows_b.append(hi)
                    rows_a.append(-unit)
                    rows_b.append(-lo)
        for cls, chol in (
            (self.stats.class_a, self._chol_a),
            (self.stats.class_b, self._chol_b),
        ):
            for k in range(m):
                col = beta * chol[:, k]
                for sign in (1.0, -1.0):
                    rows_a.append(cls.mean + sign * col)
                    rows_b.append(hi)
                    rows_a.append(-cls.mean + sign * col)
                    rows_b.append(-lo)
        obj_inv_diag: "np.ndarray | None" = None
        try:
            inverse = np.linalg.inv(self.stats.within_scatter)
            diag = np.diag(inverse).copy()
            if np.all(np.isfinite(diag)) and np.all(diag > 0):
                obj_inv_diag = diag
        except np.linalg.LinAlgError:
            obj_inv_diag = None
        scatter = self.stats.within_scatter
        obj_matrix = scatter.copy() if np.all(np.isfinite(scatter)) else None
        return Presolver(
            rows_a=np.asarray(rows_a, dtype=np.float64),
            rows_b=np.asarray(rows_b, dtype=np.float64),
            d=self.stats.mean_difference.copy(),
            steps=np.full(m, self.fmt.resolution),
            obj_inv_diag=obj_inv_diag,
            obj_matrix=obj_matrix,
            max_rounds=max_rounds,
        )

    def obbt_weight_bounds(
        self, w_lo: np.ndarray, w_hi: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Optimization-based bound tightening of the weight box.

        Minimizes and maximizes each ``w_i`` over the *exact* Eq. 18 +
        Eq. 20 relaxation (all constraints jointly, no grid, no objective)
        — strictly stronger than row-at-a-time FBBT, which only sees the
        axis outer-approximations of the cones.  SLSQP returns a
        feasible-point value rather than a dual certificate, so each bound
        is relaxed by the same conservative slack the node bounds use
        before being applied; a failed solve leaves that bound untouched.
        Intended to run once at the root (2m cone solves).
        """
        from ..optim.slsqp_backend import solve_with_slsqp

        m = self.num_features
        rows = self.overflow_rows()
        socs = self.projection_socs()
        lo = np.asarray(w_lo, dtype=np.float64).copy()
        hi = np.asarray(w_hi, dtype=np.float64).copy()
        for dim in range(m):
            for sign in (1.0, -1.0):
                q = np.zeros(m)
                q[dim] = sign
                program = ConeProgram(
                    P=np.zeros((m, m)),
                    q=q,
                    r=0.0,
                    linear=rows,
                    socs=socs,
                    lower=lo.copy(),
                    upper=hi.copy(),
                )
                result = solve_with_slsqp(program)
                if not (result.success and result.max_violation <= 1e-7):
                    continue
                slack = 1e-9 + 1e-6 * abs(result.objective)
                if sign > 0:
                    lo[dim] = max(lo[dim], result.objective - slack)
                else:
                    hi[dim] = min(hi[dim], -result.objective + slack)
        return lo, hi

    def reflection_cut(self) -> ReflectionCut:
        """Build the ``w -> -w`` symmetry cut for this instance.

        ``single_coeffs`` are the four Eq. 18 lower-expression slopes per
        feature (two classes x two absolute-value branches); the SOC data
        is one ``(mean, Cholesky)`` pair per class.  See
        :mod:`repro.optim.cuts` for the soundness conditions.
        """
        beta = self.beta
        coeff_rows = []
        for cls in (self.stats.class_a, self.stats.class_b):
            coeff_rows.append(cls.mean + beta * cls.std)
            coeff_rows.append(cls.mean - beta * cls.std)
        return ReflectionCut(
            single_coeffs=np.vstack(coeff_rows),
            soc_centers=np.vstack(
                [self.stats.class_a.mean, self.stats.class_b.mean]
            ),
            soc_chols=np.stack([self._chol_a, self._chol_b]),
            beta=beta,
            value_hi=self.value_hi,
        )

    # ------------------------------------------------------------------ #
    # Root box (Eq. 28-29)
    # ------------------------------------------------------------------ #
    def root_box(self) -> Box:
        """Initial ``(w, t)`` box.

        The ``w`` range is Eq. 28.  For ``t`` we use the *exact* image of
        the ``w`` box under ``t = (mu_A - mu_B)' w`` (interval arithmetic)
        rather than the paper's Eq. 29, whose upper limit
        ``(2^(K-1) - 2^-F) ||mu_A - mu_B||_1`` is loose by one LSB per
        negative-coefficient feature and — more importantly — whose lower
        limit can be slack; the exact image is both correct and tighter.
        """
        w_lo, w_hi = self.static_weight_bounds()
        t_lo, t_hi = self.linear_image(w_lo, w_hi)
        m = self.num_features
        lo = np.concatenate([w_lo, [t_lo]])
        hi = np.concatenate([w_hi, [t_hi]])
        steps = np.concatenate([np.full(m, self.fmt.resolution), [0.0]])
        return Box(lo=lo, hi=hi, steps=steps)

    def linear_image(self, w_lo: np.ndarray, w_hi: np.ndarray) -> "tuple[float, float]":
        """Exact interval image of ``(mu_A - mu_B)' w`` over a ``w`` box."""
        d = self.stats.mean_difference
        low = float(np.sum(np.minimum(d * w_lo, d * w_hi)))
        high = float(np.sum(np.maximum(d * w_lo, d * w_hi)))
        return low, high

    # ------------------------------------------------------------------ #
    # Relaxation (Eq. 25)
    # ------------------------------------------------------------------ #
    def overflow_rows(self) -> List[LinearInequality]:
        """Eq. 18 expanded into linear rows (8 per feature; see module docs)."""
        rows: List[LinearInequality] = []
        m = self.num_features
        beta = self.beta
        lo, hi = self.value_lo, self.value_hi
        for cls_name, cls in (("A", self.stats.class_a), ("B", self.stats.class_b)):
            mu, sigma = cls.mean, cls.std
            for i in range(m):
                plus = mu[i] + beta * sigma[i]
                minus = mu[i] - beta * sigma[i]
                for coeff, tag in ((plus, "+"), (minus, "-")):
                    unit = np.zeros(m)
                    unit[i] = coeff
                    rows.append(
                        LinearInequality(unit.copy(), hi, f"prod{cls_name}{tag}_hi[{i}]")
                    )
                    rows.append(
                        LinearInequality(-unit, -lo, f"prod{cls_name}{tag}_lo[{i}]")
                    )
        return rows

    def projection_socs(self) -> List[SocConstraint]:
        """Eq. 20 as four second-order cone constraints."""
        socs: List[SocConstraint] = []
        m = self.num_features
        beta = self.beta
        lo, hi = self.value_lo, self.value_hi
        for name, cls, chol in (
            ("A", self.stats.class_a, self._chol_a),
            ("B", self.stats.class_b, self._chol_b),
        ):
            G = beta * chol.T
            h = np.zeros(m)
            socs.append(SocConstraint(G, h, -cls.mean, hi, f"proj{name}_hi"))
            socs.append(SocConstraint(G, h, cls.mean.copy(), -lo, f"proj{name}_lo"))
        return socs

    def node_program(self, box: Box, eta: float) -> ConeProgram:
        """The Eq. 25 cone program for a node box with a fixed ``eta``.

        The auxiliary ``t`` is eliminated: its defining equation
        ``t = (mu_A - mu_B)' w`` turns the node's ``t`` interval into two
        linear rows on ``w``, and ``eta`` (already computed from that
        interval by the caller) scales the objective.
        """
        if eta <= 0.0:
            raise OptimizationError(f"eta must be > 0, got {eta}")
        m = self.num_features
        if box.ndim != m + 1:
            raise OptimizationError(
                f"box has {box.ndim} dims, expected {m + 1} (w plus t)"
            )
        rows = self.overflow_rows()
        d = self.stats.mean_difference
        t_lo, t_hi = float(box.lo[m]), float(box.hi[m])
        rows.append(LinearInequality(d.copy(), t_hi, "t_hi"))
        rows.append(LinearInequality(-d, -t_lo, "t_lo"))
        return ConeProgram(
            P=(2.0 / eta) * self.stats.within_scatter,
            q=np.zeros(m),
            r=0.0,
            linear=rows,
            socs=self.projection_socs(),
            lower=box.lo[:m].copy(),
            upper=box.hi[:m].copy(),
        )
