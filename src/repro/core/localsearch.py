"""Discrete local search over the ``QK.F`` grid.

Part of the "additional heuristics" layer (paper Section 4 mentions
speed-up heuristics without detail).  Two roles:

1. **Polish**: coordinate-descent on the exact Eq. 21 cost starting from a
   feasible grid point (typically a rounded relaxation solution), moving one
   coordinate at a time within a small window of grid steps, accepting the
   best feasible improving move until a local optimum.  This is what makes
   large-``M`` (BCI) runs productive under a node budget.
2. **Scale sweep**: the continuous cost (Eq. 10) is scale-invariant but the
   grid is not — ``round(lambda * w)`` for different ``lambda`` yields very
   different discrete costs.  ``scale_sweep_candidates`` scans a ladder of
   scales that place the largest weight at every usable magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fixedpoint.quantize import nearest_grid_neighbors, quantize
from .problem import LdaFpProblem

__all__ = ["LocalSearchResult", "coordinate_descent", "scale_sweep_candidates"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a coordinate-descent polish."""

    weights: np.ndarray
    cost: float
    moves_accepted: int
    converged: bool


def coordinate_descent(
    problem: LdaFpProblem,
    start: np.ndarray,
    radius: int = 2,
    max_sweeps: int = 25,
) -> LocalSearchResult:
    """Exact-cost coordinate descent from a feasible grid point.

    Parameters
    ----------
    problem:
        The LDA-FP instance (provides cost + exact feasibility).
    start:
        Feasible grid starting point.
    radius:
        Moves considered per coordinate: grid values within ``radius``
        quanta of the current value.
    max_sweeps:
        Sweep budget; ``converged`` is False if it runs out first.
    """
    w = np.asarray(quantize(np.asarray(start, dtype=np.float64), problem.fmt))
    best_cost = problem.cost(w)
    moves = 0
    converged = False
    for _ in range(max_sweeps):
        improved = False
        for i in range(w.size):
            candidates = nearest_grid_neighbors(float(w[i]), problem.fmt, radius=radius)
            best_move = None
            for value in candidates:
                if value == w[i]:
                    continue
                trial = w.copy()
                trial[i] = value
                if problem.constraint_violation(trial) > 1e-9:
                    continue
                cost = problem.cost(trial)
                if cost < best_cost - 1e-15 and (
                    best_move is None or cost < best_move[0]
                ):
                    best_move = (cost, value)
            if best_move is not None:
                best_cost, w[i] = best_move[0], best_move[1]
                moves += 1
                improved = True
        if not improved:
            converged = True
            break
    return LocalSearchResult(weights=w, cost=best_cost, moves_accepted=moves, converged=converged)


def scale_sweep_candidates(
    problem: LdaFpProblem,
    direction: np.ndarray,
    num_scales: int = 24,
    refine: bool = True,
) -> "list[np.ndarray]":
    """Grid roundings of ``lambda * direction`` over a ladder of scales.

    The continuous cost (Eq. 10) is invariant to ``lambda`` but the rounded
    cost is not, so the ladder runs from "largest element at one quantum" up
    to "largest element at the top of the range", geometrically spaced, in
    both signs.  With ``refine``, a second, finer ladder is placed around
    the coarse ladder's best feasible scale — this is what lets the rounded
    conventional solution reach the continuous optimum at large word
    lengths (paper Table 1, 14-16 bit rows).  The all-zero rounding is
    dropped; infeasible candidates are kept for the caller to filter (they
    are cheap to test).
    """
    d = np.asarray(direction, dtype=np.float64)
    peak = float(np.max(np.abs(d)))
    if peak == 0.0 or not np.isfinite(peak):
        return []
    fmt = problem.fmt
    lo_scale = fmt.resolution / peak
    hi_scale = fmt.max_value / peak
    if hi_scale <= lo_scale:
        scales = [hi_scale]
    else:
        scales = list(np.geomspace(lo_scale, hi_scale, num=num_scales))

    out: "list[np.ndarray]" = []
    seen: "set[bytes]" = set()

    def add(scale: float) -> "tuple[float, np.ndarray] | None":
        best_here = None
        for sign in (1.0, -1.0):
            candidate = np.asarray(quantize(sign * scale * d, fmt))
            if not np.any(candidate):
                continue
            key = candidate.tobytes()
            if key in seen:
                continue
            seen.add(key)
            out.append(candidate)
            if problem.constraint_violation(candidate) <= 1e-9:
                cost = problem.cost(candidate)
                if np.isfinite(cost) and (best_here is None or cost < best_here[0]):
                    best_here = (cost, candidate)
        return best_here

    best_scale = None
    best_cost = np.inf
    for scale in scales:
        result = add(float(scale))
        if result is not None and result[0] < best_cost:
            best_cost, best_scale = result[0], float(scale)

    if refine and best_scale is not None:
        for scale in np.linspace(best_scale / 1.4, min(best_scale * 1.4, hi_scale), 24):
            add(float(scale))
    return out
