"""Conventional linear discriminant analysis (paper Section 2, Eq. 11-12).

The baseline the paper compares against: solve ``S_W w = mu_A - mu_B``
(Eq. 11) in floating point, normalize ``w`` to unit length, then round to
the ``QK.F`` grid.  ``weight_scale="grid-max"`` additionally rescales the
unit vector so its largest element lands near the top of the representable
range before rounding — a *stronger* baseline than the paper's plain
normalize-and-round, included so our comparison cannot be accused of using
a strawman (the ablation bench reports both).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InputValidationError, TrainingError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.quantize import quantize
from ..fixedpoint.rounding import RoundingMode
from ..linalg.cholesky import solve_spd
from ..linalg.shrinkage import shrink_covariance
from ..data.dataset import Dataset
from ..stats.scatter import TwoClassStats, estimate_two_class_stats
from .classifier import FixedPointLinearClassifier

__all__ = ["LdaModel", "fit_lda", "quantize_lda"]


@dataclass(frozen=True)
class LdaModel:
    """Floating-point LDA solution plus the statistics it was fit on.

    Attributes
    ----------
    weights:
        Unit-norm weight vector (Eq. 11, normalized).
    threshold:
        ``w' (mu_A + mu_B) / 2`` (Eq. 12).
    stats:
        The two-class statistics used for the fit.
    """

    weights: np.ndarray
    threshold: float
    stats: TwoClassStats

    def decision_values(self, features: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        return x @ self.weights - self.threshold

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Float (infinite-precision) predictions — the paper's software LDA."""
        return (self.decision_values(features) >= 0.0).astype(np.int64)

    def fisher_cost(self) -> float:
        """Eq. 10 cost of the float solution."""
        return self.stats.fisher_cost(self.weights)


def fit_lda(
    dataset: Dataset,
    shrinkage: float = 0.0,
    jitter: float = 1e-10,
) -> LdaModel:
    """Fit conventional LDA by the closed form ``w ~ S_W^-1 (mu_A - mu_B)``.

    Parameters
    ----------
    dataset:
        Two-class training data (class A = label 1).
    shrinkage:
        Within-scatter shrinkage intensity toward the scaled identity —
        required in the small-sample BCI regime where ``S_W`` is singular.
    jitter:
        Tiny diagonal regularization applied inside the SPD solve as a
        last-resort numerical guard.
    """
    stats = estimate_two_class_stats(dataset.class_a, dataset.class_b)
    within = stats.within_scatter
    if shrinkage > 0.0:
        within = shrink_covariance(within, shrinkage).covariance
    try:
        weights = solve_spd(within, stats.mean_difference, jitter=jitter)
    except Exception as exc:
        raise TrainingError(
            f"LDA solve failed ({exc}); increase shrinkage for ill-conditioned data"
        ) from exc
    norm = float(np.linalg.norm(weights))
    if norm == 0.0 or not np.isfinite(norm):
        raise TrainingError("LDA produced a zero/non-finite weight vector")
    weights = weights / norm
    threshold = float(weights @ stats.midpoint)
    return LdaModel(weights=weights, threshold=threshold, stats=stats)


def quantize_lda(
    model: LdaModel,
    fmt: QFormat,
    rounding: "RoundingMode | str" = RoundingMode.NEAREST_AWAY,
    weight_scale: str = "unit",
) -> FixedPointLinearClassifier:
    """Round a float LDA model to ``QK.F`` — the paper's conventional flow.

    Parameters
    ----------
    model:
        The floating-point LDA fit.
    fmt:
        Target format for weights and threshold.
    rounding:
        Rounding mode for the grid snap.
    weight_scale:
        ``"unit"`` rounds the unit-norm vector directly (the paper's
        baseline).  ``"grid-max"`` first rescales so ``max|w_m|`` sits at
        90% of the format's positive range, spending the full dynamic range
        before rounding (stronger baseline; scale-invariance of Eq. 10
        makes this legitimate for the float model).
    """
    weights = np.asarray(model.weights, dtype=np.float64)
    threshold = float(model.threshold)
    if weight_scale == "grid-max":
        peak = float(np.max(np.abs(weights)))
        if peak > 0.0:
            gain = 0.9 * fmt.max_value / peak
            weights = weights * gain
            threshold = threshold * gain
    elif weight_scale != "unit":
        raise InputValidationError(f"unknown weight_scale {weight_scale!r}")
    q_weights = np.asarray(quantize(weights, fmt, rounding=rounding))
    return FixedPointLinearClassifier(
        weights=q_weights,
        threshold=threshold,  # classifier quantizes the threshold itself
        fmt=fmt,
        rounding=RoundingMode.coerce(rounding),
    )
