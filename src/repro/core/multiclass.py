"""One-vs-rest multiclass extension of the fixed-point classifier.

The paper treats binary classification only; real BCI decoders often need
more directions (left/right/up/down).  The standard reduction — one binary
classifier per class, decided by the largest decision value — carries over
to fixed point directly: each per-class classifier is trained with LDA-FP
in the shared ``QK.F`` format, and the argmax comparison is exact integer
comparison of the per-classifier projections.

This is a library extension (clearly beyond the paper's evaluation); it
reuses the binary trainer unchanged and is exercised by its own tests and
example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import DataError, TrainingError
from ..fixedpoint.qformat import QFormat
from ..data.dataset import Dataset
from .classifier import FixedPointLinearClassifier
from .ldafp import LdaFpConfig, LdaFpReport, train_lda_fp

__all__ = ["MulticlassFixedPointClassifier", "train_one_vs_rest"]


@dataclass(frozen=True)
class MulticlassFixedPointClassifier:
    """One binary fixed-point classifier per class, decided by argmax.

    Attributes
    ----------
    classes:
        The class labels, in the order of ``classifiers``.
    classifiers:
        One :class:`FixedPointLinearClassifier` per class (that class as
        label-1 "A" against the rest).
    """

    classes: "tuple[int, ...]"
    classifiers: "tuple[FixedPointLinearClassifier, ...]"

    def __post_init__(self) -> None:
        if len(self.classes) != len(self.classifiers):
            raise TrainingError("classes and classifiers length mismatch")
        if len(self.classes) < 2:
            raise TrainingError("need at least 2 classes")

    @property
    def num_features(self) -> int:
        return self.classifiers[0].num_features

    def decision_matrix(self, features: np.ndarray) -> np.ndarray:
        """``(N, C)`` matrix of polarity-corrected decision values."""
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        columns = [
            clf.polarity * clf.decision_values(x) for clf in self.classifiers
        ]
        return np.column_stack(columns)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class labels (argmax of decision values)."""
        scores = self.decision_matrix(features)
        return np.asarray(self.classes)[np.argmax(scores, axis=1)]

    def error_on(self, features: np.ndarray, labels: np.ndarray) -> float:
        predictions = self.predict(features)
        return float(np.mean(predictions != np.asarray(labels)))


def train_one_vs_rest(
    features: np.ndarray,
    labels: np.ndarray,
    fmt: QFormat,
    config: "LdaFpConfig | None" = None,
) -> "tuple[MulticlassFixedPointClassifier, Dict[int, LdaFpReport]]":
    """Train one LDA-FP classifier per class against the rest.

    Parameters
    ----------
    features:
        ``(N, M)`` feature rows (already scaled to the format's range).
    labels:
        ``(N,)`` integer class labels (any values, >= 2 distinct).
    fmt:
        Shared ``QK.F`` format for every per-class classifier.
    config:
        LDA-FP configuration shared by all binary subproblems.

    Returns
    -------
    (classifier, reports)
        The multiclass classifier plus the per-class training reports.
    """
    x = np.asarray(features, dtype=np.float64)
    y = np.asarray(labels)
    if x.ndim != 2 or y.shape != (x.shape[0],):
        raise DataError(
            f"features {x.shape} and labels {y.shape} are inconsistent"
        )
    classes = tuple(int(c) for c in np.unique(y))
    if len(classes) < 2:
        raise DataError("need at least 2 classes")

    config = config or LdaFpConfig()
    classifiers: List[FixedPointLinearClassifier] = []
    reports: Dict[int, LdaFpReport] = {}
    for cls in classes:
        binary = Dataset(
            features=x, labels=(y == cls).astype(np.int64), name=f"ovr-{cls}"
        )
        classifier, report = train_lda_fp(binary, fmt, config)
        classifiers.append(classifier)
        reports[cls] = report
    return (
        MulticlassFixedPointClassifier(
            classes=classes, classifiers=tuple(classifiers)
        ),
        reports,
    )
