"""LDA-FP training: Algorithm 1 (branch-and-bound) plus the heuristic layer.

:class:`LdaFpNodeProblem` adapts an :class:`LdaFpProblem` to the generic
:class:`~repro.optim.bnb.BranchAndBoundSolver`:

- **relax** builds the Eq. 25 cone program with ``eta = sup t^2`` (Eq. 26)
  and solves it with the barrier solver (SLSQP fallback).  The node's lower
  bound is the relaxation optimum minus the solver's duality gap.  Cheap
  interval arithmetic prunes nodes whose ``t`` interval cannot be realized
  by any ``w`` in the box.
- **candidates** implements the Eq. 27 upper-bound rule: round the
  relaxation solution to the grid, plus the scale-sweep and (optionally)
  coordinate-descent heuristics from :mod:`repro.core.localsearch`.
- **branch** bisects the dimension with the largest width relative to its
  root width, grid-aligned for ``w`` dimensions (Algorithm 1 step 4).
- **terminal** boxes (small enough to enumerate) are resolved exactly.

:func:`train_lda_fp` is the user-facing entry point: it wires the problem,
warm-starts the incumbent from rounded conventional LDA (another of the
paper's undisclosed-heuristics slots), runs the search, and returns a
:class:`~repro.core.classifier.FixedPointLinearClassifier` plus a training
report.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..errors import InfeasibleProblemError, InputValidationError, TrainingError
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.quantize import quantize
from ..fixedpoint.rounding import RoundingMode
from ..optim.barrier import BarrierSolver
from ..optim.bnb import (
    BranchAndBoundConfig,
    BranchAndBoundResult,
    BranchAndBoundSolver,
    BranchAndBoundStats,
    Candidate,
    Relaxation,
)
from ..optim.boxes import Box
from ..optim.slsqp_backend import solve_with_slsqp
from ..optim.trace import SolverTrace
from ..data.dataset import Dataset
from ..stats.scatter import estimate_two_class_stats
from .classifier import FixedPointLinearClassifier
from .lda import fit_lda
from .localsearch import coordinate_descent, scale_sweep_candidates
from .problem import LdaFpProblem, eta_inf, eta_sup

__all__ = ["LdaFpConfig", "LdaFpReport", "LdaFpNodeProblem", "train_lda_fp"]

_FEAS_TOL = 1e-9


@dataclass(frozen=True)
class LdaFpConfig:
    """Knobs of the LDA-FP trainer.

    Attributes
    ----------
    rho:
        Overflow confidence level (Eq. 16).
    beta:
        Explicit ``beta`` overriding ``rho``.
    backend:
        ``"slsqp"`` (scipy, fast — the default inside ``"auto"``),
        ``"barrier"`` (from-scratch interior point with a duality-gap
        certificate), or ``"auto"`` (SLSQP per node, barrier retry when
        SLSQP fails to converge or reports infeasibility).  The ablation
        bench compares the two backends node for node.
    max_nodes, time_limit:
        Branch-and-bound budgets.
    local_search:
        Run coordinate-descent polish on new incumbents.
    local_search_radius:
        Window (in quanta) of each coordinate-descent move.
    scale_sweep:
        Try grid roundings of the relaxation direction at many scales.
    terminal_enumeration_cap:
        A box is terminal when the product of per-dimension grid counts is
        at most this (then it is enumerated exactly).
    shrinkage:
        Within/class covariance shrinkage applied to the statistics before
        building the problem (BCI regime).
    quantization_noise_floor:
        Add the pseudo-quantization-noise variance ``LSB^2 / 12`` to every
        covariance diagonal.  Without it, two features that quantize to
        identical columns create a spurious zero-within-variance direction
        whose Fisher cost is ~0 on the training set but which classifies at
        chance on deployment (the projection is constantly zero).  The PQN
        floor is the standard fixed-point-DSP noise model and is ablated in
        ``benchmarks/test_ablations.py``.
    warm_start:
        Seed the incumbent with rounded conventional LDA.
    workers:
        Frontier nodes expanded concurrently per branch-and-bound round
        (``1`` = serial).  The parallel merge replays the serial pruning
        logic, so results match the serial driver.
    executor:
        Parallel executor: ``"process"``, ``"thread"``, or ``"auto"``
        (process pool when the problem pickles).  The resolved mode and any
        fallback reason land in :class:`LdaFpReport`.
    presolve:
        Run the MIP-style node presolve (FBBT over the Eq. 18/20 rows,
        grid snapping, incumbent ellipsoid reduction) in place of the plain
        ``t``-link propagation.  Exact: never excludes a point at least as
        good as the incumbent snapshot it is given.
    symmetry_cuts:
        Prune negative-``t`` boxes whose feasible points provably have
        feasible equal-cost mirrors in the searched region (the Eq. 21 cost
        is invariant under ``w -> -w``); see :mod:`repro.optim.cuts` for
        why the two's-complement asymmetry makes this a proof obligation
        rather than a free halving.
    branching:
        ``"problem"`` (the width-relative-to-root rule) or ``"pseudocost"``
        (per-dimension degradation averages in the driver, falling back to
        the problem rule until initialized).
    """

    rho: float = 0.99
    beta: Optional[float] = None
    backend: str = "auto"
    max_nodes: int = 20_000
    time_limit: Optional[float] = None
    absolute_gap: float = 1e-9
    relative_gap: float = 1e-4
    local_search: bool = True
    local_search_radius: int = 2
    scale_sweep: bool = True
    terminal_enumeration_cap: int = 256
    shrinkage: float = 0.0
    quantization_noise_floor: bool = True
    bound_propagation: bool = True
    search_strategy: str = "best-first"
    warm_start: bool = True
    rounding: RoundingMode = RoundingMode.NEAREST_AWAY
    workers: int = 1
    executor: str = "auto"
    presolve: bool = True
    symmetry_cuts: bool = True
    branching: str = "problem"

    def __post_init__(self) -> None:
        if self.backend not in ("barrier", "slsqp", "auto"):
            raise InputValidationError(f"unknown backend {self.backend!r}")
        if self.workers < 1:
            raise InputValidationError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in ("auto", "thread", "process"):
            raise InputValidationError(f"unknown executor {self.executor!r}")
        if self.branching not in ("problem", "pseudocost"):
            raise InputValidationError(f"unknown branching {self.branching!r}")


@dataclass
class LdaFpReport:
    """What happened during one LDA-FP training run."""

    cost: float
    lower_bound: float
    proven_optimal: bool
    nodes_expanded: int
    nodes_pruned: int
    nodes_infeasible: int
    incumbent_updates: int
    train_seconds: float
    relaxations_solved: int
    backend_fallbacks: int
    stop_reason: str = "exhausted"
    seeds_injected: int = 0
    seeds_rejected: int = 0
    seeds_adopted: int = 0
    executor: str = "serial"
    executor_fallback: str = ""
    symmetry_pruned: int = 0


class LdaFpNodeProblem:
    """Adapter exposing :class:`LdaFpProblem` to the generic B&B driver.

    The adapter is picklable, so ``executor="auto"`` resolves to a
    *process* pool.  Every incumbent-dependent decision inside a relaxation
    (the analytic skip, the presolve ellipsoid reduction) is driven by the
    incumbent snapshot the driver recorded when the node was pushed
    (``relax_child_with_incumbent``), never by the adapter's own
    ``_best_cost`` — a process worker's copy of that field is stale, and
    using it would make worker relaxations diverge from the serial ones.
    Warm-start hints flow through the parent's relaxation solution instead
    of mutable instance state, so concurrent child relaxations cannot race
    on them either.  ``candidates`` (which *does* read and advance the
    shared heuristic state) runs only on the driver side, at merge sequence
    points that are identical across executor modes.
    """

    def __init__(self, problem: LdaFpProblem, config: LdaFpConfig) -> None:
        self.problem = problem
        self.config = config
        self.relaxations_solved = 0
        self.backend_fallbacks = 0
        self.symmetry_pruned = 0
        self._root = problem.root_box()
        self._root_widths = np.maximum(self._root.widths, 1e-300)
        self._barrier = BarrierSolver(gap_tol=1e-10)
        self._seen_candidates: "set[bytes]" = set()
        self._best_cost = np.inf  # best candidate cost seen (gates polishing)
        self._presolver = problem.presolver() if config.presolve else None
        self._cut = problem.reflection_cut() if config.symmetry_cuts else None
        # Global continuous bound, deflated by a hair so floating-point error
        # in the ill-conditioned SPD solve cannot make it invalid.
        self._cost_star = problem.continuous_optimum() * (1.0 - 1e-7)

    # ------------------------------------------------------------------ #
    def initial_box(self) -> Box:
        """The searched root: the Eq. 28-29 box, presolve-tightened.

        Root presolve runs against the warm-start incumbent (set by the
        trainer before the solve), in the driver process, exactly once —
        so it is identical across executor modes.  A presolve-infeasible
        verdict at the root would contradict the validated incumbent, so
        it is treated as a numerical artifact and the plain root is kept.
        """
        root = self._root
        m = self.problem.num_features
        if self._presolver is not None:
            reduced = self._presolver.presolve(
                root.lo[:m],
                root.hi[:m],
                float(root.lo[m]),
                float(root.hi[m]),
                incumbent=self._best_cost,
            )
            if reduced.feasible:
                # OBBT over the exact cone relaxation, then one more
                # presolve pass to grid-snap the tightened bounds and
                # re-intersect the t link.
                obbt_lo, obbt_hi = self.problem.obbt_weight_bounds(
                    reduced.w_lo, reduced.w_hi
                )
                snapped = self._presolver.presolve(
                    obbt_lo,
                    obbt_hi,
                    reduced.t_lo,
                    reduced.t_hi,
                    incumbent=self._best_cost,
                )
                if snapped.feasible:
                    reduced = snapped
                root = Box(
                    lo=np.concatenate([reduced.w_lo, [reduced.t_lo]]),
                    hi=np.concatenate([reduced.w_hi, [reduced.t_hi]]),
                    steps=root.steps,
                )
        self._root_widths = np.maximum(root.widths, 1e-300)
        return root

    # ------------------------------------------------------------------ #
    def relax(self, box: Box) -> Relaxation:
        # Root relaxation: runs on the driver before any parallelism, so the
        # live incumbent cost is the correct (and deterministic) snapshot.
        return self._relax(box, hint=None, ctx=self._best_cost)

    def relax_child(self, box: Box, parent_relaxation: Relaxation) -> Relaxation:
        return self._relax(box, hint=parent_relaxation.solution, ctx=self._best_cost)

    def relax_child_with_incumbent(
        self, box: Box, parent_relaxation: Relaxation, incumbent: float
    ) -> Relaxation:
        return self._relax(box, hint=parent_relaxation.solution, ctx=float(incumbent))

    def _relax(self, box: Box, hint: "np.ndarray | None", ctx: float) -> Relaxation:
        m = self.problem.num_features
        t_lo, t_hi = float(box.lo[m]), float(box.hi[m])
        w_lo, w_hi = box.lo[:m].copy(), box.hi[:m].copy()
        if self._presolver is not None:
            # MIP-style presolve: t-link FBBT over the Eq. 18/20 rows, grid
            # snapping, and the incumbent ellipsoid reduction — against the
            # push-time incumbent snapshot, for executor determinism.
            reduced = self._presolver.presolve(w_lo, w_hi, t_lo, t_hi, incumbent=ctx)
            if not reduced.feasible:
                return Relaxation(lower_bound=np.inf)
            w_lo, w_hi = reduced.w_lo, reduced.w_hi
            t_lo, t_hi = reduced.t_lo, reduced.t_hi
        else:
            # Cheap interval pruning: the node's t interval must intersect
            # the image of its w box under the linear map.
            image_lo, image_hi = self.problem.linear_image(w_lo, w_hi)
            t_lo, t_hi = max(t_lo, image_lo), min(t_hi, image_hi)
            if t_hi < t_lo:
                return Relaxation(lower_bound=np.inf)
            if self.config.bound_propagation:
                tightened = self.problem.propagate_t_interval(w_lo, w_hi, t_lo, t_hi)
                if tightened is None:
                    return Relaxation(lower_bound=np.inf)
                w_lo, w_hi = tightened
        eta = eta_sup(t_lo, t_hi)
        if eta <= 0.0:
            return Relaxation(lower_bound=np.inf)  # t pinned to 0: cost undefined
        # Any w dimension with no grid point inside cannot hold a discrete
        # solution (tightening or odd splits can produce this).
        node_box = Box(
            lo=np.concatenate([w_lo, [t_lo]]),
            hi=np.concatenate([w_hi, [t_hi]]),
            steps=box.steps,
        )
        for dim in range(m):
            if node_box.grid_count(dim) == 0:
                return Relaxation(lower_bound=np.inf)
        # Symmetry cut, on the *tightened* box (presolve only removed points
        # that are infeasible or worse than the incumbent snapshot, which
        # need no mirror): a proven-covered box is discarded outright — its
        # surviving points all have feasible equal-cost mirrors on the kept
        # side.  Pure function of the box, identical in every worker.
        if self._cut is not None and self._cut.covered(node_box):
            self.symmetry_pruned += 1
            return Relaxation(lower_bound=np.inf)
        # Analytic pre-bound: min w'S_W w given d'w = s is s^2 * cost_star,
        # so the node cost is at least (inf s^2) * cost_star / (sup s^2).
        # When this alone beats the incumbent snapshot, skip the cone solve
        # entirely.  Every discrete point anywhere costs at least the
        # continuous optimum, so cost_star lifts all node bounds (including
        # the otherwise-zero bound of origin-containing nodes).
        analytic = max(
            eta_inf(t_lo, t_hi) * self._cost_star / eta, self._cost_star
        )
        if analytic >= ctx:
            return Relaxation(lower_bound=analytic, solution=None)

        program = self.problem.node_program(node_box, eta)
        self.relaxations_solved += 1
        backend = self.config.backend
        if backend == "barrier":
            return self._relax_barrier(program, analytic, hint, allow_fallback=False)
        # SLSQP primary path (fast); barrier verifies failures under "auto".
        result = solve_with_slsqp(program, x0=hint)
        if result.success and result.max_violation <= 1e-7:
            # SLSQP gives no duality certificate; subtract a safety margin so
            # the bound stays conservative.
            slack = 1e-9 + 1e-6 * abs(result.objective)
            return Relaxation(
                lower_bound=max(result.objective - slack, analytic),
                solution=result.x,
            )
        if backend == "slsqp":
            if result.max_violation > 1e-6:
                return Relaxation(lower_bound=np.inf)
            slack = 1e-9 + 1e-5 * abs(result.objective)
            return Relaxation(
                lower_bound=max(result.objective - slack, analytic),
                solution=result.x,
            )
        self.backend_fallbacks += 1
        return self._relax_barrier(
            program, analytic, hint, allow_fallback=True, slsqp_result=result
        )

    def _relax_barrier(
        self,
        program,
        analytic: float,
        hint: "np.ndarray | None",
        allow_fallback: bool,
        slsqp_result=None,
    ) -> Relaxation:
        try:
            result = self._barrier.solve(program, x0=hint)
            bound = result.objective - result.duality_gap - 1e-12
            return Relaxation(lower_bound=max(bound, analytic), solution=result.x)
        except InfeasibleProblemError:
            if allow_fallback and slsqp_result is not None and slsqp_result.max_violation <= 1e-6:
                # Barrier phase-I failed on a thin-but-nonempty set that
                # SLSQP did reach: keep the conservative SLSQP bound.
                slack = 1e-9 + 1e-5 * abs(slsqp_result.objective)
                return Relaxation(
                    lower_bound=max(slsqp_result.objective - slack, analytic),
                    solution=slsqp_result.x,
                )
            return Relaxation(lower_bound=np.inf)

    # ------------------------------------------------------------------ #
    def candidates(self, box: Box, relaxation: Relaxation) -> Iterable[Candidate]:
        if relaxation.solution is None:
            return []
        base = np.asarray(relaxation.solution, dtype=np.float64)
        trials: List[np.ndarray] = [np.asarray(quantize(base, self.problem.fmt))]
        if self.config.scale_sweep:
            trials.extend(scale_sweep_candidates(self.problem, base))
        out: List[Candidate] = []
        for trial in trials:
            key = trial.tobytes()
            if key in self._seen_candidates:
                continue
            self._seen_candidates.add(key)
            if not np.any(trial):
                continue
            if self.problem.constraint_violation(trial) > _FEAS_TOL:
                continue
            cost = self.problem.cost(trial)
            if not np.isfinite(cost):
                continue
            # Polishing every rounded point is wasteful: only points already
            # competitive with the best incumbent are worth refining.
            if self.config.local_search and cost <= 2.0 * self._best_cost:
                polished = coordinate_descent(
                    self.problem, trial, radius=self.config.local_search_radius
                )
                cost, trial = polished.cost, polished.weights
            out.append(Candidate(x=trial, cost=cost))
            self._best_cost = min(self._best_cost, cost)
        return out

    # ------------------------------------------------------------------ #
    def branch_dimension(self, box: Box, relaxation: Relaxation) -> int:
        """Fixed branching order: widest dimension relative to the root."""
        widths = box.widths / self._root_widths
        m = self.problem.num_features
        # Do not branch dimensions already at one grid step.
        for dim in range(m):
            if box.grid_count(dim) <= 1:
                widths[dim] = -1.0
        dim = int(np.argmax(widths))
        if widths[dim] <= 0.0:
            dim = m  # only t left to split
        return dim

    def branch_override(self, box: Box, relaxation: Relaxation) -> "Sequence[Box] | None":
        if self._cut is None:
            return None
        m = self.problem.num_features
        # With symmetry cuts active, the first split of a t-straddling box
        # goes at exactly t = 0: the cut can only ever cover boxes entirely
        # on the negative side, so separating the sign regions early is
        # what lets it fire.
        if box.lo[m] < 0.0 < box.hi[m]:
            return box.split_at(m, 0.0)
        # On the negative side, shave the one-LSB two's-complement strip
        # (the lone grid value below -value_hi, i.e. value_lo) off any
        # dimension still touching it: the strip slice is a thin pinned box
        # and the remaining body becomes mirrorable by the reflection cut.
        if box.hi[m] <= 0.0:
            limit = -self.problem.value_hi
            step = self.problem.fmt.resolution
            for dim in range(m):
                if box.lo[dim] < limit - 1e-12 and box.hi[dim] > limit - 1e-12:
                    return box.split_at(dim, limit - 0.5 * step)
            # Cut-guided split: separate the largest mirror-safe slice so
            # the reflection cut kills it at relaxation time (no cone
            # solve), leaving a strictly thinner surviving child.  This
            # turns the bound-driven search of the near-symmetric region
            # into a short chain of guided splits.
            guided = self._cut.guided_split(box)
            if guided is not None:
                return box.split_at(guided[0], guided[1])
        return None

    def branch(self, box: Box, relaxation: Relaxation) -> Sequence[Box]:
        # Children get the parent's relaxation solution as warm start via
        # relax_child; branching itself is pure.
        forced = self.branch_override(box, relaxation)
        if forced is not None:
            return list(forced)
        return list(box.split(self.branch_dimension(box, relaxation)))

    # ------------------------------------------------------------------ #
    def counters_snapshot(self) -> dict:
        """Adapter-side counters a process worker ships back as deltas."""
        return {
            "relaxations_solved": self.relaxations_solved,
            "backend_fallbacks": self.backend_fallbacks,
            "symmetry_pruned": self.symmetry_pruned,
        }

    def counters_absorb(self, delta: dict) -> None:
        self.relaxations_solved += delta.get("relaxations_solved", 0)
        self.backend_fallbacks += delta.get("backend_fallbacks", 0)
        self.symmetry_pruned += delta.get("symmetry_pruned", 0)

    # ------------------------------------------------------------------ #
    def is_terminal(self, box: Box) -> bool:
        m = self.problem.num_features
        count = 1
        for dim in range(m):
            count *= max(1, box.grid_count(dim))
            if count > self.config.terminal_enumeration_cap:
                return False
        return True

    def resolve_terminal(self, box: Box) -> Iterable[Candidate]:
        m = self.problem.num_features
        grids = [box.grid_values(dim) for dim in range(m)]
        out: List[Candidate] = []
        # Cartesian product over the (small) terminal grid; the size cap is
        # guaranteed by is_terminal.
        for combo in itertools.product(*grids):
            w = np.array(combo)
            if not np.any(w):
                continue
            if self.problem.constraint_violation(w) > _FEAS_TOL:
                continue
            cost = self.problem.cost(w)
            if np.isfinite(cost):
                out.append(Candidate(x=w, cost=cost))
        return out


def _warm_start_candidate(
    dataset: Dataset,
    problem: LdaFpProblem,
    config: LdaFpConfig,
    direction: "np.ndarray | None" = None,
) -> "Candidate | None":
    """Rounded conventional LDA (several scales) as the initial incumbent.

    The primary direction is computed from the problem's own (quantized,
    PQN-floored, possibly shrunk) statistics so the warm start targets the
    exact objective the branch-and-bound will optimize — this is what lets
    the early exit fire at large word lengths.  A sweep engine that trains
    many word lengths on the same scaled data can pass a precomputed
    ``direction`` (the float-LDA fit on pre-quantization data, which is
    word-length-invariant) as an *additional* try: both directions go
    through the scale sweep and the better rounded candidate wins, so the
    hint can only tighten the incumbent.
    """
    from ..linalg.cholesky import solve_spd

    directions: "List[np.ndarray]" = []
    if direction is not None:
        direction = np.asarray(direction, dtype=np.float64)
        if direction.shape != (problem.num_features,):
            raise InputValidationError(
                f"warm-start direction has shape {direction.shape}, "
                f"expected ({problem.num_features},)"
            )
        directions.append(direction)
    try:
        directions.append(
            solve_spd(
                problem.stats.within_scatter, problem.stats.mean_difference, jitter=1e-10
            )
        )
    except Exception:
        try:
            model = fit_lda(dataset, shrinkage=max(config.shrinkage, 1e-3))
            directions.append(model.weights)
        except TrainingError:
            pass
    best: "Candidate | None" = None
    for raw in directions:
        norm = float(np.linalg.norm(raw))
        if norm == 0.0 or not np.isfinite(norm):
            continue
        for candidate in scale_sweep_candidates(problem, raw / norm):
            if problem.constraint_violation(candidate) > _FEAS_TOL:
                continue
            cost = problem.cost(candidate)
            if np.isfinite(cost) and (best is None or cost < best.cost):
                best = Candidate(x=candidate, cost=cost)
    if best is not None and config.local_search:
        polished = coordinate_descent(
            problem, best.x, radius=config.local_search_radius
        )
        if polished.cost < best.cost:
            best = Candidate(x=polished.weights, cost=polished.cost)
    return best


def _requantize_seeds(
    problem: LdaFpProblem,
    config: LdaFpConfig,
    seeds: "Sequence[np.ndarray]",
) -> "tuple[List[Candidate], int]":
    """Requantize cross-word-length seeds onto this grid and validate them.

    Each seed (typically the solved ``w`` of an adjacent word length) is
    rounded onto this problem's ``QK.F`` grid and checked against the exact
    Eq. 18 + Eq. 20 overflow constraints *before* it can reach the solver;
    a requantized seed that violates them, collapses to zero, or has a
    non-finite Fisher cost is rejected — never silently used — and counted.
    Returns the surviving candidates (true cost attached) and the number of
    rejected seeds.
    """
    valid: "List[Candidate]" = []
    rejected = 0
    for seed in seeds:
        w = np.asarray(seed, dtype=np.float64)
        if w.shape != (problem.num_features,):
            raise InputValidationError(
                f"incumbent seed has shape {w.shape}, "
                f"expected ({problem.num_features},)"
            )
        w = np.asarray(quantize(w, problem.fmt, rounding=config.rounding))
        if not np.any(w) or problem.constraint_violation(w) > _FEAS_TOL:
            rejected += 1
            continue
        cost = problem.cost(w)
        if not np.isfinite(cost):
            rejected += 1
            continue
        valid.append(Candidate(x=w, cost=cost))
    return valid, rejected


def _maximize_scale(problem: LdaFpProblem, weights: np.ndarray) -> np.ndarray:
    """Double the weight vector while it stays representable and feasible.

    The Eq. 21 cost is *exactly* invariant under ``w -> 2w`` (numerator and
    denominator both scale by 4) and the ``QK.F`` grid is closed under
    doubling within range, so this pass is free in cost terms — but it
    maximizes the margin of every weight to the rounding grid, which is
    what makes the trained boundary robust to perturbations (the Figure 2
    property).  Doubling stops at the first range or overflow-constraint
    violation.
    """
    w = np.asarray(weights, dtype=np.float64)
    for _ in range(problem.fmt.word_length + 1):
        doubled = 2.0 * w
        if np.any(doubled < problem.value_lo) or np.any(doubled > problem.value_hi):
            break
        if problem.constraint_violation(doubled) > _FEAS_TOL:
            break
        w = doubled
    return w


def _adjust_stats(stats, fmt: QFormat, config: LdaFpConfig):
    """Apply shrinkage and the PQN noise floor to the quantized-data stats."""
    from ..linalg.shrinkage import shrink_covariance
    from ..stats.scatter import ClassStats, TwoClassStats

    cov_a = stats.class_a.covariance
    cov_b = stats.class_b.covariance
    if config.shrinkage > 0.0:
        cov_a = shrink_covariance(cov_a, config.shrinkage).covariance
        cov_b = shrink_covariance(cov_b, config.shrinkage).covariance
    if config.quantization_noise_floor:
        # Pseudo-quantization-noise model: rounding to a grid of step q adds
        # (approximately) independent uniform noise of variance q^2 / 12.
        pqn = (fmt.resolution**2 / 12.0) * np.eye(stats.num_features)
        cov_a = cov_a + pqn
        cov_b = cov_b + pqn
    if cov_a is stats.class_a.covariance:
        return stats
    return TwoClassStats(
        class_a=ClassStats(stats.class_a.mean, cov_a, stats.class_a.count),
        class_b=ClassStats(stats.class_b.mean, cov_b, stats.class_b.count),
        within_scatter=0.5 * (cov_a + cov_b),
        mean_difference=stats.mean_difference,
    )


def train_lda_fp(
    dataset: Dataset,
    fmt: QFormat,
    config: "LdaFpConfig | None" = None,
    trace: "SolverTrace | None" = None,
    warm_start_direction: "np.ndarray | None" = None,
    incumbent_seeds: "Sequence[np.ndarray] | None" = None,
) -> "tuple[FixedPointLinearClassifier, LdaFpReport]":
    """Train an LDA-FP classifier (Algorithm 1 end to end).

    Steps (paper Algorithm 1): quantize the training data to ``QK.F``,
    estimate the class statistics, build the Eq. 21 program, run
    branch-and-bound, and assemble the fixed-point classifier with the
    threshold ``w' (mu_A + mu_B) / 2`` quantized to the same format.

    Pass a :class:`~repro.optim.trace.SolverTrace` to record the solver's
    event stream (the warm-start early exit emits a minimal start/stop
    trace so the export is well-formed either way).

    ``warm_start_direction`` optionally supplies the float-LDA direction
    the warm start rounds from (hoisted by a word-length sweep, which fits
    it once on the shared scaled data).  ``incumbent_seeds`` are weight
    vectors solved at adjacent word lengths: each is requantized onto this
    grid, validated against the exact overflow constraints (violating
    seeds are rejected and counted in the report), and handed to the
    branch-and-bound as a seed candidate that only replaces the warm-start
    incumbent when strictly better.  Seeds tighten the initial upper bound
    — they never loosen it — so a seeded search prunes at least as hard.

    Returns the classifier and a :class:`LdaFpReport`.  The report's
    ``proven_optimal`` is True only when the search closed the gap within
    its budgets.
    """
    config = config or LdaFpConfig()
    start_time = time.perf_counter()

    # Algorithm 1 step 1: round training data to QK.F.
    quantized = dataset.map_features(
        lambda x: np.asarray(quantize(x, fmt, rounding=config.rounding))
    )
    stats = estimate_two_class_stats(*quantized.class_arrays())
    stats = _adjust_stats(stats, fmt, config)

    problem = LdaFpProblem(stats=stats, fmt=fmt, rho=config.rho, beta=config.beta)
    node_problem = LdaFpNodeProblem(problem, config)
    incumbent = (
        _warm_start_candidate(quantized, problem, config, direction=warm_start_direction)
        if config.warm_start
        else None
    )
    if incumbent is not None:
        node_problem._best_cost = incumbent.cost
    seed_candidates, seeds_rejected = (
        _requantize_seeds(problem, config, incumbent_seeds)
        if incumbent_seeds
        else ([], 0)
    )

    # Early exit on the global continuous bound (paper Table 1: at large
    # word lengths the rounded conventional solution is already optimal and
    # LDA-FP's runtime collapses to milliseconds): if the warm start meets
    # the continuous Fisher optimum to within the gap tolerances, the search
    # cannot improve it.  Seeds are deliberately not consulted here: the
    # early exit must fire (and return) exactly as it would unseeded.
    cost_star = node_problem._cost_star
    if (
        incumbent is not None
        and incumbent.cost
        <= cost_star * (1.0 + config.relative_gap) + config.absolute_gap
    ):
        solver_stats = BranchAndBoundStats(stop_reason="gap")
        if trace is not None:
            trace.begin()
            trace.record("start", incumbent=incumbent.cost)
            trace.record(
                "stop", bound=cost_star, incumbent=incumbent.cost, detail="gap"
            )
            trace.finalize(solver_stats)
        result = BranchAndBoundResult(
            x=incumbent.x,
            cost=incumbent.cost,
            lower_bound=cost_star,
            proven_optimal=True,
            stats=solver_stats,
        )
    else:
        solver = BranchAndBoundSolver(
            BranchAndBoundConfig(
                max_nodes=config.max_nodes,
                time_limit=config.time_limit,
                absolute_gap=config.absolute_gap,
                relative_gap=config.relative_gap,
                strategy=config.search_strategy,
                workers=config.workers,
                executor=config.executor,
                branching=config.branching,
            )
        )
        result = solver.solve(
            node_problem,
            initial_incumbent=incumbent,
            trace=trace,
            seed_candidates=seed_candidates,
        )
        if cost_star > result.lower_bound:
            result = BranchAndBoundResult(
                x=result.x,
                cost=result.cost,
                lower_bound=min(cost_star, result.cost),
                proven_optimal=result.proven_optimal,
                stats=result.stats,
            )

    weights = _maximize_scale(problem, np.asarray(quantize(result.x, fmt)))
    threshold = float(weights @ stats.midpoint)
    # Orient the comparator: Eq. 10 is invariant under w -> -w, so the
    # solver may return the mirrored vector; class A must end up on the
    # positive side of the boundary (Eq. 12).
    polarity = 1 if float(stats.mean_difference @ weights) >= 0.0 else -1
    classifier = FixedPointLinearClassifier(
        weights=weights,
        threshold=threshold,
        fmt=fmt,
        rounding=config.rounding,
        polarity=polarity,
    )
    report = LdaFpReport(
        cost=result.cost,
        lower_bound=result.lower_bound,
        proven_optimal=result.proven_optimal,
        nodes_expanded=result.stats.nodes_expanded,
        nodes_pruned=result.stats.nodes_pruned,
        nodes_infeasible=result.stats.nodes_infeasible,
        incumbent_updates=result.stats.incumbent_updates,
        train_seconds=time.perf_counter() - start_time,
        relaxations_solved=node_problem.relaxations_solved,
        backend_fallbacks=node_problem.backend_fallbacks,
        stop_reason=result.stats.stop_reason,
        seeds_injected=len(seed_candidates),
        seeds_rejected=seeds_rejected,
        seeds_adopted=result.stats.seeds_adopted,
        executor=result.stats.executor,
        executor_fallback=result.stats.executor_fallback,
        symmetry_pruned=node_problem.symmetry_pruned,
    )
    return classifier, report
