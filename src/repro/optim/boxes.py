"""Axis-aligned boxes for the branch-and-bound search space.

A node of the LDA-FP search is a box over the ``M + 1`` variables
``(w_1, ..., w_M, t)`` (paper Eq. 24).  Boxes know how to measure their
width in *quanta* of a grid step per dimension, split along a chosen
dimension at a grid-aligned point, and report terminality (every discrete
dimension narrowed to at most one grid step — paper Algorithm 1 step 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from ..errors import InputValidationError

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """A closed axis-aligned box ``[lo_i, hi_i]`` per dimension.

    ``steps`` gives the grid step per dimension; a non-positive step marks a
    continuous dimension (the auxiliary variable ``t``), which never drives
    terminality but may still be branched.
    """

    lo: np.ndarray
    hi: np.ndarray
    steps: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        steps = np.asarray(self.steps, dtype=np.float64)
        if lo.shape != hi.shape or lo.shape != steps.shape:
            raise InputValidationError(
                f"shape mismatch: lo {lo.shape}, hi {hi.shape}, steps {steps.shape}"
            )
        if np.any(hi < lo):
            raise InputValidationError("box has hi < lo")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "steps", steps)

    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        return int(self.lo.shape[0])

    @property
    def widths(self) -> np.ndarray:
        return self.hi - self.lo

    def widths_in_quanta(self) -> np.ndarray:
        """Per-dimension width divided by the grid step (inf step -> 0 width).

        Continuous dimensions report their raw width so they can still win
        the branching choice when they dominate.
        """
        out = np.empty(self.ndim)
        for i in range(self.ndim):
            if self.steps[i] > 0:
                out[i] = (self.hi[i] - self.lo[i]) / self.steps[i]
            else:
                out[i] = self.hi[i] - self.lo[i]
        return out

    def contains(self, point: np.ndarray, tol: float = 1e-12) -> bool:
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= self.lo - tol) and np.all(p <= self.hi + tol))

    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    # ------------------------------------------------------------------ #
    def grid_count(self, dim: int) -> int:
        """Number of grid points of dimension ``dim`` inside the box."""
        step = self.steps[dim]
        if step <= 0:
            raise InputValidationError(f"dimension {dim} is continuous")
        first = np.ceil(self.lo[dim] / step - 1e-9)
        last = np.floor(self.hi[dim] / step + 1e-9)
        return max(0, int(last - first) + 1)

    def grid_values(self, dim: int) -> np.ndarray:
        """The grid points of dimension ``dim`` inside the box, ascending."""
        step = self.steps[dim]
        if step <= 0:
            raise InputValidationError(f"dimension {dim} is continuous")
        first = int(np.ceil(self.lo[dim] / step - 1e-9))
        last = int(np.floor(self.hi[dim] / step + 1e-9))
        if last < first:
            return np.empty(0)
        return np.arange(first, last + 1, dtype=np.float64) * step

    def is_terminal(self, discrete_dims: "np.ndarray | None" = None) -> bool:
        """True when every discrete dimension holds at most two grid points.

        This is the paper's "sizes of all intervals ... sufficiently small"
        stopping rule made concrete: once each ``w`` dimension is down to a
        single grid step, the node is resolved by enumeration instead of
        further branching.
        """
        dims = (
            np.flatnonzero(self.steps > 0)
            if discrete_dims is None
            else np.asarray(discrete_dims)
        )
        return all(self.grid_count(int(d)) <= 2 for d in dims)

    # ------------------------------------------------------------------ #
    def split(self, dim: int) -> "tuple[Box, Box]":
        """Bisect along ``dim`` at a grid-aligned midpoint.

        For discrete dimensions the cut is placed between two grid points so
        no representable value is lost or duplicated; for continuous
        dimensions the cut is the plain midpoint.
        """
        lo, hi, step = self.lo[dim], self.hi[dim], self.steps[dim]
        if hi <= lo:
            raise InputValidationError(f"cannot split zero-width dimension {dim}")
        if step > 0:
            values = self.grid_values(dim)
            if values.size >= 2:
                mid_index = values.size // 2
                cut_hi = values[mid_index - 1]
                cut_lo = values[mid_index]
            else:
                cut_hi = cut_lo = 0.5 * (lo + hi)
        else:
            cut_hi = cut_lo = 0.5 * (lo + hi)
        left_hi = self.hi.copy()
        left_hi[dim] = cut_hi
        right_lo = self.lo.copy()
        right_lo[dim] = cut_lo
        return (
            Box(self.lo.copy(), left_hi, self.steps.copy()),
            Box(right_lo, self.hi.copy(), self.steps.copy()),
        )

    def split_at(self, dim: int, value: float) -> "tuple[Box, Box]":
        """Split along ``dim`` at a chosen interior point.

        For discrete dimensions the cut lands between the grid points
        surrounding ``value`` (no representable point lost or duplicated);
        for continuous dimensions both children share the cut point, like
        :meth:`split`.  Used by the symmetry cut to separate the
        negative-``t`` half-space at exactly ``t = 0``.
        """
        lo, hi, step = self.lo[dim], self.hi[dim], self.steps[dim]
        if not (lo < value < hi):
            raise InputValidationError(
                f"split point {value} outside the open interval ({lo}, {hi})"
            )
        if step > 0:
            cut_hi = np.floor(value / step + 1e-9) * step
            cut_lo = cut_hi + step
            if cut_hi < lo or cut_lo > hi:
                return self.split(dim)  # value inside one grid cell: bisect
        else:
            cut_hi = cut_lo = value
        left_hi = self.hi.copy()
        left_hi[dim] = cut_hi
        right_lo = self.lo.copy()
        right_lo[dim] = cut_lo
        return (
            Box(self.lo.copy(), left_hi, self.steps.copy()),
            Box(right_lo, self.hi.copy(), self.steps.copy()),
        )

    def widest_dimension(self) -> int:
        """Index of the dimension with the largest width in quanta."""
        return int(np.argmax(self.widths_in_quanta()))
