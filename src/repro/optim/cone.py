"""Convex cone-program container: quadratic objective, linear + SOC constraints.

The node relaxation of LDA-FP (paper Eq. 25) is exactly this problem class:

    minimize    (1/eta) * w' S_W w
    subject to  A w <= b                    (per-feature overflow, Eq. 18,
                                             expanded to linear rows; box
                                             bounds; t-interval bounds)
                ||G_i w + h_i|| <= c_i' w + d_i   (projection overflow, Eq. 20)

We represent the objective as ``0.5 w' P w + q' w + r`` and each
second-order cone (SOC) constraint by the matrices above.  For barrier
methods the SOC constraint is handled through the canonical self-concordant
barrier ``-log((c'w + d)^2 - ||G w + h||^2)`` restricted to ``c'w + d > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import OptimizationError

__all__ = ["LinearInequality", "SocConstraint", "ConeProgram"]


@dataclass(frozen=True)
class LinearInequality:
    """One linear row ``a' w <= b``."""

    a: np.ndarray
    b: float
    name: str = ""

    def value(self, w: np.ndarray) -> float:
        """Constraint function ``a'w - b`` (feasible when <= 0)."""
        return float(self.a @ w - self.b)

    def grad(self, w: np.ndarray) -> np.ndarray:
        return self.a


@dataclass(frozen=True)
class SocConstraint:
    """Second-order cone constraint ``||G w + h||_2 <= c' w + d``."""

    G: np.ndarray
    h: np.ndarray
    c: np.ndarray
    d: float
    name: str = ""

    def residual(self, w: np.ndarray) -> float:
        """``||G w + h|| - (c'w + d)``; feasible when <= 0."""
        return float(np.linalg.norm(self.G @ w + self.h) - (self.c @ w + self.d))

    def rhs(self, w: np.ndarray) -> float:
        """The affine right-hand side ``c'w + d`` (must be >= 0 on the cone)."""
        return float(self.c @ w + self.d)

    def gap(self, w: np.ndarray) -> float:
        """``(c'w+d)^2 - ||Gw+h||^2`` — the quantity the barrier logs."""
        u = self.rhs(w)
        v = self.G @ w + self.h
        return u * u - float(v @ v)

    def gap_grad(self, w: np.ndarray) -> np.ndarray:
        u = self.rhs(w)
        v = self.G @ w + self.h
        return 2.0 * u * self.c - 2.0 * (self.G.T @ v)

    def gap_hess(self, w: np.ndarray) -> np.ndarray:
        return 2.0 * np.outer(self.c, self.c) - 2.0 * (self.G.T @ self.G)


@dataclass
class ConeProgram:
    """``min 0.5 w'Pw + q'w + r`` over linear and SOC constraints plus a box.

    Attributes
    ----------
    P:
        Symmetric PSD quadratic term (``(M, M)``).
    q:
        Linear term (``(M,)``).
    r:
        Constant offset (carried so node lower bounds are directly
        comparable to the original cost).
    linear:
        Linear inequality rows.
    socs:
        Second-order cone constraints.
    lower, upper:
        Elementwise box bounds (always finite in LDA-FP: the ``QK.F`` range
        intersected with the node's interval).
    """

    P: np.ndarray
    q: np.ndarray
    r: float = 0.0
    linear: List[LinearInequality] = field(default_factory=list)
    socs: List[SocConstraint] = field(default_factory=list)
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.P = np.asarray(self.P, dtype=np.float64)
        self.q = np.asarray(self.q, dtype=np.float64)
        n = self.q.shape[0]
        if self.P.shape != (n, n):
            raise OptimizationError(
                f"P shape {self.P.shape} inconsistent with q length {n}"
            )
        if self.lower is None:
            self.lower = np.full(n, -np.inf)
        if self.upper is None:
            self.upper = np.full(n, np.inf)
        self.lower = np.asarray(self.lower, dtype=np.float64)
        self.upper = np.asarray(self.upper, dtype=np.float64)
        if np.any(self.lower > self.upper):
            raise OptimizationError("box bounds cross (lower > upper)")

    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        return int(self.q.shape[0])

    def objective(self, w: np.ndarray) -> float:
        w = np.asarray(w, dtype=np.float64)
        return float(0.5 * w @ self.P @ w + self.q @ w + self.r)

    def objective_grad(self, w: np.ndarray) -> np.ndarray:
        return self.P @ w + self.q

    def objective_hess(self, w: np.ndarray) -> np.ndarray:
        return self.P

    # ------------------------------------------------------------------ #
    def box_rows(self) -> List[LinearInequality]:
        """The box bounds expanded into linear rows (skipping infinities)."""
        rows: List[LinearInequality] = []
        n = self.num_vars
        for i in range(n):
            unit = np.zeros(n)
            unit[i] = 1.0
            if np.isfinite(self.upper[i]):
                rows.append(LinearInequality(unit.copy(), float(self.upper[i]), f"ub[{i}]"))
            if np.isfinite(self.lower[i]):
                rows.append(LinearInequality(-unit, -float(self.lower[i]), f"lb[{i}]"))
        return rows

    def all_linear_rows(self) -> List[LinearInequality]:
        return list(self.linear) + self.box_rows()

    def stacked_linear(self) -> "tuple[np.ndarray, np.ndarray]":
        """All linear rows (including box) stacked as ``(A, b)`` with ``A w <= b``.

        The stack is cached — solvers evaluate the linear constraints
        thousands of times per solve and the vectorized form is the
        difference between a usable and an unusable barrier method.
        """
        cached = getattr(self, "_stacked_cache", None)
        if cached is not None:
            return cached
        rows = self.all_linear_rows()
        if rows:
            A = np.vstack([row.a for row in rows])
            b = np.array([row.b for row in rows])
        else:
            A = np.zeros((0, self.num_vars))
            b = np.zeros(0)
        self._stacked_cache = (A, b)
        return self._stacked_cache

    def max_violation(self, w: np.ndarray) -> float:
        """Largest constraint violation at ``w`` (<= 0 means feasible)."""
        w = np.asarray(w, dtype=np.float64)
        worst = -np.inf
        A, b = self.stacked_linear()
        if b.size:
            worst = max(worst, float(np.max(A @ w - b)))
        for soc in self.socs:
            worst = max(worst, soc.residual(w))
        return worst if worst > -np.inf else 0.0

    def is_feasible(self, w: np.ndarray, tol: float = 1e-8) -> bool:
        return self.max_violation(w) <= tol

    def is_strictly_feasible(self, w: np.ndarray, margin: float = 1e-10) -> bool:
        """Strict interior test, as required to start a barrier method."""
        w = np.asarray(w, dtype=np.float64)
        A, b = self.stacked_linear()
        if b.size and float(np.max(A @ w - b)) >= -margin:
            return False
        for soc in self.socs:
            if soc.rhs(w) <= margin or soc.gap(w) <= margin:
                return False
        return True

    def clip_to_box(self, w: np.ndarray) -> np.ndarray:
        return np.clip(np.asarray(w, dtype=np.float64), self.lower, self.upper)
