"""SLSQP backend for :class:`ConeProgram` — cross-check and fallback.

The from-scratch barrier solver is the primary backend; this module solves
the same cone program with ``scipy.optimize.minimize(method="SLSQP")`` so
tests can compare the two and the branch-and-bound driver has a fallback if
a node's barrier solve fails (e.g. a needle-thin feasible set where phase I
struggles).

SOC constraints are passed in the smooth squared form
``(c'w + d)^2 - ||G w + h||^2 >= 0`` together with the linear side
condition ``c'w + d >= 0``; on the feasible set the two formulations agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from .cone import ConeProgram

__all__ = ["SlsqpResult", "solve_with_slsqp"]


@dataclass(frozen=True)
class SlsqpResult:
    """Outcome of an SLSQP solve of a cone program."""

    x: np.ndarray
    objective: float
    max_violation: float
    success: bool
    message: str


def solve_with_slsqp(
    program: ConeProgram,
    x0: "np.ndarray | None" = None,
    maxiter: int = 300,
    ftol: float = 1e-12,
) -> SlsqpResult:
    """Solve ``program`` with scipy's SLSQP.

    The starting point defaults to the box center.  The returned
    ``max_violation`` lets callers decide whether the answer is usable as a
    rigorous bound (for lower bounds, a slightly infeasible minimizer is
    *not* — callers should subtract a tolerance or reject).
    """
    lo, hi = program.lower, program.upper
    start = np.asarray(x0, dtype=np.float64) if x0 is not None else 0.5 * (lo + hi)
    start = np.clip(start, lo, hi)

    # One vector-valued constraint per family keeps the Python-callback
    # count per SLSQP iteration constant instead of linear in row count.
    constraints = []
    if program.linear:
        A = np.vstack([row.a for row in program.linear])
        b = np.array([row.b for row in program.linear])
        constraints.append(
            {
                "type": "ineq",
                "fun": (lambda w, A=A, b=b: b - A @ w),
                "jac": (lambda w, A=A: -A),
            }
        )
    if program.socs:
        socs = program.socs

        def soc_fun(w, socs=socs):
            return np.array([s.gap(w) for s in socs] + [s.rhs(w) for s in socs])

        def soc_jac(w, socs=socs):
            return np.vstack([s.gap_grad(w) for s in socs] + [s.c for s in socs])

        constraints.append({"type": "ineq", "fun": soc_fun, "jac": soc_jac})

    bounds = [
        (None if not np.isfinite(l) else float(l), None if not np.isfinite(u) else float(u))
        for l, u in zip(lo, hi)
    ]

    result = minimize(
        program.objective,
        start,
        jac=program.objective_grad,
        method="SLSQP",
        bounds=bounds,
        constraints=constraints,
        options={"maxiter": maxiter, "ftol": ftol},
    )
    x = program.clip_to_box(np.asarray(result.x, dtype=np.float64))
    return SlsqpResult(
        x=x,
        objective=program.objective(x),
        max_violation=program.max_violation(x),
        success=bool(result.success),
        message=str(result.message),
    )
