"""Symmetry / sign-region cuts for the branch-and-bound search.

The LDA-FP cost (Eq. 21) is exactly invariant under ``w -> -w`` (both the
quadratic numerator and the squared projection flip sign twice, and IEEE
negation is exact), so the search space is *almost* mirror-symmetric around
``t = d'w = 0``.  Almost — because the two's-complement range is asymmetric
(``value_lo = -value_hi - 2^-F``): a feasible ``w`` whose Eq. 18 or Eq. 20
lower expression — or a component of ``w`` itself — lands in the one-LSB
strip ``[value_lo, -value_hi)`` has an *infeasible* mirror.

:class:`ReflectionCut` therefore prunes a box only when it can *prove* that
every feasible point inside has a feasible, equal-cost mirror:

1. the box lies on the strictly negative-``t`` side (``t_hi <= 0``,
   ``t_lo < 0``), so its mirrors land on the kept ``t >= 0`` side, which is
   never itself symmetry-pruned (no mutual annihilation);
2. every component interval clears the strip (``w_lo >= -value_hi``), so
   the mirrored weights are representable: ``-w_i <= value_hi`` follows,
   and ``-w_i >= value_lo`` holds for free since ``w_i <= value_hi``;
3. interval arithmetic certifies that every Eq. 18 lower expression and
   every Eq. 20 lower expression over the box stays ``>= -value_hi``:
   then the mirror's upper expressions (``upper(-w) = -lower(w)``) respect
   ``value_hi``, and its lower expressions respect ``value_lo`` for free.

Together these prove the mirror ``-w`` of every feasible ``w`` in the box
is *exactly feasible* (grid membership is negation-closed in range).  The
mirror is also guaranteed to still be in the searched region: the root box
bounds are implied by the very constraints the mirror satisfies, and the
presolve reductions never remove a feasible point whose cost is within the
incumbent snapshot — which an optimal mirror always is.  Hence the cut may
soundly be checked against presolve-tightened node boxes, where the
interval proofs are far sharper.

Interval bounds are loose on wide boxes, so the cut typically starts firing
a few levels below the root — where the bulk of the tree lives.  It is a
pure function of the box and the static instance data (picklable, no
incumbent dependence), so serial, thread, and process runs prune the same
nodes and the deterministic parallel merge is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .boxes import Box

__all__ = ["ReflectionCut"]

_TOL = 1e-12


@dataclass(frozen=True)
class ReflectionCut:
    """Prove-and-prune of reflected negative-``t`` boxes.

    Parameters
    ----------
    single_coeffs:
        ``(R, m)`` coefficients of the single-variable Eq. 18 rows; the
        lower expression of feature ``i`` is ``min_r c[r, i] * w_i``.
    soc_centers:
        ``(S, m)`` mean vectors of the Eq. 20 cones (one row per class).
    soc_chols:
        ``(S, m, m)`` Cholesky factors ``L`` with spread ``beta * ||L'w||``.
    beta:
        Eq. 16 confidence multiplier.
    value_hi:
        ``2^(K-1) - 2^-F``; the asymmetric strip is everything below
        ``-value_hi``.
    """

    single_coeffs: np.ndarray
    soc_centers: np.ndarray
    soc_chols: np.ndarray
    beta: float
    value_hi: float

    def covered(self, box: Box) -> bool:
        """True when every feasible point of ``box`` has a feasible,
        equal-cost mirror on the kept ``t >= 0`` side."""
        m = box.ndim - 1
        t_lo, t_hi = float(box.lo[m]), float(box.hi[m])
        # 1. Strictly negative t side (mirrors land on the kept side).
        if t_hi > 0.0 or t_lo >= 0.0:
            return False
        return self._mirror_safe(box.lo[:m], box.hi[:m])

    def _mirror_safe(self, w_lo: np.ndarray, w_hi: np.ndarray) -> bool:
        """Conditions 2-3 over a weight sub-box (the ``t``-side condition is
        the caller's): every point's mirror is representable and in-range."""
        m = w_lo.shape[0]
        limit = -self.value_hi
        # 2. Components clear of the one-LSB strip: mirrors representable.
        if np.any(w_lo < limit - _TOL):
            return False
        # 3a. Eq. 18 lower expressions clear of the strip.
        lower = np.minimum(self.single_coeffs * w_lo, self.single_coeffs * w_hi)
        if np.any(lower < limit - _TOL):
            return False
        # 3b. Eq. 20 lower expressions ``w'mu - beta ||L'w||``.  The
        # expression is concave in ``w`` (linear minus a convex norm), so
        # its exact minimum over the box is attained at a vertex — enumerate
        # them for small m (the LDA-FP regime), with the loose decoupled
        # interval bound as the high-dimensional fallback.
        vertices = None
        if m <= 12:
            grids = np.meshgrid(*(np.array([w_lo[i], w_hi[i]]) for i in range(m)))
            vertices = np.stack([g.ravel() for g in grids], axis=1)
        for center, chol in zip(self.soc_centers, self.soc_chols):
            if vertices is not None:
                lower_exact = float(
                    np.min(
                        vertices @ center
                        - self.beta * np.linalg.norm(vertices @ chol, axis=1)
                    )
                )
            else:
                center_lo = float(np.sum(np.minimum(center * w_lo, center * w_hi)))
                proj_lo = np.sum(
                    np.minimum(chol * w_lo[:, None], chol * w_hi[:, None]), axis=0
                )
                proj_hi = np.sum(
                    np.maximum(chol * w_lo[:, None], chol * w_hi[:, None]), axis=0
                )
                amplitude = np.maximum(np.abs(proj_lo), np.abs(proj_hi))
                lower_exact = center_lo - self.beta * float(
                    np.linalg.norm(amplitude)
                )
            if lower_exact < limit - _TOL:
                return False
        return True

    def guided_split(self, box: Box) -> "tuple[int, float] | None":
        """Best grid-aligned split whose outer child is fully mirror-safe.

        For an uncovered negative-``t`` box, mirror-safety is monotone under
        shrinking, so each dimension admits a largest lo-side / hi-side
        slice that :meth:`covered` would prune outright.  Bisecting the grid
        finds it in ``O(log)`` coverage tests; the returned ``(dim, value)``
        is fed to :meth:`Box.split_at`, the covered child dies at relaxation
        time without a cone solve, and the surviving child is at least one
        grid step thinner.  Returns ``None`` when the box is not on the
        negative side, is already covered (prune it instead), or no single
        split yields a covered slice.  Pure function of the box — serial,
        thread, and process runs branch identically.
        """
        m = box.ndim - 1
        if box.hi[m] > 0.0 or box.lo[m] >= 0.0:
            return None
        w_lo, w_hi = box.lo[:m].copy(), box.hi[:m].copy()
        if self._mirror_safe(w_lo, w_hi):
            return None
        best: "tuple[int, int, float] | None" = None  # (quanta, dim, value)
        for dim in range(m):
            step = float(box.steps[dim])
            if step <= 0:
                continue
            values = box.grid_values(dim)
            if values.size < 2:
                continue

            def hi_side_safe(index: int) -> bool:
                trial = w_lo.copy()
                trial[dim] = values[index]
                return self._mirror_safe(trial, w_hi)

            def lo_side_safe(index: int) -> bool:
                trial = w_hi.copy()
                trial[dim] = values[index]
                return self._mirror_safe(w_lo, trial)

            if hi_side_safe(values.size - 1):
                lo_i, hi_i = 1, values.size - 1
                while lo_i < hi_i:  # minimal index whose hi-slice is safe
                    mid = (lo_i + hi_i) // 2
                    if hi_side_safe(mid):
                        hi_i = mid
                    else:
                        lo_i = mid + 1
                quanta = values.size - lo_i
                if best is None or quanta > best[0]:
                    best = (quanta, dim, float(values[lo_i]) - 0.5 * step)
            if lo_side_safe(0):
                lo_i, hi_i = 0, values.size - 2
                while lo_i < hi_i:  # maximal index whose lo-slice is safe
                    mid = (lo_i + hi_i + 1) // 2
                    if lo_side_safe(mid):
                        lo_i = mid
                    else:
                        hi_i = mid - 1
                quanta = lo_i + 1
                if best is None or quanta > best[0]:
                    best = (quanta, dim, float(values[lo_i]) + 0.5 * step)
        if best is None:
            return None
        return best[1], best[2]
