"""KKT certificate checking for cone-program solutions.

"Guaranteed global optimum" deserves a certificate: for the convex node
relaxations, first-order (KKT) conditions are necessary *and sufficient*,
so a candidate solution can be verified independently of how it was found.
Given a point, this module

1. identifies the active constraints (within a tolerance),
2. estimates Lagrange multipliers by non-negative least squares on the
   stationarity condition ``∇f0 + Σ λ_i ∇f_i = 0`` (multipliers of
   inactive constraints are fixed at zero), and
3. reports the stationarity residual, worst primal infeasibility, and
   worst complementary-slackness violation.

The branch-and-bound tests use this to cross-check both node backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import nnls

from ..errors import OptimizationError
from .cone import ConeProgram

__all__ = ["KktReport", "check_kkt"]


@dataclass(frozen=True)
class KktReport:
    """Quantified KKT residuals at a candidate point.

    Attributes
    ----------
    stationarity:
        ``||∇f0 + Σ λ_i ∇f_i||_inf`` with the estimated multipliers,
        normalized by ``max(1, ||∇f0||_inf)``.
    primal_infeasibility:
        Largest constraint violation (<= 0 means feasible).
    complementarity:
        Largest ``λ_i * |f_i|`` product over active-set multipliers.
    active_constraints:
        Number of constraints treated as active.
    """

    stationarity: float
    primal_infeasibility: float
    complementarity: float
    active_constraints: int

    def is_certificate(self, tol: float = 1e-5) -> bool:
        """All three residual families below ``tol``."""
        return (
            self.stationarity <= tol
            and self.primal_infeasibility <= tol
            and self.complementarity <= tol
        )


def check_kkt(
    program: ConeProgram, x: np.ndarray, active_tol: float = 1e-6
) -> KktReport:
    """Estimate multipliers and measure KKT residuals at ``x``.

    Parameters
    ----------
    program:
        The convex cone program.
    x:
        Candidate optimal point.
    active_tol:
        Constraints with value within ``active_tol`` of zero are treated as
        active (eligible for a positive multiplier).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (program.num_vars,):
        raise OptimizationError(
            f"point has shape {x.shape}, program has {program.num_vars} vars"
        )
    grad_f0 = program.objective_grad(x)
    scale = max(1.0, float(np.max(np.abs(grad_f0))))

    # Gather constraint values and gradients.
    values: "list[float]" = []
    grads: "list[np.ndarray]" = []
    for row in program.all_linear_rows():
        values.append(row.value(x))
        grads.append(np.asarray(row.a, dtype=np.float64))
    for soc in program.socs:
        # Use the smooth squared form g = ||Gx+h||^2 - (c'x+d)^2 <= 0 whose
        # gradient exists everywhere on the cone's interior boundary.
        values.append(-soc.gap(x))
        grads.append(-soc.gap_grad(x))

    primal = max(values) if values else 0.0
    active = [i for i, v in enumerate(values) if v >= -active_tol]
    if not active:
        return KktReport(
            stationarity=float(np.max(np.abs(grad_f0))) / scale,
            primal_infeasibility=primal,
            complementarity=0.0,
            active_constraints=0,
        )

    # Stationarity: grad_f0 + A_active' lambda = 0, lambda >= 0.
    jac = np.column_stack([grads[i] for i in active])
    multipliers, _ = nnls(jac, -grad_f0)
    residual = grad_f0 + jac @ multipliers
    complementarity = max(
        float(multipliers[k] * abs(values[i])) for k, i in enumerate(active)
    )
    return KktReport(
        stationarity=float(np.max(np.abs(residual))) / scale,
        primal_infeasibility=primal,
        complementarity=complementarity,
        active_constraints=len(active),
    )
