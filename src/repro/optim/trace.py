"""Structured solver telemetry: typed events, progress callbacks, JSON export.

A :class:`SolverTrace` is handed to
:meth:`~repro.optim.bnb.BranchAndBoundSolver.solve` and records one
:class:`TraceEvent` per driver decision:

======================  ======================================================
kind                    meaning
======================  ======================================================
``start``               search begins (``incumbent`` = warm-start cost, if any)
``expand``              a popped node is processed; ``detail`` is ``terminal``
                        or ``branch:<n_children>``
``prune``               a popped node lost to the incumbent (pruned after pop)
``child_pruned``        a freshly relaxed child lost to the incumbent
``infeasible``          a relaxation (root or child) was infeasible
``incumbent``           the incumbent improved (``incumbent`` = new cost)
``gap``                 global lower-bound progress (best-first only); the
                        final one carries ``detail="closed"``
``executor``            parallel frontier resolved its executor; ``detail``
                        is ``thread`` / ``process``, with the fallback
                        reason appended when the mode was a fallback
``stop``                search ended; ``detail`` is the stop reason
                        (``nodes`` / ``time`` / ``gap`` / ``exhausted``)
======================  ======================================================

Counters derived from the event stream (:meth:`SolverTrace.counters`) match
the driver's :class:`~repro.optim.bnb.BranchAndBoundStats` field for field —
:meth:`SolverTrace.verify_counters` checks this, and the JSON export
(:meth:`to_json` / :meth:`from_json`) round-trips both events and final
stats so a trace written by the CLI can be audited offline.

The module deliberately does not import :mod:`repro.optim.bnb` (the driver
imports the trace, not vice versa); ``finalize`` accepts any dataclass.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from typing import Callable, List, Optional
from ..errors import InputValidationError

__all__ = ["EVENT_KINDS", "TraceEvent", "TraceProgress", "SolverTrace"]

EVENT_KINDS = (
    "start",
    "expand",
    "prune",
    "child_pruned",
    "infeasible",
    "incumbent",
    "gap",
    "executor",
    "stop",
)

# Stats fields that can be re-derived from the event stream (plus
# ``stop_reason``, which is carried by the final ``stop`` event).
_COUNTER_FIELDS = (
    "nodes_expanded",
    "nodes_pruned",
    "nodes_pruned_after_pop",
    "nodes_branched",
    "children_pruned",
    "nodes_infeasible",
    "terminal_nodes",
    "incumbent_updates",
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped solver decision.

    ``t`` is seconds since the search began; ``bound`` and ``incumbent``
    are the node bound / incumbent cost relevant to the event (``None``
    when not applicable).
    """

    kind: str
    seq: int
    t: float
    bound: Optional[float] = None
    incumbent: Optional[float] = None
    detail: str = ""


@dataclass(frozen=True)
class TraceProgress:
    """Periodic snapshot passed to the progress callback."""

    nodes_expanded: int
    frontier: int
    incumbent: Optional[float]
    lower_bound: Optional[float]
    elapsed: float


class SolverTrace:
    """Event recorder for one branch-and-bound solve.

    Parameters
    ----------
    progress:
        Optional callback receiving a :class:`TraceProgress` at most once
        per ``progress_interval`` seconds of solver wall time.
    progress_interval:
        Minimum seconds between progress callbacks.
    """

    SCHEMA = "repro.solver-trace/v1"

    def __init__(
        self,
        progress: "Callable[[TraceProgress], None] | None" = None,
        progress_interval: float = 1.0,
    ) -> None:
        self.progress = progress
        self.progress_interval = float(progress_interval)
        self.events: "List[TraceEvent]" = []
        self.stats: "dict | None" = None
        self._t0: "float | None" = None
        self._seq = 0
        self._last_progress = -float("inf")

    # ------------------------------------------------------------------ #
    def begin(self, t0: "float | None" = None) -> None:
        """Reset the trace and anchor event timestamps at ``t0``."""
        self.events = []
        self.stats = None
        self._seq = 0
        self._last_progress = -float("inf")
        self._t0 = time.perf_counter() if t0 is None else float(t0)

    def record(
        self,
        kind: str,
        bound: "float | None" = None,
        incumbent: "float | None" = None,
        detail: str = "",
    ) -> None:
        if kind not in EVENT_KINDS:
            raise InputValidationError(f"unknown trace event kind {kind!r}")
        if self._t0 is None:
            self.begin()
        self.events.append(
            TraceEvent(
                kind=kind,
                seq=self._seq,
                t=time.perf_counter() - self._t0,
                bound=None if bound is None else float(bound),
                incumbent=None if incumbent is None else float(incumbent),
                detail=detail,
            )
        )
        self._seq += 1

    def maybe_progress(
        self,
        nodes_expanded: int,
        frontier: int,
        incumbent: "float | None",
        lower_bound: "float | None",
        elapsed: float,
    ) -> None:
        """Invoke the progress callback if the interval has elapsed."""
        if self.progress is None:
            return
        if elapsed - self._last_progress < self.progress_interval:
            return
        self._last_progress = elapsed
        self.progress(
            TraceProgress(
                nodes_expanded=nodes_expanded,
                frontier=frontier,
                incumbent=incumbent,
                lower_bound=lower_bound,
                elapsed=elapsed,
            )
        )

    def finalize(self, stats) -> None:
        """Attach the final solver stats (any dataclass) to the trace."""
        self.stats = dataclasses.asdict(stats)

    # ------------------------------------------------------------------ #
    def counters(self) -> dict:
        """Recompute the :class:`BranchAndBoundStats` counters from events."""
        c = {name: 0 for name in _COUNTER_FIELDS}
        for event in self.events:
            if event.kind == "prune":
                c["nodes_expanded"] += 1
                c["nodes_pruned_after_pop"] += 1
                c["nodes_pruned"] += 1
            elif event.kind == "expand":
                c["nodes_expanded"] += 1
                if event.detail == "terminal":
                    c["terminal_nodes"] += 1
                else:
                    c["nodes_branched"] += 1
            elif event.kind == "child_pruned":
                c["children_pruned"] += 1
                c["nodes_pruned"] += 1
            elif event.kind == "infeasible":
                c["nodes_infeasible"] += 1
            elif event.kind == "incumbent":
                c["incumbent_updates"] += 1
        return c

    def stop_reason(self) -> "str | None":
        """The detail of the last ``stop`` event, if any."""
        for event in reversed(self.events):
            if event.kind == "stop":
                return event.detail
        return None

    def verify_counters(self) -> bool:
        """True when the event-derived counters match the finalized stats."""
        if self.stats is None:
            return False
        derived = self.counters()
        for name in _COUNTER_FIELDS:
            if name in self.stats and self.stats[name] != derived[name]:
                return False
        reason = self.stop_reason()
        if reason is not None and "stop_reason" in self.stats:
            if self.stats["stop_reason"] != reason:
                return False
        return True

    # ------------------------------------------------------------------ #
    def to_json(self, indent: "int | None" = None) -> str:
        payload = {
            "schema": self.SCHEMA,
            "stats": self.stats,
            "events": [dataclasses.asdict(e) for e in self.events],
        }
        return json.dumps(payload, indent=indent)

    def save(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=2))

    @classmethod
    def from_json(cls, text: str) -> "SolverTrace":
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema != cls.SCHEMA:
            raise InputValidationError(f"unsupported trace schema {schema!r}")
        trace = cls()
        trace._t0 = 0.0
        trace.stats = payload.get("stats")
        trace.events = [TraceEvent(**entry) for entry in payload.get("events", [])]
        trace._seq = len(trace.events)
        return trace

    @classmethod
    def load(cls, path) -> "SolverTrace":
        with open(path) as handle:
            return cls.from_json(handle.read())
