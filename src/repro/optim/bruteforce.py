"""Exhaustive enumeration over a discrete grid — ground truth for tests.

For small dimension and word length (the synthetic example: M = 3 at 4-8
bits) the entire feasible grid can be enumerated, giving the exact global
optimum of the LDA-FP mixed-integer program.  The test suite checks that
the branch-and-bound solver reproduces this optimum exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import OptimizationError

__all__ = ["BruteForceResult", "brute_force_minimize"]


@dataclass(frozen=True)
class BruteForceResult:
    """Best grid point found by exhaustive search."""

    x: np.ndarray
    cost: float
    evaluated: int
    feasible_count: int


def brute_force_minimize(
    grids: Sequence[np.ndarray],
    cost: Callable[[np.ndarray], float],
    feasible: Optional[Callable[[np.ndarray], bool]] = None,
    max_points: int = 5_000_000,
) -> BruteForceResult:
    """Minimize ``cost`` over the Cartesian product of per-dimension grids.

    Parameters
    ----------
    grids:
        One 1-D array of candidate values per dimension.
    cost:
        Objective evaluated at each feasible point (may return ``inf``).
    feasible:
        Optional predicate; infeasible points are skipped.
    max_points:
        Safety cap on the product size.

    Raises
    ------
    OptimizationError
        If the product exceeds ``max_points`` or no feasible point exists.
    """
    total = 1
    for grid in grids:
        total *= max(1, len(grid))
    if total > max_points:
        raise OptimizationError(
            f"grid product has {total} points, exceeding the cap of {max_points}"
        )

    best_x: "np.ndarray | None" = None
    best_cost = np.inf
    evaluated = 0
    feasible_count = 0
    for combo in itertools.product(*[np.asarray(g, dtype=np.float64) for g in grids]):
        point = np.array(combo)
        evaluated += 1
        if feasible is not None and not feasible(point):
            continue
        feasible_count += 1
        value = float(cost(point))
        if value < best_cost:
            best_cost = value
            best_x = point
    if best_x is None:
        raise OptimizationError("no feasible grid point found by brute force")
    return BruteForceResult(
        x=best_x, cost=best_cost, evaluated=evaluated, feasible_count=feasible_count
    )
