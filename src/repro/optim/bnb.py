"""Generic best-first branch-and-bound framework (paper Algorithm 1).

The framework is problem-agnostic: a :class:`BranchAndBoundProblem`
implementation supplies the relaxation (lower bound), the incumbent
heuristic (upper bound / feasible point), the branching rule, and terminal
resolution.  The driver keeps a priority queue of open boxes ordered by
lower bound, prunes nodes whose bound exceeds the incumbent (Algorithm 1
step 5), and stops when the queue is empty (proven optimality), the gap
target is met, or a node/time budget runs out — in which case the incumbent
is returned with ``proven_optimal=False`` and
``BranchAndBoundStats.stop_reason`` records why.

Parallel frontier expansion (``BranchAndBoundConfig.workers > 1``): each
round pops up to ``workers`` frontier nodes, solves their child relaxations
concurrently (``concurrent.futures``; a process pool when the problem is
picklable, threads otherwise), then *merges* the speculative expansions on
the main thread in pop order, re-applying the exact serial prune / gap /
incumbent logic against the shared incumbent.  A node whose bound loses to
an incumbent improvement made earlier in the same round is discarded along
with its speculative children — precisely as the serial driver would have
pruned it — so the merged search makes the same decisions as the serial one
and returns the same ``(cost, lower_bound, proven_optimal)``.

Telemetry: pass a :class:`~repro.optim.trace.SolverTrace` to
:meth:`BranchAndBoundSolver.solve` to record typed events (expand, prune,
infeasible, incumbent, gap progress) with a periodic progress callback and
JSON export.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import itertools
import pickle
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..errors import InputValidationError, SolverBudgetExceeded
from .boxes import Box
from .trace import SolverTrace

__all__ = [
    "Candidate",
    "Relaxation",
    "BranchAndBoundProblem",
    "BranchAndBoundConfig",
    "BranchAndBoundStats",
    "BranchAndBoundResult",
    "BranchAndBoundSolver",
    "STOP_REASONS",
]

STOP_REASONS = ("nodes", "time", "gap", "exhausted")


@dataclass(frozen=True)
class Candidate:
    """A feasible discrete point and its true cost."""

    x: np.ndarray
    cost: float


@dataclass(frozen=True)
class Relaxation:
    """Result of relaxing one node.

    Attributes
    ----------
    lower_bound:
        Valid lower bound on the discrete cost within the node's box
        (``+inf`` marks an infeasible node).
    solution:
        Minimizer of the relaxation (used to guide rounding/branching);
        ``None`` when infeasible.
    """

    lower_bound: float
    solution: Optional[np.ndarray] = None

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.lower_bound)


class BranchAndBoundProblem(Protocol):
    """The problem-specific callbacks the driver needs.

    Beyond the required methods, the driver honours two optional hooks:

    - ``relax_child(box, parent_relaxation)`` — relax a child with its
      parent's relaxation available as a warm start.  Problems that keep a
      warm-start hint as mutable state should implement this instead so the
      parallel driver can thread the correct hint per parent.
    - ``parallel_executor`` — ``"thread"`` or ``"process"``; problems whose
      relaxation reads shared mutable state (e.g. an incumbent-gated
      shortcut) should declare ``"thread"`` so workers observe it.
    """

    def initial_box(self) -> Box:
        """The root search box (paper Eq. 28-29)."""
        ...

    def relax(self, box: Box) -> Relaxation:
        """Lower bound for the box (paper Eq. 25-26)."""
        ...

    def candidates(self, box: Box, relaxation: Relaxation) -> Iterable[Candidate]:
        """Feasible discrete points found inside/near the box (Eq. 27 + rounding)."""
        ...

    def branch(self, box: Box, relaxation: Relaxation) -> Sequence[Box]:
        """Partition the box (Algorithm 1 step 4)."""
        ...

    def is_terminal(self, box: Box) -> bool:
        """True when the box is small enough to resolve by enumeration."""
        ...

    def resolve_terminal(self, box: Box) -> Iterable[Candidate]:
        """Enumerate the discrete points of a terminal box."""
        ...


@dataclass(frozen=True)
class BranchAndBoundConfig:
    """Budgets and tolerances for the driver.

    Attributes
    ----------
    max_nodes:
        Maximum nodes popped (pruned, branched, or terminal) before
        returning the incumbent.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).  Checked per
        pop, between child relaxations, and per parallel batch, so one
        expensive expansion cannot overshoot the budget by more than a
        single relaxation solve.
    absolute_gap:
        Stop when ``incumbent - best_lower_bound <= absolute_gap``.
    relative_gap:
        Stop when the gap relative to the incumbent is below this.
    strategy:
        ``"best-first"`` pops the node with the smallest lower bound
        (optimal for proving); ``"depth-first"`` pops the most recently
        created node (reaches terminal boxes — and hence exact incumbents —
        sooner under tight budgets).  Both use the same pruning, so the
        returned bounds are valid either way.
    workers:
        Frontier nodes expanded concurrently per round.  ``1`` (default)
        is the classic serial loop.  The parallel merge replays the serial
        pruning logic, so the returned result matches ``workers=1``.
    executor:
        ``"process"`` (picklable problems; true CPU parallelism),
        ``"thread"`` (shared-state problems), or ``"auto"`` — honour the
        problem's ``parallel_executor`` preference, else pick ``process``
        when the problem pickles and ``thread`` otherwise.
    """

    max_nodes: int = 200_000
    time_limit: Optional[float] = None
    absolute_gap: float = 1e-9
    relative_gap: float = 1e-9
    strategy: str = "best-first"
    workers: int = 1
    executor: str = "auto"

    def __post_init__(self) -> None:
        if self.strategy not in ("best-first", "depth-first"):
            raise InputValidationError(f"unknown strategy {self.strategy!r}")
        if self.workers < 1:
            raise InputValidationError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in ("auto", "thread", "process"):
            raise InputValidationError(f"unknown executor {self.executor!r}")


@dataclass
class BranchAndBoundStats:
    """Counters describing one solve.

    ``nodes_expanded`` counts every popped-and-processed node, so
    ``nodes_expanded == nodes_pruned_after_pop + nodes_branched +
    terminal_nodes`` holds for serial and parallel runs alike;
    ``nodes_pruned == nodes_pruned_after_pop + children_pruned``.
    """

    nodes_expanded: int = 0
    nodes_pruned: int = 0
    nodes_pruned_after_pop: int = 0
    nodes_branched: int = 0
    children_pruned: int = 0
    nodes_infeasible: int = 0
    terminal_nodes: int = 0
    incumbent_updates: int = 0
    seeds_adopted: int = 0
    rounds: int = 0
    wall_time: float = 0.0
    stop_reason: str = "exhausted"


@dataclass(frozen=True)
class BranchAndBoundResult:
    """Solution returned by the driver.

    ``proven_optimal`` is True only when the search space was exhausted (or
    closed by the gap test); a budget-limited run returns the incumbent with
    the best remaining lower bound in ``lower_bound``.
    """

    x: np.ndarray
    cost: float
    lower_bound: float
    proven_optimal: bool
    stats: BranchAndBoundStats

    @property
    def gap(self) -> float:
        return self.cost - self.lower_bound


# --------------------------------------------------------------------- #
# Parallel expansion plumbing.  ``_expand_pairs`` is the unit of work: it
# branches one parent and relaxes every child, threading the parent's
# relaxation through as the warm-start hint.  For process pools the problem
# is pickled once per worker (initializer), not once per task.
# --------------------------------------------------------------------- #

_WORKER_PROBLEM = None


def _relax_child(problem, child: Box, parent_relaxation: Relaxation) -> Relaxation:
    hook = getattr(problem, "relax_child", None)
    if hook is not None:
        return hook(child, parent_relaxation)
    return problem.relax(child)


def _expand_pairs(
    problem, box: Box, relaxation: Relaxation
) -> "List[Tuple[Box, Relaxation]]":
    return [
        (child, _relax_child(problem, child, relaxation))
        for child in problem.branch(box, relaxation)
    ]


def _init_worker(payload: bytes) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = pickle.loads(payload)


def _expand_in_worker(box: Box, relaxation: Relaxation):
    return _expand_pairs(_WORKER_PROBLEM, box, relaxation)


# Sentinel outcomes of processing one popped node.
_CONTINUE, _STOP = "continue", "stop"


class _SearchState:
    """Mutable search state shared by the serial and parallel loops."""

    def __init__(self, problem, config, stats, trace, start_time, incumbent):
        self.problem = problem
        self.config = config
        self.stats = stats
        self.trace = trace
        self.start_time = start_time
        self.best: "Candidate | None" = incumbent
        self.heap: "list[tuple[float, int, float, Box, Relaxation]]" = []
        self.ticks = itertools.count()
        self.depth_first = config.strategy == "depth-first"
        self._last_gap_bound = -np.inf

    # ------------------------------------------------------------------ #
    def elapsed(self) -> float:
        return time.perf_counter() - self.start_time

    def out_of_time(self) -> bool:
        limit = self.config.time_limit
        return limit is not None and self.elapsed() > limit

    def push(self, bound: float, box: Box, relaxation: Relaxation) -> None:
        # The heap entry is (key, tiebreak, bound, box, relaxation).  Best-
        # first keys on the bound; depth-first keys on negative creation
        # order, turning the heap into a stack while the true bound rides
        # along for pruning and gap accounting.
        tick = next(self.ticks)
        key = float(-tick) if self.depth_first else bound
        heapq.heappush(self.heap, (key, tick, bound, box, relaxation))

    def improve(self, candidates: Iterable[Candidate]) -> None:
        for cand in candidates:
            if np.isfinite(cand.cost) and (
                self.best is None or cand.cost < self.best.cost
            ):
                self.best = cand
                self.stats.incumbent_updates += 1
                self.event("incumbent", incumbent=cand.cost)

    def event(self, kind: str, **kwargs) -> None:
        if self.trace is not None:
            self.trace.record(kind, **kwargs)

    def gap_progress(self, bound: float) -> None:
        """Emit a ``gap`` event when the global remaining bound advances.

        Only meaningful for best-first, where the popped bound is the
        global minimum over the frontier at pop time.
        """
        if self.trace is None or self.depth_first or self.best is None:
            return
        reported = min(bound, self.best.cost)
        if reported > self._last_gap_bound:
            self._last_gap_bound = reported
            self.event("gap", bound=reported, incumbent=self.best.cost)

    def progress_tick(self) -> None:
        if self.trace is None or self.trace.progress is None:
            return
        lower = min((entry[2] for entry in self.heap), default=None)
        if lower is not None and self.best is not None:
            lower = min(lower, self.best.cost)
        self.trace.maybe_progress(
            nodes_expanded=self.stats.nodes_expanded,
            frontier=len(self.heap),
            incumbent=None if self.best is None else self.best.cost,
            lower_bound=lower,
            elapsed=self.elapsed(),
        )


class BranchAndBoundSolver:
    """Best-first branch-and-bound driver (serial or batched-parallel)."""

    def __init__(self, config: "BranchAndBoundConfig | None" = None) -> None:
        self.config = config or BranchAndBoundConfig()

    def solve(
        self,
        problem: BranchAndBoundProblem,
        initial_incumbent: "Candidate | None" = None,
        trace: "SolverTrace | None" = None,
        seed_candidates: "Sequence[Candidate] | None" = None,
    ) -> BranchAndBoundResult:
        """Run the search.

        Parameters
        ----------
        problem:
            The problem callbacks.
        initial_incumbent:
            Optional warm-start feasible point (e.g. rounded conventional
            LDA) — the paper's heuristics rely on a good incumbent to prune
            early.
        trace:
            Optional :class:`SolverTrace` receiving typed events, the
            periodic progress callback, and the final stats.
        seed_candidates:
            Extra pre-validated feasible points (e.g. a requantized solution
            from an adjacent word length).  A seed replaces the starting
            incumbent only when its cost is *strictly* better, so a run with
            redundant seeds returns exactly what the unseeded run returns;
            ``stats.seeds_adopted`` counts the replacements.  The caller is
            responsible for feasibility — the driver only rejects non-finite
            costs.

        Raises
        ------
        SolverBudgetExceeded
            Only if the budget expires with *no* feasible point found.
        """
        config = self.config
        stats = BranchAndBoundStats()
        start_time = time.perf_counter()
        incumbent = initial_incumbent
        for seed in seed_candidates or ():
            if not np.isfinite(seed.cost):
                raise InputValidationError(
                    f"seed candidate has non-finite cost {seed.cost!r}"
                )
            if incumbent is None or seed.cost < incumbent.cost:
                incumbent = seed
                stats.seeds_adopted += 1
        if trace is not None:
            trace.begin(start_time)
            trace.record(
                "start",
                incumbent=None if incumbent is None else incumbent.cost,
            )

        state = _SearchState(problem, config, stats, trace, start_time, incumbent)
        root = problem.initial_box()
        root_relax = problem.relax(root)
        if root_relax.feasible:
            state.improve(problem.candidates(root, root_relax))
            state.push(root_relax.lower_bound, root, root_relax)
        else:
            stats.nodes_infeasible += 1
            state.event("infeasible", bound=np.inf, detail="root")

        if config.workers <= 1:
            self._run_serial(state)
        else:
            self._run_parallel(state)

        stats.wall_time = time.perf_counter() - start_time
        best = state.best
        if best is None:
            if trace is not None:
                trace.record("stop", detail=stats.stop_reason)
                trace.finalize(stats)
            raise SolverBudgetExceeded(
                "branch-and-bound found no feasible point within its budget"
            )
        remaining_bound = min((entry[2] for entry in state.heap), default=best.cost)
        proven = not state.heap or self._gap_closed(best.cost, remaining_bound, config)
        result = BranchAndBoundResult(
            x=best.x,
            cost=best.cost,
            lower_bound=min(remaining_bound, best.cost),
            proven_optimal=proven,
            stats=stats,
        )
        if trace is not None:
            trace.record(
                "stop",
                bound=result.lower_bound,
                incumbent=result.cost,
                detail=stats.stop_reason,
            )
            trace.finalize(stats)
        return result

    # ------------------------------------------------------------------ #
    def _run_serial(self, st: _SearchState) -> None:
        config, stats = self.config, st.stats
        while st.heap:
            if stats.nodes_expanded >= config.max_nodes:
                stats.stop_reason = "nodes"
                return
            if st.out_of_time():
                stats.stop_reason = "time"
                return
            _, _, bound, box, relaxation = heapq.heappop(st.heap)
            if self._process_node(st, bound, box, relaxation, precomputed=None) is _STOP:
                return
            st.progress_tick()
        # Heap drained: proven optimality by exhaustion.
        stats.stop_reason = "exhausted"

    def _run_parallel(self, st: _SearchState) -> None:
        config, stats = self.config, st.stats
        executor, submit = self._make_executor(st.problem)
        try:
            while st.heap:
                if stats.nodes_expanded >= config.max_nodes:
                    stats.stop_reason = "nodes"
                    return
                if st.out_of_time():
                    stats.stop_reason = "time"
                    return

                # ---- pop a batch of up to `workers` survivors ---------- #
                batch: "list[tuple[float, Box, Relaxation]]" = []
                pops = 0
                gap_seen = False
                node_budget = config.max_nodes - stats.nodes_expanded
                while st.heap and len(batch) < config.workers and pops < node_budget:
                    _, _, bound, box, relaxation = heapq.heappop(st.heap)
                    best = st.best
                    if best is not None and bound > best.cost - config.absolute_gap:
                        pops += 1
                        stats.nodes_expanded += 1
                        stats.nodes_pruned_after_pop += 1
                        stats.nodes_pruned += 1
                        st.event("prune", bound=bound, incumbent=best.cost)
                        continue
                    if (
                        best is not None
                        and not st.depth_first
                        and self._gap_closed(best.cost, bound, config)
                    ):
                        # The incumbent is unchanged since the last merge, so
                        # the serial driver would stop at this pop too — after
                        # first processing the nodes already in the batch.
                        st.push(bound, box, relaxation)
                        gap_seen = True
                        break
                    pops += 1
                    batch.append((bound, box, relaxation))

                if not batch:
                    if gap_seen:
                        stats.stop_reason = "gap"
                        st.event(
                            "gap",
                            bound=min(st.heap[0][2], st.best.cost),
                            incumbent=st.best.cost,
                            detail="closed",
                        )
                        return
                    continue  # only pruned pops this round; re-check budgets

                # ---- speculative expansion ----------------------------- #
                stats.rounds += 1
                jobs: "list[tuple[float, Box, Relaxation, object]]" = []
                for bound, box, relaxation in batch:
                    future = (
                        None
                        if st.problem.is_terminal(box)
                        else submit(box, relaxation)
                    )
                    jobs.append((bound, box, relaxation, future))
                # Wait for the whole round before merging: merging mutates
                # the shared incumbent, which thread-pool workers may read.
                concurrent.futures.wait(
                    [f for _, _, _, f in jobs if f is not None]
                )

                # ---- deterministic merge in pop order ------------------ #
                for index, (bound, box, relaxation, future) in enumerate(jobs):
                    if st.out_of_time():
                        for rest_bound, rest_box, rest_relax, _ in jobs[index:]:
                            st.push(rest_bound, rest_box, rest_relax)
                        stats.stop_reason = "time"
                        return
                    pairs = None if future is None else future.result()
                    outcome = self._process_node(
                        st, bound, box, relaxation, precomputed=pairs
                    )
                    if outcome is _STOP:
                        for rest_bound, rest_box, rest_relax, _ in jobs[index + 1 :]:
                            st.push(rest_bound, rest_box, rest_relax)
                        return
                st.progress_tick()
            stats.stop_reason = "exhausted"
        finally:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    def _process_node(
        self,
        st: _SearchState,
        bound: float,
        box: Box,
        relaxation: Relaxation,
        precomputed: "List[Tuple[Box, Relaxation]] | None",
    ) -> str:
        """Apply the serial pop logic to one node (children may be precomputed).

        Returns ``_STOP`` when the search should end (gap closed or time
        budget expired), ``_CONTINUE`` otherwise.
        """
        config, stats = self.config, st.stats
        best = st.best
        if best is not None and bound > best.cost - config.absolute_gap:
            stats.nodes_expanded += 1
            stats.nodes_pruned_after_pop += 1
            stats.nodes_pruned += 1
            st.event("prune", bound=bound, incumbent=best.cost)
            return _CONTINUE
        if (
            best is not None
            and not st.depth_first
            and self._gap_closed(best.cost, bound, config)
        ):
            # Best-first pops bounds in increasing order, so the popped
            # bound is the global remaining bound and the gap is closed.
            st.push(bound, box, relaxation)
            stats.stop_reason = "gap"
            st.event(
                "gap", bound=min(bound, best.cost), incumbent=best.cost, detail="closed"
            )
            return _STOP
        st.gap_progress(bound)

        stats.nodes_expanded += 1
        if st.problem.is_terminal(box):
            stats.terminal_nodes += 1
            st.event(
                "expand",
                bound=bound,
                incumbent=None if best is None else best.cost,
                detail="terminal",
            )
            st.improve(st.problem.resolve_terminal(box))
            return _CONTINUE

        stats.nodes_branched += 1
        if precomputed is not None:
            st.event(
                "expand",
                bound=bound,
                incumbent=None if best is None else best.cost,
                detail=f"branch:{len(precomputed)}",
            )
            for index, (child, child_relax) in enumerate(precomputed):
                if st.out_of_time():
                    # Remaining children are already relaxed: push them with
                    # their own (valid) bounds, skipping candidate work.
                    for rest_child, rest_relax in precomputed[index:]:
                        if rest_relax.feasible:
                            st.push(rest_relax.lower_bound, rest_child, rest_relax)
                        else:
                            stats.nodes_infeasible += 1
                            st.event("infeasible", bound=np.inf)
                    stats.stop_reason = "time"
                    return _STOP
                self._consume_child(st, child, child_relax)
            return _CONTINUE

        child_boxes = list(st.problem.branch(box, relaxation))
        st.event(
            "expand",
            bound=bound,
            incumbent=None if best is None else best.cost,
            detail=f"branch:{len(child_boxes)}",
        )
        for index, child in enumerate(child_boxes):
            if st.out_of_time():
                # Unrelaxed children inherit the parent's bound, which is a
                # valid lower bound for any subset of the parent box, so the
                # returned lower_bound stays sound under a mid-node stop.
                for rest in child_boxes[index:]:
                    st.push(bound, rest, relaxation)
                stats.stop_reason = "time"
                return _STOP
            child_relax = _relax_child(st.problem, child, relaxation)
            self._consume_child(st, child, child_relax)
        return _CONTINUE

    def _consume_child(self, st: _SearchState, child: Box, child_relax: Relaxation) -> None:
        stats = st.stats
        if not child_relax.feasible:
            stats.nodes_infeasible += 1
            st.event("infeasible", bound=np.inf)
            return
        st.improve(st.problem.candidates(child, child_relax))
        if (
            st.best is not None
            and child_relax.lower_bound > st.best.cost - self.config.absolute_gap
        ):
            stats.children_pruned += 1
            stats.nodes_pruned += 1
            st.event(
                "child_pruned",
                bound=child_relax.lower_bound,
                incumbent=st.best.cost,
            )
            return
        st.push(child_relax.lower_bound, child, child_relax)

    # ------------------------------------------------------------------ #
    def _make_executor(self, problem):
        """Build the round executor: (executor, submit(box, relaxation))."""
        workers = self.config.workers
        mode = self.config.executor
        payload: "bytes | None" = None
        if mode == "auto":
            mode = getattr(problem, "parallel_executor", None)
            if mode not in ("thread", "process"):
                try:
                    payload = pickle.dumps(problem)
                    mode = "process"
                except Exception:
                    mode = "thread"
        if mode == "process":
            try:
                if payload is None:
                    payload = pickle.dumps(problem)
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(payload,),
                )
                return executor, lambda box, relax: executor.submit(
                    _expand_in_worker, box, relax
                )
            except Exception:
                pass  # non-picklable or no process support: thread fallback
        executor = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        return executor, lambda box, relax: executor.submit(
            _expand_pairs, problem, box, relax
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _gap_closed(incumbent: float, bound: float, config: BranchAndBoundConfig) -> bool:
        gap = incumbent - bound
        if gap <= config.absolute_gap:
            return True
        scale = max(abs(incumbent), 1e-12)
        return gap / scale <= config.relative_gap
