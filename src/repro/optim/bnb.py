"""Generic best-first branch-and-bound framework (paper Algorithm 1).

The framework is problem-agnostic: a :class:`BranchAndBoundProblem`
implementation supplies the relaxation (lower bound), the incumbent
heuristic (upper bound / feasible point), the branching rule, and terminal
resolution.  The driver keeps a priority queue of open boxes ordered by
lower bound, prunes nodes whose bound exceeds the incumbent (Algorithm 1
step 5), and stops when the queue is empty (proven optimality), the gap
target is met, or a node/time budget runs out — in which case the incumbent
is returned with ``proven_optimal=False`` and
``BranchAndBoundStats.stop_reason`` records why.

Parallel frontier expansion (``BranchAndBoundConfig.workers > 1``): each
round pops up to ``workers`` frontier nodes, solves their child relaxations
concurrently (``concurrent.futures``; a process pool when the problem is
picklable, threads otherwise — the resolved choice and any fallback reason
are recorded in :class:`BranchAndBoundStats` and the trace), then *merges*
the speculative expansions on the main thread in pop order, re-applying the
exact serial prune / gap / incumbent logic against the shared incumbent.  A
node whose bound loses to an incumbent improvement made earlier in the same
round is discarded along with its speculative children — precisely as the
serial driver would have pruned it — so the merged search makes the same
decisions as the serial one and returns the same
``(cost, lower_bound, proven_optimal)``.

Determinism across executor modes rests on two invariants.  First, heap
ties on equal bounds break on a monotone sequence counter assigned at push
time, and pushes happen in merge (= pop) order, so serial, thread, and
process runs expand byte-identical node sequences.  Second, every
incumbent-dependent decision made *inside* a relaxation is driven by the
incumbent snapshot recorded when the node was pushed (threaded through
``relax_child_with_incumbent``), never by live shared state — a process
worker holding a stale problem copy therefore returns exactly what the
serial driver would have computed.

Branching: the default (``branching="problem"``) delegates to
``problem.branch``.  ``branching="pseudocost"`` keeps per-dimension
degradation averages (how much each child's bound rose per quantum of
width, separately for the down/up child) and branches on the dimension
with the best product score, falling back to the problem's fixed order
(``branch_dimension`` hook, else widest-in-quanta) until both sides of
every candidate dimension have been observed.  The branching dimension is
chosen at *push* time from the table state at that sequence point, so
pseudocost runs are also executor-deterministic.

Telemetry: pass a :class:`~repro.optim.trace.SolverTrace` to
:meth:`BranchAndBoundSolver.solve` to record typed events (expand, prune,
infeasible, incumbent, gap progress, executor resolution) with a periodic
progress callback and JSON export.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import itertools
import multiprocessing
import pickle
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..errors import InputValidationError, SolverBudgetExceeded
from .boxes import Box
from .trace import SolverTrace

__all__ = [
    "Candidate",
    "Relaxation",
    "BranchAndBoundProblem",
    "BranchAndBoundConfig",
    "BranchAndBoundStats",
    "BranchAndBoundResult",
    "BranchAndBoundSolver",
    "PseudocostTable",
    "STOP_REASONS",
]

STOP_REASONS = ("nodes", "time", "gap", "exhausted")


@dataclass(frozen=True)
class Candidate:
    """A feasible discrete point and its true cost."""

    x: np.ndarray
    cost: float


@dataclass(frozen=True)
class Relaxation:
    """Result of relaxing one node.

    Attributes
    ----------
    lower_bound:
        Valid lower bound on the discrete cost within the node's box
        (``+inf`` marks an infeasible node).
    solution:
        Minimizer of the relaxation (used to guide rounding/branching);
        ``None`` when infeasible.
    """

    lower_bound: float
    solution: Optional[np.ndarray] = None

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.lower_bound)


class BranchAndBoundProblem(Protocol):
    """The problem-specific callbacks the driver needs.

    Beyond the required methods, the driver honours several optional hooks:

    - ``relax_child(box, parent_relaxation)`` — relax a child with its
      parent's relaxation available as a warm start.
    - ``relax_child_with_incumbent(box, parent_relaxation, incumbent)`` —
      like ``relax_child`` but additionally receives the incumbent cost
      snapshot recorded when the parent was pushed.  Problems whose
      relaxation takes incumbent-dependent shortcuts (analytic skips,
      objective-based presolve) must use this snapshot instead of shared
      mutable state so process workers reproduce the serial decisions.
    - ``branch_dimension(box, relaxation)`` — the problem's fixed-order
      branching dimension; consulted by pseudocost branching before its
      table is initialized.
    - ``branch_override(box, relaxation)`` — return child boxes to force a
      structural split (e.g. separating a symmetric half-space), or
      ``None`` to let the active branching rule decide.  Consulted only
      under ``branching="pseudocost"`` (``problem.branch`` subsumes it in
      the default mode).
    - ``counters_snapshot()`` / ``counters_absorb(delta)`` — export and
      re-import problem-side counters (e.g. relaxations solved) so process
      workers' tallies survive the round trip.
    - ``parallel_executor`` — ``"thread"`` or ``"process"``; problems whose
      relaxation reads shared mutable state (e.g. an incumbent-gated
      shortcut) should declare ``"thread"`` so workers observe it.
    """

    def initial_box(self) -> Box:
        """The root search box (paper Eq. 28-29)."""
        ...

    def relax(self, box: Box) -> Relaxation:
        """Lower bound for the box (paper Eq. 25-26)."""
        ...

    def candidates(self, box: Box, relaxation: Relaxation) -> Iterable[Candidate]:
        """Feasible discrete points found inside/near the box (Eq. 27 + rounding)."""
        ...

    def branch(self, box: Box, relaxation: Relaxation) -> Sequence[Box]:
        """Partition the box (Algorithm 1 step 4)."""
        ...

    def is_terminal(self, box: Box) -> bool:
        """True when the box is small enough to resolve by enumeration."""
        ...

    def resolve_terminal(self, box: Box) -> Iterable[Candidate]:
        """Enumerate the discrete points of a terminal box."""
        ...


@dataclass(frozen=True)
class BranchAndBoundConfig:
    """Budgets and tolerances for the driver.

    Attributes
    ----------
    max_nodes:
        Maximum nodes popped (pruned, branched, or terminal) before
        returning the incumbent.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).  Checked per
        pop, between child relaxations (including inside parallel workers,
        which receive the deadline), and the parallel round wait itself is
        deadline-capped — so ``stop_reason="time"`` fires within about one
        child relaxation of the budget even with in-flight speculative
        expansions.
    absolute_gap:
        Stop when ``incumbent - best_lower_bound <= absolute_gap``.
    relative_gap:
        Stop when the gap relative to the incumbent is below this.
    strategy:
        ``"best-first"`` pops the node with the smallest lower bound
        (optimal for proving); ``"depth-first"`` pops the most recently
        created node (reaches terminal boxes — and hence exact incumbents —
        sooner under tight budgets).  Both use the same pruning, so the
        returned bounds are valid either way.
    workers:
        Frontier nodes expanded concurrently per round.  ``1`` (default)
        is the classic serial loop.  The parallel merge replays the serial
        pruning logic, so the returned result matches ``workers=1``.
    executor:
        ``"process"`` (picklable problems; true CPU parallelism),
        ``"thread"`` (shared-state problems), or ``"auto"`` — honour the
        problem's ``parallel_executor`` preference, else pick ``process``
        when the problem pickles and ``thread`` otherwise.  The resolved
        mode and any fallback reason land in ``BranchAndBoundStats`` and
        the trace's ``executor`` event.
    branching:
        ``"problem"`` delegates every split to ``problem.branch``;
        ``"pseudocost"`` branches on per-dimension degradation averages
        (see the module docstring), falling back to the problem's fixed
        order until the table is initialized.
    """

    max_nodes: int = 200_000
    time_limit: Optional[float] = None
    absolute_gap: float = 1e-9
    relative_gap: float = 1e-9
    strategy: str = "best-first"
    workers: int = 1
    executor: str = "auto"
    branching: str = "problem"

    def __post_init__(self) -> None:
        if self.strategy not in ("best-first", "depth-first"):
            raise InputValidationError(f"unknown strategy {self.strategy!r}")
        if self.workers < 1:
            raise InputValidationError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in ("auto", "thread", "process"):
            raise InputValidationError(f"unknown executor {self.executor!r}")
        if self.branching not in ("problem", "pseudocost"):
            raise InputValidationError(f"unknown branching {self.branching!r}")


@dataclass
class BranchAndBoundStats:
    """Counters describing one solve.

    ``nodes_expanded`` counts every popped-and-processed node, so
    ``nodes_expanded == nodes_pruned_after_pop + nodes_branched +
    terminal_nodes`` holds for serial and parallel runs alike;
    ``nodes_pruned == nodes_pruned_after_pop + children_pruned``.

    ``executor`` records how the frontier actually ran: ``"serial"`` for
    ``workers=1``, else the resolved ``"thread"`` / ``"process"`` mode;
    ``executor_fallback`` carries the reason when the resolution was a
    fallback (e.g. the problem failed to pickle) instead of hiding it.
    """

    nodes_expanded: int = 0
    nodes_pruned: int = 0
    nodes_pruned_after_pop: int = 0
    nodes_branched: int = 0
    children_pruned: int = 0
    nodes_infeasible: int = 0
    terminal_nodes: int = 0
    incumbent_updates: int = 0
    seeds_adopted: int = 0
    rounds: int = 0
    wall_time: float = 0.0
    stop_reason: str = "exhausted"
    executor: str = "serial"
    executor_fallback: str = ""


@dataclass(frozen=True)
class BranchAndBoundResult:
    """Solution returned by the driver.

    ``proven_optimal`` is True only when the search space was exhausted (or
    closed by the gap test); a budget-limited run returns the incumbent with
    the best remaining lower bound in ``lower_bound``.
    """

    x: np.ndarray
    cost: float
    lower_bound: float
    proven_optimal: bool
    stats: BranchAndBoundStats

    @property
    def gap(self) -> float:
        return self.cost - self.lower_bound


class PseudocostTable:
    """Per-dimension degradation averages for pseudocost branching.

    For every branched dimension the table records, separately for the
    down (first) and up (second) child, the average *unit gain*: how much
    the child's lower bound rose above the parent's per quantum of child
    width.  The score of a candidate dimension is the product of both
    sides' predicted degradations (the classic product rule), and a
    dimension only participates once both sides have at least one
    observation.  Infeasible children record a large capped gain — cutting
    off a whole half-box is the best outcome branching can have.
    """

    #: cap on a single observed unit gain (an infeasible child is mapped
    #: here); keeps the averages finite and the ordering deterministic.
    GAIN_CAP = 1e6

    def __init__(self, ndim: int) -> None:
        self.sums = np.zeros((2, ndim))
        self.counts = np.zeros((2, ndim), dtype=np.int64)

    def observe(self, dim: int, side: int, unit_gain: float) -> None:
        self.sums[side, dim] += min(max(unit_gain, 0.0), self.GAIN_CAP)
        self.counts[side, dim] += 1

    def initialized(self, dim: int) -> bool:
        return bool(self.counts[0, dim] > 0 and self.counts[1, dim] > 0)

    def score(self, dim: int, half_width: float) -> float:
        """Predicted product degradation of splitting ``dim``."""
        down = self.sums[0, dim] / max(self.counts[0, dim], 1)
        up = self.sums[1, dim] / max(self.counts[1, dim], 1)
        return max(down * half_width, 1e-12) * max(up * half_width, 1e-12)


# --------------------------------------------------------------------- #
# Parallel expansion plumbing.  ``_expand_pairs`` is the unit of work: it
# branches one parent and relaxes every child, threading the parent's
# relaxation and the push-time incumbent snapshot through, and checking the
# wall-clock deadline between children (a child skipped on deadline is
# returned with ``None`` in place of its relaxation and inherits the parent
# bound at merge).  For process pools the problem is pickled once per
# worker (initializer), not once per task.
# --------------------------------------------------------------------- #

_WORKER_PROBLEM = None


def _relax_child(
    problem, child: Box, parent_relaxation: Relaxation, ctx: float = np.inf
) -> Relaxation:
    hook = getattr(problem, "relax_child_with_incumbent", None)
    if hook is not None:
        return hook(child, parent_relaxation, ctx)
    hook = getattr(problem, "relax_child", None)
    if hook is not None:
        return hook(child, parent_relaxation)
    return problem.relax(child)


def _branch_children(
    problem, box: Box, relaxation: Relaxation, dim: "int | None"
) -> "Tuple[List[Box], int | None]":
    """The node's children plus the dimension actually split (None when the
    problem's own rule or an override produced them)."""
    if dim is None:
        return list(problem.branch(box, relaxation)), None
    override = getattr(problem, "branch_override", None)
    if override is not None:
        forced = override(box, relaxation)
        if forced is not None:
            return list(forced), None
    return list(box.split(dim)), dim


def _expand_pairs(
    problem,
    box: Box,
    relaxation: Relaxation,
    ctx: float = np.inf,
    dim: "int | None" = None,
    deadline: "float | None" = None,
) -> "Tuple[List[Tuple[Box, Relaxation | None]], int | None]":
    children, used_dim = _branch_children(problem, box, relaxation, dim)
    pairs: "List[Tuple[Box, Relaxation | None]]" = []
    for child in children:
        # perf_counter is CLOCK_MONOTONIC-based and system-wide on the
        # platforms we support, so a deadline stamped by the driver is
        # comparable inside a worker process.  A skew would only delay the
        # stop, never affect correctness.
        if deadline is not None and time.perf_counter() > deadline:
            pairs.append((child, None))
            continue
        pairs.append((child, _relax_child(problem, child, relaxation, ctx)))
    return pairs, used_dim


def _expand_local(problem, box, relaxation, ctx, dim, deadline):
    pairs, used_dim = _expand_pairs(problem, box, relaxation, ctx, dim, deadline)
    return pairs, used_dim, None  # counters already live on the shared object


def _init_worker(payload: bytes) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = pickle.loads(payload)


def _expand_in_worker(box: Box, relaxation: Relaxation, ctx, dim, deadline):
    problem = _WORKER_PROBLEM
    snapshot = getattr(problem, "counters_snapshot", None)
    before = snapshot() if snapshot is not None else None
    pairs, used_dim = _expand_pairs(problem, box, relaxation, ctx, dim, deadline)
    delta = None
    if before is not None:
        after = snapshot()
        delta = {key: after[key] - before.get(key, 0) for key in after}
    return pairs, used_dim, delta


# Sentinel outcomes of processing one popped node.
_CONTINUE, _STOP = "continue", "stop"


class _SearchState:
    """Mutable search state shared by the serial and parallel loops."""

    def __init__(self, problem, config, stats, trace, start_time, incumbent):
        self.problem = problem
        self.config = config
        self.stats = stats
        self.trace = trace
        self.start_time = start_time
        self.best: "Candidate | None" = incumbent
        # Heap entries: (key, tick, bound, box, relaxation, ctx, dim).
        self.heap: "list[tuple]" = []
        self.ticks = itertools.count()
        self.depth_first = config.strategy == "depth-first"
        self.pseudocosts: "PseudocostTable | None" = None
        self._last_gap_bound = -np.inf

    # ------------------------------------------------------------------ #
    def elapsed(self) -> float:
        return time.perf_counter() - self.start_time

    def deadline(self) -> "float | None":
        limit = self.config.time_limit
        return None if limit is None else self.start_time + limit

    def out_of_time(self) -> bool:
        limit = self.config.time_limit
        return limit is not None and self.elapsed() > limit

    def push(self, bound: float, box: Box, relaxation: Relaxation) -> None:
        # The heap entry is (key, tiebreak, bound, box, relaxation, ctx,
        # dim).  Best-first keys on the bound; depth-first keys on negative
        # creation order, turning the heap into a stack while the true
        # bound rides along for pruning and gap accounting.  The tiebreak
        # tick is assigned here, in push (= merge = pop) order, which is
        # identical across serial/thread/process runs — this is what pins
        # equal-bound ties deterministically.  ``ctx`` snapshots the
        # incumbent cost and ``dim`` the pseudocost branching choice at the
        # same sequence point, so expansion decisions never depend on when
        # (or where) the node is later expanded.
        tick = next(self.ticks)
        key = float(-tick) if self.depth_first else bound
        ctx = np.inf if self.best is None else self.best.cost
        dim = None if self.pseudocosts is None else self.choose_dimension(box, relaxation)
        heapq.heappush(self.heap, (key, tick, bound, box, relaxation, ctx, dim))

    def choose_dimension(self, box: Box, relaxation: Relaxation) -> "int | None":
        """Pseudocost branching choice (falls back to the fixed order)."""
        table = self.pseudocosts
        candidates = [
            d
            for d in range(box.ndim)
            if (
                box.steps[d] > 0
                and box.grid_count(d) >= 2
            )
            or (box.steps[d] <= 0 and box.hi[d] - box.lo[d] > 0)
        ]
        if not candidates:
            return None  # nothing to split: defer to problem.branch
        if table is not None and all(table.initialized(d) for d in candidates):
            widths = box.widths_in_quanta()
            best_dim, best_score = candidates[0], -np.inf
            for d in candidates:
                score = table.score(d, 0.5 * widths[d])
                if score > best_score:
                    best_dim, best_score = d, score
            return best_dim
        hook = getattr(self.problem, "branch_dimension", None)
        if hook is not None:
            fixed = int(hook(box, relaxation))
            if fixed in candidates:
                return fixed
        widths = box.widths_in_quanta()
        best_dim, best_width = candidates[0], -np.inf
        for d in candidates:
            if widths[d] > best_width:
                best_dim, best_width = d, widths[d]
        return best_dim

    def improve(self, candidates: Iterable[Candidate]) -> None:
        for cand in candidates:
            if np.isfinite(cand.cost) and (
                self.best is None or cand.cost < self.best.cost
            ):
                self.best = cand
                self.stats.incumbent_updates += 1
                self.event("incumbent", incumbent=cand.cost)

    def event(self, kind: str, **kwargs) -> None:
        if self.trace is not None:
            self.trace.record(kind, **kwargs)

    def gap_progress(self, bound: float) -> None:
        """Emit a ``gap`` event when the global remaining bound advances.

        Only meaningful for best-first, where the popped bound is the
        global minimum over the frontier at pop time.
        """
        if self.trace is None or self.depth_first or self.best is None:
            return
        reported = min(bound, self.best.cost)
        if reported > self._last_gap_bound:
            self._last_gap_bound = reported
            self.event("gap", bound=reported, incumbent=self.best.cost)

    def progress_tick(self) -> None:
        if self.trace is None or self.trace.progress is None:
            return
        lower = min((entry[2] for entry in self.heap), default=None)
        if lower is not None and self.best is not None:
            lower = min(lower, self.best.cost)
        self.trace.maybe_progress(
            nodes_expanded=self.stats.nodes_expanded,
            frontier=len(self.heap),
            incumbent=None if self.best is None else self.best.cost,
            lower_bound=lower,
            elapsed=self.elapsed(),
        )


class BranchAndBoundSolver:
    """Best-first branch-and-bound driver (serial or batched-parallel)."""

    def __init__(self, config: "BranchAndBoundConfig | None" = None) -> None:
        self.config = config or BranchAndBoundConfig()

    def solve(
        self,
        problem: BranchAndBoundProblem,
        initial_incumbent: "Candidate | None" = None,
        trace: "SolverTrace | None" = None,
        seed_candidates: "Sequence[Candidate] | None" = None,
    ) -> BranchAndBoundResult:
        """Run the search.

        Parameters
        ----------
        problem:
            The problem callbacks.
        initial_incumbent:
            Optional warm-start feasible point (e.g. rounded conventional
            LDA) — the paper's heuristics rely on a good incumbent to prune
            early.
        trace:
            Optional :class:`SolverTrace` receiving typed events, the
            periodic progress callback, and the final stats.
        seed_candidates:
            Extra pre-validated feasible points (e.g. a requantized solution
            from an adjacent word length).  A seed replaces the starting
            incumbent only when its cost is *strictly* better, so a run with
            redundant seeds returns exactly what the unseeded run returns;
            ``stats.seeds_adopted`` counts the replacements.  The caller is
            responsible for feasibility — the driver only rejects non-finite
            costs.

        Raises
        ------
        SolverBudgetExceeded
            Only if the budget expires with *no* feasible point found.
        """
        config = self.config
        stats = BranchAndBoundStats()
        start_time = time.perf_counter()
        incumbent = initial_incumbent
        for seed in seed_candidates or ():
            if not np.isfinite(seed.cost):
                raise InputValidationError(
                    f"seed candidate has non-finite cost {seed.cost!r}"
                )
            if incumbent is None or seed.cost < incumbent.cost:
                incumbent = seed
                stats.seeds_adopted += 1
        if trace is not None:
            trace.begin(start_time)
            trace.record(
                "start",
                incumbent=None if incumbent is None else incumbent.cost,
            )

        state = _SearchState(problem, config, stats, trace, start_time, incumbent)
        root = problem.initial_box()
        if config.branching == "pseudocost":
            state.pseudocosts = PseudocostTable(root.ndim)
        root_relax = problem.relax(root)
        if root_relax.feasible:
            state.improve(problem.candidates(root, root_relax))
            state.push(root_relax.lower_bound, root, root_relax)
        else:
            stats.nodes_infeasible += 1
            state.event("infeasible", bound=np.inf, detail="root")

        if config.workers <= 1:
            self._run_serial(state)
        else:
            self._run_parallel(state)

        stats.wall_time = time.perf_counter() - start_time
        best = state.best
        if best is None:
            if trace is not None:
                trace.record("stop", detail=stats.stop_reason)
                trace.finalize(stats)
            raise SolverBudgetExceeded(
                "branch-and-bound found no feasible point within its budget"
            )
        remaining_bound = min((entry[2] for entry in state.heap), default=best.cost)
        proven = not state.heap or self._gap_closed(best.cost, remaining_bound, config)
        result = BranchAndBoundResult(
            x=best.x,
            cost=best.cost,
            lower_bound=min(remaining_bound, best.cost),
            proven_optimal=proven,
            stats=stats,
        )
        if trace is not None:
            trace.record(
                "stop",
                bound=result.lower_bound,
                incumbent=result.cost,
                detail=stats.stop_reason,
            )
            trace.finalize(stats)
        return result

    # ------------------------------------------------------------------ #
    def _run_serial(self, st: _SearchState) -> None:
        config, stats = self.config, st.stats
        while st.heap:
            if stats.nodes_expanded >= config.max_nodes:
                stats.stop_reason = "nodes"
                return
            if st.out_of_time():
                stats.stop_reason = "time"
                return
            _, _, bound, box, relaxation, ctx, dim = heapq.heappop(st.heap)
            outcome = self._process_node(
                st, bound, box, relaxation, ctx, dim, precomputed=None
            )
            if outcome is _STOP:
                return
            st.progress_tick()
        # Heap drained: proven optimality by exhaustion.
        stats.stop_reason = "exhausted"

    def _run_parallel(self, st: _SearchState) -> None:
        config, stats = self.config, st.stats
        executor, submit, mode, fallback = self._make_executor(st.problem)
        stats.executor = mode
        stats.executor_fallback = fallback
        st.event(
            "executor",
            detail=mode if not fallback else f"{mode}: {fallback}",
        )
        deadline = st.deadline()
        try:
            while st.heap:
                if stats.nodes_expanded >= config.max_nodes:
                    stats.stop_reason = "nodes"
                    return
                if st.out_of_time():
                    stats.stop_reason = "time"
                    return

                # ---- pop a batch of up to `workers` survivors ---------- #
                batch: "list[tuple]" = []
                pops = 0
                gap_seen = False
                node_budget = config.max_nodes - stats.nodes_expanded
                while st.heap and len(batch) < config.workers and pops < node_budget:
                    _, _, bound, box, relaxation, ctx, dim = heapq.heappop(st.heap)
                    best = st.best
                    if best is not None and bound > best.cost - config.absolute_gap:
                        pops += 1
                        stats.nodes_expanded += 1
                        stats.nodes_pruned_after_pop += 1
                        stats.nodes_pruned += 1
                        st.event("prune", bound=bound, incumbent=best.cost)
                        continue
                    if (
                        best is not None
                        and not st.depth_first
                        and self._gap_closed(best.cost, bound, config)
                    ):
                        # The incumbent is unchanged since the last merge, so
                        # the serial driver would stop at this pop too — after
                        # first processing the nodes already in the batch.
                        st.push(bound, box, relaxation)
                        gap_seen = True
                        break
                    pops += 1
                    batch.append((bound, box, relaxation, ctx, dim))

                if not batch:
                    if gap_seen:
                        stats.stop_reason = "gap"
                        st.event(
                            "gap",
                            bound=min(st.heap[0][2], st.best.cost),
                            incumbent=st.best.cost,
                            detail="closed",
                        )
                        return
                    continue  # only pruned pops this round; re-check budgets

                # ---- speculative expansion ----------------------------- #
                stats.rounds += 1
                jobs: "list[tuple]" = []
                for bound, box, relaxation, ctx, dim in batch:
                    future = (
                        None
                        if st.problem.is_terminal(box)
                        else submit(box, relaxation, ctx, dim, deadline)
                    )
                    jobs.append((bound, box, relaxation, ctx, dim, future))
                # Wait for the round before merging (merging mutates the
                # shared incumbent, which thread-pool workers may read) —
                # but never past the time budget: workers self-terminate at
                # the deadline, and whatever is still pending after it gets
                # pushed back unexpanded.
                futures = [job[5] for job in jobs if job[5] is not None]
                if futures:
                    timeout = (
                        None
                        if deadline is None
                        else max(deadline - time.perf_counter(), 0.0)
                    )
                    done, not_done = concurrent.futures.wait(futures, timeout=timeout)
                    for future in not_done:
                        future.cancel()

                # ---- deterministic merge in pop order ------------------ #
                for index, (bound, box, relaxation, ctx, dim, future) in enumerate(
                    jobs
                ):
                    unfinished = future is not None and (
                        future.cancelled() or not future.done()
                    )
                    if st.out_of_time() or unfinished:
                        for rest in jobs[index:]:
                            st.push(rest[0], rest[1], rest[2])
                        stats.stop_reason = "time"
                        return
                    if future is None:
                        precomputed = None
                    else:
                        pairs, used_dim, delta = future.result()
                        if delta:
                            absorb = getattr(st.problem, "counters_absorb", None)
                            if absorb is not None:
                                absorb(delta)
                        precomputed = (pairs, used_dim)
                    outcome = self._process_node(
                        st, bound, box, relaxation, ctx, dim, precomputed=precomputed
                    )
                    if outcome is _STOP:
                        for rest in jobs[index + 1 :]:
                            st.push(rest[0], rest[1], rest[2])
                        return
                st.progress_tick()
            stats.stop_reason = "exhausted"
        finally:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    def _process_node(
        self,
        st: _SearchState,
        bound: float,
        box: Box,
        relaxation: Relaxation,
        ctx: float,
        dim: "int | None",
        precomputed: "Tuple[List[Tuple[Box, Relaxation | None]], int | None] | None",
    ) -> str:
        """Apply the serial pop logic to one node (children may be precomputed).

        Returns ``_STOP`` when the search should end (gap closed or time
        budget expired), ``_CONTINUE`` otherwise.
        """
        config, stats = self.config, st.stats
        best = st.best
        if best is not None and bound > best.cost - config.absolute_gap:
            stats.nodes_expanded += 1
            stats.nodes_pruned_after_pop += 1
            stats.nodes_pruned += 1
            st.event("prune", bound=bound, incumbent=best.cost)
            return _CONTINUE
        if (
            best is not None
            and not st.depth_first
            and self._gap_closed(best.cost, bound, config)
        ):
            # Best-first pops bounds in increasing order, so the popped
            # bound is the global remaining bound and the gap is closed.
            st.push(bound, box, relaxation)
            stats.stop_reason = "gap"
            st.event(
                "gap", bound=min(bound, best.cost), incumbent=best.cost, detail="closed"
            )
            return _STOP
        st.gap_progress(bound)

        stats.nodes_expanded += 1
        if st.problem.is_terminal(box):
            stats.terminal_nodes += 1
            st.event(
                "expand",
                bound=bound,
                incumbent=None if best is None else best.cost,
                detail="terminal",
            )
            st.improve(st.problem.resolve_terminal(box))
            return _CONTINUE

        stats.nodes_branched += 1
        if precomputed is not None:
            pairs, used_dim = precomputed
            st.event(
                "expand",
                bound=bound,
                incumbent=None if best is None else best.cost,
                detail=f"branch:{len(pairs)}",
            )
            for index, (child, child_relax) in enumerate(pairs):
                if st.out_of_time():
                    # Remaining children: already-relaxed ones keep their
                    # own (valid) bounds, deadline-skipped ones inherit the
                    # parent's.
                    for rest_child, rest_relax in pairs[index:]:
                        if rest_relax is None:
                            st.push(bound, rest_child, relaxation)
                        elif rest_relax.feasible:
                            st.push(rest_relax.lower_bound, rest_child, rest_relax)
                        else:
                            stats.nodes_infeasible += 1
                            st.event("infeasible", bound=np.inf)
                    stats.stop_reason = "time"
                    return _STOP
                if child_relax is None:
                    # The worker hit the deadline before relaxing this
                    # child: the parent's bound is still valid for it.
                    st.push(bound, child, relaxation)
                    continue
                self._observe_branching(st, used_dim, index, bound, child, child_relax)
                self._consume_child(st, child, child_relax)
            return _CONTINUE

        children, used_dim = _branch_children(st.problem, box, relaxation, dim)
        st.event(
            "expand",
            bound=bound,
            incumbent=None if best is None else best.cost,
            detail=f"branch:{len(children)}",
        )
        for index, child in enumerate(children):
            if st.out_of_time():
                # Unrelaxed children inherit the parent's bound, which is a
                # valid lower bound for any subset of the parent box, so the
                # returned lower_bound stays sound under a mid-node stop.
                for rest in children[index:]:
                    st.push(bound, rest, relaxation)
                stats.stop_reason = "time"
                return _STOP
            child_relax = _relax_child(st.problem, child, relaxation, ctx)
            self._observe_branching(st, used_dim, index, bound, child, child_relax)
            self._consume_child(st, child, child_relax)
        return _CONTINUE

    def _observe_branching(
        self,
        st: _SearchState,
        used_dim: "int | None",
        side: int,
        parent_bound: float,
        child: Box,
        child_relax: Relaxation,
    ) -> None:
        """Feed one child's bound degradation into the pseudocost table.

        Runs at the merge sequence point (before the child is consumed), so
        serial and parallel runs build byte-identical tables.
        """
        table = st.pseudocosts
        if table is None or used_dim is None or side > 1:
            return
        half_width = max(float(child.widths_in_quanta()[used_dim]), 1e-12)
        gain = child_relax.lower_bound - parent_bound
        if not np.isfinite(gain):
            table.observe(used_dim, side, PseudocostTable.GAIN_CAP)
        else:
            table.observe(used_dim, side, gain / half_width)

    def _consume_child(self, st: _SearchState, child: Box, child_relax: Relaxation) -> None:
        stats = st.stats
        if not child_relax.feasible:
            stats.nodes_infeasible += 1
            st.event("infeasible", bound=np.inf)
            return
        st.improve(st.problem.candidates(child, child_relax))
        if (
            st.best is not None
            and child_relax.lower_bound > st.best.cost - self.config.absolute_gap
        ):
            stats.children_pruned += 1
            stats.nodes_pruned += 1
            st.event(
                "child_pruned",
                bound=child_relax.lower_bound,
                incumbent=st.best.cost,
            )
            return
        st.push(child_relax.lower_bound, child, child_relax)

    # ------------------------------------------------------------------ #
    def _make_executor(self, problem):
        """Build the round executor.

        Returns ``(executor, submit, resolved_mode, fallback_reason)``;
        ``submit(box, relaxation, ctx, dim, deadline)`` schedules one
        expansion.  ``fallback_reason`` is non-empty whenever the resolved
        mode is not the one a process-capable problem would have gotten —
        the silent thread fallback was exactly how a 0.95x "parallel"
        speedup hid for a whole release.
        """
        workers = self.config.workers
        mode = self.config.executor
        reason = ""
        payload: "bytes | None" = None
        if mode == "auto":
            declared = getattr(problem, "parallel_executor", None)
            if declared in ("thread", "process"):
                mode = declared
                if declared == "thread":
                    reason = "problem declares parallel_executor='thread'"
            else:
                try:
                    payload = pickle.dumps(problem)
                    mode = "process"
                except Exception as exc:
                    mode = "thread"
                    reason = (
                        f"problem does not pickle: {type(exc).__name__}: {exc}"
                    )[:200]
        if mode == "process" and multiprocessing.current_process().daemon:
            # A daemonic worker (e.g. a wordlength-sweep process chunk)
            # cannot spawn children; ProcessPoolExecutor would only fail at
            # first submit, so degrade to threads up front — with the
            # reason recorded, never silently.
            mode = "thread"
            reason = "nested in a daemonic worker process: cannot spawn children"
        if mode == "process":
            try:
                if payload is None:
                    payload = pickle.dumps(problem)
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(payload,),
                )
                return (
                    executor,
                    lambda box, relax, ctx, dim, deadline: executor.submit(
                        _expand_in_worker, box, relax, ctx, dim, deadline
                    ),
                    "process",
                    reason,
                )
            except Exception as exc:
                reason = (
                    f"process pool unavailable: {type(exc).__name__}: {exc}"
                )[:200]
        executor = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        return (
            executor,
            lambda box, relax, ctx, dim, deadline: executor.submit(
                _expand_local, problem, box, relax, ctx, dim, deadline
            ),
            "thread",
            reason,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _gap_closed(incumbent: float, bound: float, config: BranchAndBoundConfig) -> bool:
        gap = incumbent - bound
        if gap <= config.absolute_gap:
            return True
        scale = max(abs(incumbent), 1e-12)
        return gap / scale <= config.relative_gap
