"""Generic best-first branch-and-bound framework (paper Algorithm 1).

The framework is problem-agnostic: a :class:`BranchAndBoundProblem`
implementation supplies the relaxation (lower bound), the incumbent
heuristic (upper bound / feasible point), the branching rule, and terminal
resolution.  The driver keeps a priority queue of open boxes ordered by
lower bound, prunes nodes whose bound exceeds the incumbent (Algorithm 1
step 5), and stops when the queue is empty (proven optimality), the gap
target is met, or a node/time budget runs out — in which case the incumbent
is returned with ``proven_optimal=False``.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Generic, Iterable, Optional, Protocol, Sequence, Tuple, TypeVar

import numpy as np

from ..errors import SolverBudgetExceeded
from .boxes import Box

__all__ = [
    "Candidate",
    "Relaxation",
    "BranchAndBoundProblem",
    "BranchAndBoundConfig",
    "BranchAndBoundStats",
    "BranchAndBoundResult",
    "BranchAndBoundSolver",
]


@dataclass(frozen=True)
class Candidate:
    """A feasible discrete point and its true cost."""

    x: np.ndarray
    cost: float


@dataclass(frozen=True)
class Relaxation:
    """Result of relaxing one node.

    Attributes
    ----------
    lower_bound:
        Valid lower bound on the discrete cost within the node's box
        (``+inf`` marks an infeasible node).
    solution:
        Minimizer of the relaxation (used to guide rounding/branching);
        ``None`` when infeasible.
    """

    lower_bound: float
    solution: Optional[np.ndarray] = None

    @property
    def feasible(self) -> bool:
        return np.isfinite(self.lower_bound)


class BranchAndBoundProblem(Protocol):
    """The problem-specific callbacks the driver needs."""

    def initial_box(self) -> Box:
        """The root search box (paper Eq. 28-29)."""
        ...

    def relax(self, box: Box) -> Relaxation:
        """Lower bound for the box (paper Eq. 25-26)."""
        ...

    def candidates(self, box: Box, relaxation: Relaxation) -> Iterable[Candidate]:
        """Feasible discrete points found inside/near the box (Eq. 27 + rounding)."""
        ...

    def branch(self, box: Box, relaxation: Relaxation) -> Sequence[Box]:
        """Partition the box (Algorithm 1 step 4)."""
        ...

    def is_terminal(self, box: Box) -> bool:
        """True when the box is small enough to resolve by enumeration."""
        ...

    def resolve_terminal(self, box: Box) -> Iterable[Candidate]:
        """Enumerate the discrete points of a terminal box."""
        ...


@dataclass(frozen=True)
class BranchAndBoundConfig:
    """Budgets and tolerances for the driver.

    Attributes
    ----------
    max_nodes:
        Maximum nodes expanded before returning the incumbent.
    time_limit:
        Wall-clock budget in seconds (``None`` = unlimited).
    absolute_gap:
        Stop when ``incumbent - best_lower_bound <= absolute_gap``.
    relative_gap:
        Stop when the gap relative to the incumbent is below this.
    strategy:
        ``"best-first"`` pops the node with the smallest lower bound
        (optimal for proving); ``"depth-first"`` pops the most recently
        created node (reaches terminal boxes — and hence exact incumbents —
        sooner under tight budgets).  Both use the same pruning, so the
        returned bounds are valid either way.
    """

    max_nodes: int = 200_000
    time_limit: Optional[float] = None
    absolute_gap: float = 1e-9
    relative_gap: float = 1e-9
    strategy: str = "best-first"

    def __post_init__(self) -> None:
        if self.strategy not in ("best-first", "depth-first"):
            raise ValueError(f"unknown strategy {self.strategy!r}")


@dataclass
class BranchAndBoundStats:
    """Counters describing one solve."""

    nodes_expanded: int = 0
    nodes_pruned: int = 0
    nodes_infeasible: int = 0
    terminal_nodes: int = 0
    incumbent_updates: int = 0
    wall_time: float = 0.0


@dataclass(frozen=True)
class BranchAndBoundResult:
    """Solution returned by the driver.

    ``proven_optimal`` is True only when the search space was exhausted (or
    closed by the gap test); a budget-limited run returns the incumbent with
    the best remaining lower bound in ``lower_bound``.
    """

    x: np.ndarray
    cost: float
    lower_bound: float
    proven_optimal: bool
    stats: BranchAndBoundStats

    @property
    def gap(self) -> float:
        return self.cost - self.lower_bound


class BranchAndBoundSolver:
    """Best-first branch-and-bound driver."""

    def __init__(self, config: "BranchAndBoundConfig | None" = None) -> None:
        self.config = config or BranchAndBoundConfig()

    def solve(
        self,
        problem: BranchAndBoundProblem,
        initial_incumbent: "Candidate | None" = None,
    ) -> BranchAndBoundResult:
        """Run the search.

        Parameters
        ----------
        problem:
            The problem callbacks.
        initial_incumbent:
            Optional warm-start feasible point (e.g. rounded conventional
            LDA) — the paper's heuristics rely on a good incumbent to prune
            early.

        Raises
        ------
        SolverBudgetExceeded
            Only if the budget expires with *no* feasible point found.
        """
        config = self.config
        stats = BranchAndBoundStats()
        start_time = time.perf_counter()

        best: "Candidate | None" = initial_incumbent
        root = problem.initial_box()
        root_relax = problem.relax(root)
        depth_first = config.strategy == "depth-first"
        raw_counter = itertools.count()
        # The heap entry is (key, tiebreak, bound, box, relaxation).  Best-
        # first keys on the bound; depth-first keys on negative creation
        # order, turning the heap into a stack while the true bound rides
        # along for pruning and gap accounting.
        heap: "list[tuple[float, int, float, Box, Relaxation]]" = []

        def push(bound: float, box: Box, relaxation: Relaxation) -> None:
            tick = next(raw_counter)
            key = float(-tick) if depth_first else bound
            heapq.heappush(heap, (key, tick, bound, box, relaxation))

        if root_relax.feasible:
            best = self._improve(best, problem.candidates(root, root_relax), stats)
            push(root_relax.lower_bound, root, root_relax)
        else:
            stats.nodes_infeasible += 1

        while heap:
            if stats.nodes_expanded >= config.max_nodes:
                break
            if (
                config.time_limit is not None
                and time.perf_counter() - start_time > config.time_limit
            ):
                break

            _, _, bound, box, relaxation = heapq.heappop(heap)
            if best is not None and bound > best.cost - config.absolute_gap:
                stats.nodes_pruned += 1
                continue
            if (
                best is not None
                and not depth_first
                and self._gap_closed(best.cost, bound, config)
            ):
                # Best-first pops bounds in increasing order, so the popped
                # bound is the global remaining bound and the gap is closed.
                push(bound, box, relaxation)
                break

            stats.nodes_expanded += 1
            if problem.is_terminal(box):
                stats.terminal_nodes += 1
                best = self._improve(best, problem.resolve_terminal(box), stats)
                continue

            for child in problem.branch(box, relaxation):
                child_relax = problem.relax(child)
                if not child_relax.feasible:
                    stats.nodes_infeasible += 1
                    continue
                best = self._improve(best, problem.candidates(child, child_relax), stats)
                if best is not None and child_relax.lower_bound > best.cost - config.absolute_gap:
                    stats.nodes_pruned += 1
                    continue
                push(child_relax.lower_bound, child, child_relax)

        stats.wall_time = time.perf_counter() - start_time
        if best is None:
            raise SolverBudgetExceeded(
                "branch-and-bound found no feasible point within its budget"
            )
        remaining_bound = min((entry[2] for entry in heap), default=best.cost)
        proven = not heap or self._gap_closed(best.cost, remaining_bound, config)
        return BranchAndBoundResult(
            x=best.x,
            cost=best.cost,
            lower_bound=min(remaining_bound, best.cost),
            proven_optimal=proven,
            stats=stats,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _gap_closed(incumbent: float, bound: float, config: BranchAndBoundConfig) -> bool:
        gap = incumbent - bound
        if gap <= config.absolute_gap:
            return True
        scale = max(abs(incumbent), 1e-12)
        return gap / scale <= config.relative_gap

    @staticmethod
    def _improve(
        best: "Candidate | None", candidates: Iterable[Candidate], stats: BranchAndBoundStats
    ) -> "Candidate | None":
        for cand in candidates:
            if np.isfinite(cand.cost) and (best is None or cand.cost < best.cost):
                best = cand
                stats.incumbent_updates += 1
        return best
