"""From-scratch log-barrier interior-point solver for :class:`ConeProgram`.

Standard path-following scheme (Boyd & Vandenberghe ch. 11, the paper's
reference [18]): minimize ``t f0(w) + phi(w)`` for increasing ``t``, where
``phi`` sums ``-log(-(a'w - b))`` over linear rows and the canonical SOC
barrier ``-log((c'w+d)^2 - ||Gw+h||^2)`` over cone constraints.  Inner
minimization is damped Newton with a feasibility-preserving backtracking
line search; the Newton system is solved by our own Cholesky with a
gradient-descent fallback if the Hessian is numerically degenerate.

A strictly feasible start is produced by :func:`find_strictly_feasible`,
which tries cheap analytic candidates first (box center, origin) and falls
back to an SLSQP phase-I minimization of the maximum violation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ..errors import InfeasibleProblemError, InputValidationError
from ..linalg.cholesky import cholesky
from ..linalg.triangular import solve_lower, solve_upper
from .cone import ConeProgram

__all__ = ["BarrierResult", "BarrierSolver", "find_strictly_feasible"]


@dataclass(frozen=True)
class BarrierResult:
    """Outcome of a barrier solve.

    Attributes
    ----------
    x:
        Final (strictly feasible) iterate.
    objective:
        ``0.5 x'Px + q'x + r`` at ``x``.
    duality_gap:
        Barrier suboptimality bound ``m / t`` at termination — the returned
        objective is within this of the true optimum.
    newton_iterations:
        Total inner Newton steps across all centering problems.
    converged:
        False when the iteration budget ran out before the gap target.
    """

    x: np.ndarray
    objective: float
    duality_gap: float
    newton_iterations: int
    converged: bool


def find_strictly_feasible(
    program: ConeProgram, hint: "np.ndarray | None" = None, margin: float = 1e-9
) -> np.ndarray:
    """Return a strictly feasible point of ``program``.

    Tries, in order: the caller's hint (clipped to the box and pulled
    slightly inside), the box center, the origin, then an SLSQP phase-I
    that minimizes the soft maximum of all constraint values.

    Raises
    ------
    InfeasibleProblemError
        If no strictly feasible point can be found.
    """
    lo, hi = program.lower, program.upper
    interior_lo = lo + 1e-9 * np.maximum(1.0, np.abs(lo))
    interior_hi = hi - 1e-9 * np.maximum(1.0, np.abs(hi))
    if np.any(interior_lo > interior_hi):
        # Degenerate (zero-width) box: strict interiority impossible.
        raise InfeasibleProblemError("box has empty interior")

    candidates = []
    if hint is not None:
        candidates.append(np.clip(np.asarray(hint, dtype=np.float64), interior_lo, interior_hi))
    candidates.append(0.5 * (lo + hi))
    origin = np.zeros(program.num_vars)
    candidates.append(np.clip(origin, interior_lo, interior_hi))
    for cand in candidates:
        if program.is_strictly_feasible(cand, margin=margin):
            return cand

    # Phase I: minimize a smooth penalty of violations starting from the
    # box center.  Sum of squared hinge violations is smooth and zero only
    # on the feasible set's interior-adjacent boundary; we then nudge inward.
    A, b = program.stacked_linear()
    socs = program.socs

    def penalty(w: np.ndarray) -> float:
        total = 0.0
        if b.size:
            violation = np.maximum(0.0, A @ w - b + margin)
            total += float(violation @ violation)
        for soc in socs:
            total += max(0.0, soc.residual(w) + margin) ** 2
        return total

    start = 0.5 * (lo + hi)
    result = minimize(
        penalty,
        start,
        method="SLSQP",
        bounds=list(zip(interior_lo, interior_hi)),
        options={"maxiter": 200, "ftol": 1e-14},
    )
    point = np.clip(result.x, interior_lo, interior_hi)
    if program.is_strictly_feasible(point, margin=margin * 0.1):
        return point
    # One more attempt with a tighter margin request via Nelder-Mead polish.
    result2 = minimize(penalty, point, method="Nelder-Mead", options={"maxiter": 500, "fatol": 1e-16})
    point2 = np.clip(result2.x, interior_lo, interior_hi)
    if program.is_strictly_feasible(point2, margin=margin * 0.01):
        return point2
    raise InfeasibleProblemError(
        f"phase-I could not find a strictly feasible point "
        f"(residual penalty {penalty(point):.3e})"
    )


class BarrierSolver:
    """Log-barrier path-following solver.

    Parameters
    ----------
    t0:
        Initial barrier weight on the objective.
    mu:
        Multiplicative increase of ``t`` per outer (centering) iteration.
    gap_tol:
        Target duality gap ``m / t``.
    max_newton:
        Per-centering Newton iteration cap.
    max_outer:
        Cap on the number of centering problems.
    """

    def __init__(
        self,
        t0: float = 1.0,
        mu: float = 20.0,
        gap_tol: float = 1e-9,
        max_newton: int = 80,
        max_outer: int = 60,
    ) -> None:
        if mu <= 1.0:
            raise InputValidationError(f"mu must exceed 1, got {mu}")
        self.t0 = float(t0)
        self.mu = float(mu)
        self.gap_tol = float(gap_tol)
        self.max_newton = int(max_newton)
        self.max_outer = int(max_outer)

    # ------------------------------------------------------------------ #
    def solve(self, program: ConeProgram, x0: "np.ndarray | None" = None) -> BarrierResult:
        """Solve ``program`` to the configured duality gap."""
        x = find_strictly_feasible(program, hint=x0)
        A, b = program.stacked_linear()
        num_constraints = b.size + len(program.socs)
        if num_constraints == 0:
            # Unconstrained QP: solve P x = -q directly.
            x = np.linalg.lstsq(program.P, -program.q, rcond=None)[0]
            return BarrierResult(x, program.objective(x), 0.0, 0, True)

        t = self.t0
        total_newton = 0
        converged = False
        for _ in range(self.max_outer):
            x, steps = self._center(program, A, b, x, t)
            total_newton += steps
            gap = num_constraints / t
            if gap < self.gap_tol:
                converged = True
                break
            t *= self.mu
        return BarrierResult(
            x=x,
            objective=program.objective(x),
            duality_gap=num_constraints / t,
            newton_iterations=total_newton,
            converged=converged,
        )

    # ------------------------------------------------------------------ #
    def _barrier_value(
        self, program: ConeProgram, A: np.ndarray, b: np.ndarray, x: np.ndarray, t: float
    ) -> float:
        value = t * program.objective(x)
        if b.size:
            slack = b - A @ x
            if np.any(slack <= 0.0):
                return math.inf
            value -= float(np.sum(np.log(slack)))
        for soc in program.socs:
            if soc.rhs(x) <= 0.0:
                return math.inf
            gap = soc.gap(x)
            if gap <= 0.0:
                return math.inf
            value -= math.log(gap)
        return value

    def _barrier_grad_hess(
        self, program: ConeProgram, A: np.ndarray, b: np.ndarray, x: np.ndarray, t: float
    ) -> "tuple[np.ndarray, np.ndarray]":
        grad = t * program.objective_grad(x)
        hess = t * program.P.copy()
        if b.size:
            inv_slack = 1.0 / (b - A @ x)
            grad += A.T @ inv_slack
            scaled = A * inv_slack[:, None]
            hess += scaled.T @ scaled
        for soc in program.socs:
            gap = soc.gap(x)
            g = soc.gap_grad(x)
            h = soc.gap_hess(x)
            grad += -g / gap
            hess += np.outer(g, g) / (gap * gap) - h / gap
        return grad, hess

    def _center(
        self, program: ConeProgram, A: np.ndarray, b: np.ndarray, x: np.ndarray, t: float
    ) -> "tuple[np.ndarray, int]":
        """Damped Newton minimization of the centering objective."""
        steps = 0
        for _ in range(self.max_newton):
            grad, hess = self._barrier_grad_hess(program, A, b, x, t)
            step = self._newton_step(hess, grad)
            decrement = float(-grad @ step)
            if decrement / 2.0 <= 1e-12:
                break
            x = self._line_search(program, A, b, x, step, grad, t)
            steps += 1
        return x, steps

    def _newton_step(self, hess: np.ndarray, grad: np.ndarray) -> np.ndarray:
        n = grad.shape[0]
        scale = max(1.0, float(np.max(np.abs(hess))))
        for jitter in (0.0, 1e-12, 1e-9, 1e-6, 1e-3):
            try:
                lower = cholesky(hess, jitter=jitter * scale)
                y = solve_lower(lower, -grad)
                return solve_upper(lower.T, y)
            except Exception:
                continue
        # Hessian hopeless: gradient descent direction, scaled.
        norm = float(np.linalg.norm(grad))
        if norm == 0.0:
            return np.zeros(n)
        return -grad / norm

    def _line_search(
        self,
        program: ConeProgram,
        A: np.ndarray,
        b: np.ndarray,
        x: np.ndarray,
        step: np.ndarray,
        grad: np.ndarray,
        t: float,
        alpha: float = 0.25,
        beta: float = 0.5,
    ) -> np.ndarray:
        """Backtracking line search that never leaves the strict interior."""
        base = self._barrier_value(program, A, b, x, t)
        slope = float(grad @ step)
        size = 1.0
        for _ in range(60):
            trial = x + size * step
            value = self._barrier_value(program, A, b, trial, t)
            if math.isfinite(value) and value <= base + alpha * size * slope:
                return trial
            size *= beta
        return x  # no progress possible along this direction


def solve_cone_program(
    program: ConeProgram, x0: "np.ndarray | None" = None, **solver_kwargs
) -> BarrierResult:
    """Convenience one-shot barrier solve."""
    return BarrierSolver(**solver_kwargs).solve(program, x0=x0)
