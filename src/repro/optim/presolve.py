"""Presolve for box-constrained branch-and-bound nodes (MIP-style reductions).

A :class:`Presolver` holds the *static* structure of one problem instance —
linear rows ``a'w <= b`` (the single-variable Eq. 18 overflow rows and the
axis outer-approximations of the Eq. 20 cones), the linear link ``t = d'w``,
the grid steps, and optionally the diagonal of the inverse objective matrix
— and tightens a node's ``(w, t)`` intervals with three classic reductions:

1. **Feasibility-based bound tightening (FBBT)** over every linear row and
   the ``t``-link, iterated to a (capped) fixpoint.  Removes only points
   that violate a constraint or cannot realize any ``t`` in the node's
   interval, so it is exact: no feasible point of the node is lost.
2. **Grid snapping**: discrete bounds move inward to the outermost grid
   point, turning "no representable value in this sliver" into either a
   tighter box or an infeasibility verdict.
3. **Incumbent ellipsoid reduction** ("dual fixing by objective"): for any
   ``w`` in the node, ``cost(w) >= w_i^2 / (eta * (S^-1)_ii)`` where
   ``eta = sup t^2`` over the node's ``t`` interval, because
   ``min { w'S w : w_i = v } = v^2 / (S^-1)_ii``.  Any ``w_i`` beyond
   ``sqrt(c_inc * eta * (S^-1)_ii)`` therefore costs *strictly* more than
   the incumbent ``c_inc`` and can be cut; equal-cost points are kept, so
   the search still returns the exact optimal cost.  When the reduction
   pins an interval's sign (or a single grid point), that is the classic
   dual sign-fix, and :class:`PresolveStats` counts it.
4. **Spectral cone reduction** (needs the full objective matrix ``S`` and
   a finite incumbent): every improving point satisfies
   ``cost(w) = w'Sw / (d'w)^2 <= c``, i.e. ``w'(S - c dd')w <= 0``.
   ``S`` is PSD and ``c dd'`` rank one, so by eigenvalue interlacing
   ``M = S - c dd'`` has at most one negative eigenvalue ``lambda_0``
   (eigenvector ``u_0`` — the cone axis, essentially the continuous
   Fisher direction).  In the eigenbasis the constraint reads
   ``sum_i lambda_i y_i^2 <= 0`` with ``y = U'w``, hence for every
   transverse direction ``|u_i'w| <= sqrt(|lambda_0| / lambda_i) *
   max_box |u_0'w|``.  Each round contributes these as two linear FBBT
   rows per transverse direction, recomputed as the box shrinks.  With a
   near-optimal incumbent the improving set is a thin tube around the
   Fisher ray, so whole boxes off the ray become infeasible without a
   single cone solve — on *both* sides of ``t = 0``.

The presolver is pure (no references back to the problem object) and built
from plain arrays, so it pickles with the problem and runs identically in
serial, thread, and process workers — a prerequisite for the deterministic
parallel merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import InputValidationError

__all__ = ["Presolver", "PresolveResult", "PresolveStats"]

# Tolerance discipline: every tightening keeps a hair of slack so points
# exactly on a boundary are never cut by floating-point rounding.
_EDGE_TOL = 1e-12
_GRID_TOL = 1e-9  # matches Box.grid_values


@dataclass(frozen=True)
class PresolveStats:
    """What one presolve call did to the node."""

    rounds: int = 0
    tightenings: int = 0
    signs_fixed: int = 0
    dual_fixed: int = 0
    infeasible: bool = False


@dataclass(frozen=True)
class PresolveResult:
    """Tightened intervals (or an infeasibility verdict) for one node."""

    w_lo: np.ndarray
    w_hi: np.ndarray
    t_lo: float
    t_hi: float
    stats: PresolveStats

    @property
    def feasible(self) -> bool:
        return not self.stats.infeasible


def _snap_interval(lo: float, hi: float, step: float) -> "tuple[float, float]":
    """Move ``[lo, hi]`` inward to the outermost grid multiples of ``step``."""
    snapped_lo = np.ceil(lo / step - _GRID_TOL) * step
    snapped_hi = np.floor(hi / step + _GRID_TOL) * step
    return float(snapped_lo), float(snapped_hi)


class Presolver:
    """Node-interval tightening from the static constraint structure.

    Parameters
    ----------
    rows_a, rows_b:
        Linear rows ``rows_a @ w <= rows_b`` valid for every feasible point
        (Eq. 18 expansions plus SOC axis outer-approximations).  May be
        empty (``shape (0, m)``).
    d:
        The linear link coefficients: ``t = d'w``.
    steps:
        Grid step per ``w`` dimension (``> 0``; the LDA-FP weights are all
        discrete).
    obj_inv_diag:
        ``diag(S^-1)`` of the quadratic objective numerator, enabling the
        incumbent ellipsoid reduction; ``None`` disables that pass (e.g.
        singular ``S``).
    obj_matrix:
        The full objective numerator matrix ``S`` (``cost = w'Sw /
        (d'w)^2``), enabling the spectral cone reduction; ``None``
        disables it.
    max_rounds:
        Fixpoint iteration cap per call.
    """

    def __init__(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        d: np.ndarray,
        steps: np.ndarray,
        obj_inv_diag: "np.ndarray | None" = None,
        obj_matrix: "np.ndarray | None" = None,
        max_rounds: int = 3,
    ) -> None:
        self.rows_b = np.asarray(rows_b, dtype=np.float64).reshape(-1)
        self.d = np.asarray(d, dtype=np.float64)
        rows = np.asarray(rows_a, dtype=np.float64)
        self.rows_a = (
            rows.reshape(len(self.rows_b), -1)
            if self.rows_b.size
            else rows.reshape(0, self.d.size)
        )
        self.steps = np.asarray(steps, dtype=np.float64)
        self.obj_inv_diag = (
            None if obj_inv_diag is None else np.asarray(obj_inv_diag, dtype=np.float64)
        )
        self.obj_matrix = (
            None if obj_matrix is None else np.asarray(obj_matrix, dtype=np.float64)
        )
        self.max_rounds = int(max_rounds)
        m = self.d.size
        if self.rows_a.size and self.rows_a.shape[1] != m:
            raise InputValidationError(
                f"rows have {self.rows_a.shape[1]} columns, expected {m}"
            )
        if np.any(self.steps <= 0):
            raise InputValidationError("presolver requires positive grid steps")
        if self.obj_inv_diag is not None and np.any(self.obj_inv_diag <= 0):
            # A non-positive inverse diagonal means the ellipsoid bound is
            # vacuous for that dimension; disable the pass outright.
            self.obj_inv_diag = None
        if self.obj_matrix is not None and (
            self.obj_matrix.shape != (m, m) or not np.all(np.isfinite(self.obj_matrix))
        ):
            raise InputValidationError(f"obj_matrix must be finite with shape ({m}, {m})")

    # ------------------------------------------------------------------ #
    def _spectral_cone(
        self, incumbent: float
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray] | None":
        """Cone axis, transverse directions, and amplitude ratios of the
        improving set ``{w : w'(S - c dd')w <= 0}``.

        Returns ``(axis, dirs, ratios)`` with ``|dirs[k]'w| <= ratios[k] *
        max_box |axis'w|`` for every improving ``w``, or ``None`` when the
        reduction does not apply.  The incumbent gets the same equal-cost
        slack as the ellipsoid pass, so ties survive.  Stateless — safe
        under concurrent thread-executor calls.
        """
        if self.obj_matrix is None or not np.isfinite(incumbent) or incumbent < 0:
            return None
        c_eff = incumbent * (1.0 + 1e-9) + _EDGE_TOL
        m_mat = self.obj_matrix - c_eff * np.outer(self.d, self.d)
        try:
            eigvals, eigvecs = np.linalg.eigh(m_mat)
        except np.linalg.LinAlgError:
            return None
        lam0 = max(-float(eigvals[0]), 0.0)
        keep = eigvals > max(1e-12, 1e-12 * float(np.abs(eigvals).max()))
        if not np.any(keep):
            return None
        dirs = eigvecs[:, keep].T
        ratios = np.sqrt(lam0 / eigvals[keep])
        return eigvecs[:, 0], dirs, ratios

    # ------------------------------------------------------------------ #
    def presolve(
        self,
        w_lo: np.ndarray,
        w_hi: np.ndarray,
        t_lo: float,
        t_hi: float,
        incumbent: float = np.inf,
        max_rounds: "int | None" = None,
    ) -> PresolveResult:
        """Tighten one node's intervals; never excludes a feasible point
        whose cost is <= ``incumbent``."""
        round_cap = self.max_rounds if max_rounds is None else int(max_rounds)
        lo = np.asarray(w_lo, dtype=np.float64).copy()
        hi = np.asarray(w_hi, dtype=np.float64).copy()
        t_lo, t_hi = float(t_lo), float(t_hi)
        entry_straddle = (lo < -_EDGE_TOL) & (hi > _EDGE_TOL)
        tightenings = 0
        rounds = 0
        spectral = self._spectral_cone(incumbent)

        def fail(rounds: int) -> PresolveResult:
            stats = PresolveStats(
                rounds=rounds, tightenings=tightenings, infeasible=True
            )
            return PresolveResult(lo, hi, t_lo, t_hi, stats)

        for rounds in range(1, round_cap + 1):
            changed = False

            # --- t-link: intersect t with the interval image of d'w ----- #
            contrib_lo = np.minimum(self.d * lo, self.d * hi)
            contrib_hi = np.maximum(self.d * lo, self.d * hi)
            image_lo = float(np.sum(contrib_lo))
            image_hi = float(np.sum(contrib_hi))
            new_t_lo = max(t_lo, image_lo)
            new_t_hi = min(t_hi, image_hi)
            if new_t_hi < new_t_lo - _EDGE_TOL:
                return fail(rounds)
            if new_t_lo > t_lo + _EDGE_TOL or new_t_hi < t_hi - _EDGE_TOL:
                changed = True
                tightenings += 1
            t_lo, t_hi = min(new_t_lo, new_t_hi), new_t_hi

            # --- FBBT over the rows plus the two t-link rows ------------ #
            if self.rows_a.size:
                rows_a = np.vstack([self.rows_a, self.d, -self.d])
                rows_b = np.concatenate([self.rows_b, [t_hi, -t_lo]])
            else:
                rows_a = np.vstack([self.d, -self.d])
                rows_b = np.array([t_hi, -t_lo])
            if spectral is not None:
                # Spectral cone rows: the transverse extent of the node is
                # capped by its extent along the cone axis (recomputed each
                # round — the cap shrinks with the box).
                axis, dirs, ratios = spectral
                axis_hi = float(np.sum(np.maximum(axis * lo, axis * hi)))
                axis_lo = float(np.sum(np.minimum(axis * lo, axis * hi)))
                axis_max = max(abs(axis_lo), abs(axis_hi))
                amp = ratios * axis_max * (1.0 + 1e-9) + _EDGE_TOL
                rows_a = np.vstack([rows_a, dirs, -dirs])
                rows_b = np.concatenate([rows_b, amp, amp])
            r_contrib_lo = np.minimum(rows_a * lo, rows_a * hi)
            row_lo = np.sum(r_contrib_lo, axis=1)
            if np.any(row_lo > rows_b + 1e-9):
                return fail(rounds)
            other_lo = row_lo[:, None] - r_contrib_lo
            margin = rows_b[:, None] - other_lo  # a_ri * w_i <= margin_ri
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = margin / rows_a
            pos = rows_a > _EDGE_TOL
            neg = rows_a < -_EDGE_TOL
            cand_hi = np.where(pos, ratio, np.inf).min(axis=0)
            cand_lo = np.where(neg, ratio, -np.inf).max(axis=0)
            new_hi = np.minimum(hi, cand_hi + _EDGE_TOL)
            new_lo = np.maximum(lo, cand_lo - _EDGE_TOL)
            tight = np.count_nonzero(
                (new_hi < hi - _EDGE_TOL) | (new_lo > lo + _EDGE_TOL)
            )
            if tight:
                changed = True
                tightenings += int(tight)
            lo, hi = new_lo, new_hi
            if np.any(lo > hi + _EDGE_TOL):
                return fail(rounds)

            # --- incumbent ellipsoid (objective-based reduction) -------- #
            if self.obj_inv_diag is not None and np.isfinite(incumbent):
                eta = max(t_lo * t_lo, t_hi * t_hi)
                if eta > 0.0:
                    cap = np.sqrt(incumbent * eta * self.obj_inv_diag)
                    cap = cap * (1.0 + 1e-9) + _EDGE_TOL  # keep equal-cost points
                    new_hi = np.minimum(hi, cap)
                    new_lo = np.maximum(lo, -cap)
                    tight = np.count_nonzero(
                        (new_hi < hi - _EDGE_TOL) | (new_lo > lo + _EDGE_TOL)
                    )
                    if tight:
                        changed = True
                        tightenings += int(tight)
                    lo, hi = new_lo, new_hi
                    if np.any(lo > hi + _EDGE_TOL):
                        return fail(rounds)

            # --- grid snapping ------------------------------------------ #
            for i in range(lo.size):
                s_lo, s_hi = _snap_interval(lo[i], hi[i], float(self.steps[i]))
                if s_lo > s_hi:
                    return fail(rounds)
                if s_lo > lo[i] + _EDGE_TOL or s_hi < hi[i] - _EDGE_TOL:
                    changed = True
                lo[i], hi[i] = s_lo, s_hi

            if not changed:
                break

        exit_straddle = (lo < -_EDGE_TOL) & (hi > _EDGE_TOL)
        signs_fixed = int(np.count_nonzero(entry_straddle & ~exit_straddle))
        with np.errstate(invalid="ignore"):
            single = np.floor(hi / self.steps + _GRID_TOL) <= np.ceil(
                lo / self.steps - _GRID_TOL
            )
        stats = PresolveStats(
            rounds=rounds,
            tightenings=tightenings,
            signs_fixed=signs_fixed,
            dual_fixed=int(np.count_nonzero(single)),
            infeasible=False,
        )
        return PresolveResult(lo, hi, t_lo, t_hi, stats)
