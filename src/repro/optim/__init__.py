"""Optimization substrate: cone programs, barrier solver, branch-and-bound."""

from .barrier import BarrierResult, BarrierSolver, find_strictly_feasible
from .bnb import (
    BranchAndBoundConfig,
    BranchAndBoundProblem,
    BranchAndBoundResult,
    BranchAndBoundSolver,
    BranchAndBoundStats,
    Candidate,
    PseudocostTable,
    Relaxation,
)
from .boxes import Box
from .bruteforce import BruteForceResult, brute_force_minimize
from .certificate import KktReport, check_kkt
from .cone import ConeProgram, LinearInequality, SocConstraint
from .cuts import ReflectionCut
from .presolve import Presolver, PresolveResult, PresolveStats
from .slsqp_backend import SlsqpResult, solve_with_slsqp
from .trace import SolverTrace, TraceEvent, TraceProgress

__all__ = [
    "BarrierResult",
    "BarrierSolver",
    "find_strictly_feasible",
    "BranchAndBoundConfig",
    "BranchAndBoundProblem",
    "BranchAndBoundResult",
    "BranchAndBoundSolver",
    "BranchAndBoundStats",
    "Candidate",
    "PseudocostTable",
    "Relaxation",
    "Box",
    "Presolver",
    "PresolveResult",
    "PresolveStats",
    "ReflectionCut",
    "BruteForceResult",
    "brute_force_minimize",
    "KktReport",
    "check_kkt",
    "ConeProgram",
    "LinearInequality",
    "SocConstraint",
    "SlsqpResult",
    "solve_with_slsqp",
    "SolverTrace",
    "TraceEvent",
    "TraceProgress",
]
