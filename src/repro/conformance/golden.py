"""Versioned golden vectors (``repro.golden/v1``) behind ``repro golden``.

Property tests and differential oracles catch implementations that
disagree *with each other*; golden vectors catch the remaining failure
mode — all implementations drifting *together* (a rounding-rule tweak, a
renumbered enum, a "harmless" refactor that changes every raw word the
same way).  Each recorder below computes a pinned-seed, bit-exact payload
for one subsystem; ``repro golden record`` writes them under
``tests/golden/`` and ``repro golden verify`` recomputes and compares.

Determinism contract: every recorder is a pure function of pinned seeds
and the code under test — no wall-clock, no machine identity, no dict
ordering (files are dumped with ``sort_keys``).  Solver-dependent
recorders pin ``time_limit=None`` so the node schedule is reproducible.
Floats survive a JSON round-trip exactly (finite doubles are preserved
verbatim), so verification can compare parsed trees with ``==``.

To intentionally change pinned behaviour: re-run ``repro golden record``,
inspect the diff, and commit the new vectors with the code change that
caused them — the diff *is* the review surface.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import InputValidationError

__all__ = [
    "GOLDEN_SCHEMA",
    "RECORDERS",
    "golden_path",
    "record_goldens",
    "verify_goldens",
]

GOLDEN_SCHEMA = "repro.golden/v1"

# Seed namespace for every recorder below; bump only with a schema bump.
_SEED = 20140601  # DAC 2014 — the paper venue


# --------------------------------------------------------------------- #
# Recorders
# --------------------------------------------------------------------- #
def _record_quantize() -> dict:
    """Raw words for a fixed value set across formats x roundings x overflow."""
    from ..fixedpoint import OverflowMode, QFormat, quantize_raw
    from .strategies import DETERMINISTIC_ROUNDING_MODES

    rng = np.random.default_rng(_SEED)
    base = rng.uniform(-6.0, 6.0, size=17)
    cases = {}
    for k, f in ((1, 7), (2, 2), (2, 4), (3, 0), (4, 4)):
        fmt = QFormat(k, f)
        values = np.concatenate(
            [
                base,
                [
                    fmt.min_value,
                    fmt.max_value,
                    fmt.min_value - 1.0,
                    fmt.max_value + 1.0,
                    0.0,
                    fmt.resolution / 2.0,
                    -fmt.resolution / 2.0,
                    1.5 * fmt.resolution,
                ],
            ]
        )
        per_mode = {}
        for mode in DETERMINISTIC_ROUNDING_MODES:
            per_mode[mode.value] = {
                overflow.value: [
                    int(r)
                    for r in quantize_raw(
                        values, fmt, rounding=mode, overflow=overflow
                    )
                ]
                for overflow in (OverflowMode.SATURATE, OverflowMode.WRAP)
            }
        cases[f"Q{k}.{f}"] = {
            "values": [float(v) for v in values],
            "rounding": per_mode,
        }
    return cases


def _trace_cases() -> List[dict]:
    """Pinned classifier cases shared by the datapath and serve recorders."""
    from ..fixedpoint import QFormat

    rng = np.random.default_rng(_SEED + 1)
    cases = []
    for k, f, m, n, rounding, polarity in (
        (3, 0, 3, 6, "nearest-away", 1),  # the paper's Q3.0 3-feature shape
        (2, 4, 4, 5, "floor", -1),
        (1, 5, 2, 5, "nearest-even", 1),
        (4, 4, 5, 4, "toward-zero", -1),
    ):
        fmt = QFormat(k, f)
        span = fmt.max_raw - fmt.min_raw + 1
        cases.append(
            {
                "integer_bits": k,
                "fraction_bits": f,
                "rounding": rounding,
                "polarity": polarity,
                "weight_raws": [
                    int(v)
                    for v in rng.integers(fmt.min_raw, fmt.max_raw + 1, size=m)
                ],
                "threshold_raw": int(
                    rng.integers(fmt.min_raw, fmt.max_raw + 1)
                ),
                # one extra range-width each side: wrap/saturate paths pinned
                "feature_raws": [
                    [
                        int(v)
                        for v in rng.integers(
                            fmt.min_raw - span, fmt.max_raw + span + 1, size=m
                        )
                    ]
                    for _ in range(n)
                ],
            }
        )
    return cases


def _record_datapath() -> dict:
    """Per-sample reference-datapath traces for the pinned cases."""
    from .strategies import case_classifier, case_features

    out = []
    for case in _trace_cases():
        datapath = case_classifier(case).datapath()
        traces = []
        for row in case_features(case):
            trace = datapath.project_traced(row)
            traces.append(
                {
                    "result_raw": int(trace.result_raw),
                    "product_raws": [int(r) for r in trace.product_raws],
                    "accumulator_raws": [int(r) for r in trace.accumulator_raws],
                    "product_overflowed": list(trace.product_overflowed),
                    "accumulator_overflowed": list(trace.accumulator_overflowed),
                }
            )
        out.append({"case": case, "traces": traces})
    return {"cases": out}


def _record_serve_engine() -> dict:
    """Vectorized engine outputs (fast path + object fallback) per case."""
    from ..serve.engine import BatchInferenceEngine
    from .strategies import case_classifier, case_features

    out = []
    for case in _trace_cases():
        classifier = case_classifier(case)
        features = case_features(case)
        paths = {}
        for label, force_object in (("fast", False), ("object", True)):
            engine = BatchInferenceEngine(classifier, force_object=force_object)
            result = engine.run(features)
            paths[label] = {
                "fast_path": bool(engine.fast_path),
                "projection_raws": [int(r) for r in result.projection_raws],
                "labels": [int(b) for b in result.labels],
                "product_overflow_events": int(result.product_overflow_events),
                "accumulator_overflow_events": int(
                    result.accumulator_overflow_events
                ),
            }
        raw_result = BatchInferenceEngine(classifier).run_raw(
            np.asarray(case["feature_raws"], dtype=object)
        )
        paths["run_raw"] = {
            "projection_raws": [int(r) for r in raw_result.projection_raws],
            "labels": [int(b) for b in raw_result.labels],
        }
        out.append({"case": case, "paths": paths})
    return {"cases": out}


def _record_certifier() -> dict:
    """Full check certificates for pinned classifiers and bounds."""
    from ..check.certifier import FeatureBounds, certify_classifier
    from ..fixedpoint.rounding import RoundingMode
    from .strategies import random_classifier

    out = []
    for k, f, m, bounded in ((3, 0, 3, False), (2, 3, 2, True), (2, 4, 4, False)):
        rng = np.random.default_rng(_SEED + 10 * k + f)
        classifier = random_classifier(
            rng, k, f, m, rounding=RoundingMode.NEAREST_AWAY, polarity=1
        )
        bounds: Optional[FeatureBounds] = None
        if bounded:
            half = classifier.fmt.max_value / 2.0
            bounds = FeatureBounds(
                lo=np.full(m, -half), hi=np.full(m, half), source="explicit"
            )
        report = certify_classifier(classifier, feature_bounds=bounds)
        out.append(
            {
                "format": f"Q{k}.{f}",
                "num_features": m,
                "bounded": bounded,
                "report": report.to_dict(),
            }
        )
    return {"certificates": out}


def _record_pareto() -> dict:
    """Pin pareto_front's tie dedup and (power, word_length) sort order."""
    from ..wordlength import SweepPoint, minimum_wordlength, pareto_front

    points = [
        SweepPoint(8, 0.10, 64.0, 0.5, True, "gap-closed"),
        SweepPoint(6, 0.10, 36.0, 0.4, True, "gap-closed"),  # same err, less power
        SweepPoint(7, 0.10, 49.0, 0.3, True, "gap-closed"),  # dominated
        SweepPoint(5, 0.18, 25.0, 0.2, True, "gap-closed"),
        SweepPoint(4, 0.18, 25.0, 0.1, False, "node-budget"),  # exact tie -> dedup
        SweepPoint(3, 0.35, 9.0, 0.1, False, "node-budget"),
        SweepPoint(9, 0.09, 81.0, 0.6, True, "gap-closed"),
    ]
    front = pareto_front(points)
    floor = minimum_wordlength(points, target_error=0.2)
    return {
        "input": [p.canonical() for p in points],
        "front": [p.canonical() for p in front],
        "minimum_wordlength_at_0.2": None if floor is None else floor.canonical(),
    }


def _record_serve_metrics() -> dict:
    """Pin the /metrics JSON schema with a deterministic observation stream."""
    from ..serve.engine import BatchInferenceEngine
    from ..serve.metrics import ServeMetrics
    from .strategies import case_classifier, case_features

    case = _trace_cases()[0]
    engine = BatchInferenceEngine(case_classifier(case))
    result = engine.run(case_features(case))
    metrics = ServeMetrics()
    metrics.observe_request("ecg", result.num_samples, 0.004, content_hash="abc123")
    metrics.observe_request("ecg", 2, 0.002, content_hash="abc123")
    metrics.observe_batch(
        "ecg", result, 0.003, content_hash="abc123", backend=engine.backend
    )
    metrics.observe_error()
    metrics.observe_shed("overloaded")
    metrics.observe_shed("overloaded")
    metrics.observe_shed("deadline")
    # v3: streaming-session counters (opened/closed/evicted + chunk flow).
    metrics.observe_session_opened()
    metrics.observe_session_opened()
    metrics.observe_session_closed()
    metrics.observe_session_evicted()
    metrics.observe_stream_chunk(200, 1)
    metrics.observe_stream_chunk(50, 0)
    metrics.observe_shed("sessions")
    return metrics.to_dict()


def _record_serve_wire() -> dict:
    """Pin ``repro.serve-wire/v1`` frame bytes for the shared trace cases.

    Both lanes are pinned: even-indexed cases travel as float64 reals
    (served via ``run``), odd ones as int64 raw words (``run_raw``).  The
    request and response frames are recorded as hex alongside the decoded
    engine outputs, so any byte-level codec drift — header layout, payload
    endianness, trailer order — fails verification even if encode/decode
    still round-trip each other.
    """
    from ..serve import wire
    from ..serve.engine import BatchInferenceEngine
    from .strategies import case_classifier, case_features

    frames = []
    for i, case in enumerate(_trace_cases()):
        classifier = case_classifier(case)
        engine = BatchInferenceEngine(classifier)
        raw = i % 2 == 1
        if raw:
            features = np.asarray(case["feature_raws"], dtype=np.int64)
            result = engine.run_raw(features)
        else:
            features = case_features(case)
            result = engine.run(features)
        request = wire.encode_request(
            features, raw=raw, model=f"m{i}", deadline_ms=25 * i
        )
        decoded, consumed = wire.decode_frame(request)
        assert consumed == len(request) and isinstance(decoded, wire.WireRequest)
        response = wire.encode_response(
            "deadbeef" * 8,
            result.projection_raws,
            result.labels,
            result.product_overflow_events,
            result.accumulator_overflow_events,
        )
        frames.append(
            {
                "case": case,
                "raw": raw,
                "request_hex": request.hex(),
                "response_hex": response.hex(),
                "projection_raws": [int(r) for r in result.projection_raws],
                "labels": [int(b) for b in result.labels],
                "product_overflow_events": int(result.product_overflow_events),
                "accumulator_overflow_events": int(
                    result.accumulator_overflow_events
                ),
            }
        )
    shed = wire.encode_error(503, "admission control: queue full", shed=True)
    return {
        "wire_schema": wire.WIRE_SCHEMA,
        "frames": frames,
        "shed_error_hex": shed.hex(),
    }


@lru_cache(maxsize=1)
def _ecg_wl8_pipeline():
    """Train the pinned ECG word-length-8 model once per process.

    Shared by the ``ecg_wl8`` and ``native_engine`` recorders — training is
    by far the most expensive step of a golden run, and both vectors must
    describe the *same* bits, so caching is correctness-neutral (the
    pipeline is a pure function of the pinned seeds).
    """
    from ..core.ldafp import LdaFpConfig
    from ..core.pipeline import PipelineConfig, TrainingPipeline
    from ..data.ecg import make_ecg_dataset

    train = make_ecg_dataset(120, seed=_SEED)
    test = make_ecg_dataset(120, seed=_SEED + 1)
    pipeline = TrainingPipeline(
        PipelineConfig(
            method="lda-fp", ldafp=LdaFpConfig(max_nodes=60, time_limit=None)
        )
    )
    result = pipeline.run(train, test, word_length=8, bitexact_eval=True)
    return pipeline, result, train, test


def _record_ecg_wl8() -> dict:
    """End-to-end pin: the ECG pipeline at word length 8, bit for bit."""
    from ..core.serialize import classifier_to_dict

    pipeline, result, train, test = _ecg_wl8_pipeline()
    scaler = pipeline.scaler_for(8)
    scaler.fit(train.features)
    head = test.features[:40]
    labels = result.classifier.predict_bitexact(scaler.transform(head))
    return {
        "artifact": classifier_to_dict(result.classifier),
        "test_error": float(result.test_error),
        "proven_optimal": (
            None
            if result.ldafp_report is None
            else bool(result.ldafp_report.proven_optimal)
        ),
        "stop_reason": (
            None if result.ldafp_report is None else result.ldafp_report.stop_reason
        ),
        "labels_head": [int(v) for v in labels],
    }


def _record_native_engine() -> dict:
    """Backend-agreement pin for the deployed ECG wl=8 artifact.

    Records the *fast-path* outputs on a pinned raw-word batch, plus
    agreement booleans for the object fallback and the compiled native
    backend.  ``native_agrees`` is true when the native kernel matched bit
    for bit *or* when no C compiler exists on this host (the backend
    cannot be built there, and the fallback path is the fast path already
    pinned here) — so record and verify produce identical payloads on any
    machine, while a reachable native divergence still fails verification.
    """
    from ..serve.engine import BatchInferenceEngine
    from ..serve.registry import content_hash

    _pipeline, result, _train, _test = _ecg_wl8_pipeline()
    classifier = result.classifier
    fmt = classifier.fmt
    rng = np.random.default_rng(_SEED + 2)
    span = fmt.max_raw - fmt.min_raw + 1
    # One extra range-width each side pins the input-saturation and the
    # product/accumulator wrap paths, not just in-range behaviour.
    raws = rng.integers(
        fmt.min_raw - span,
        fmt.max_raw + span + 1,
        size=(32, classifier.num_features),
    )
    raw_batch = np.asarray([[int(v) for v in row] for row in raws], dtype=object)

    fast = BatchInferenceEngine(classifier).run_raw(raw_batch)

    def _agrees(engine: "BatchInferenceEngine") -> bool:
        got = engine.run_raw(raw_batch)
        return all(
            np.array_equal(
                np.asarray(getattr(got, field)), np.asarray(getattr(fast, field))
            )
            for field in (
                "projection_raws",
                "labels",
                "product_overflowed",
                "accumulator_overflowed",
            )
        )

    object_agrees = _agrees(BatchInferenceEngine(classifier, force_object=True))
    native = BatchInferenceEngine(classifier, backend="native")
    native_agrees = native.backend != "native" or _agrees(native)
    return {
        "artifact_hash": content_hash(classifier),
        "feature_raws": [[int(v) for v in row] for row in raws],
        "fast": {
            "projection_raws": [int(r) for r in fast.projection_raws],
            "labels": [int(b) for b in fast.labels],
            "product_overflow_events": int(fast.product_overflow_events),
            "accumulator_overflow_events": int(fast.accumulator_overflow_events),
        },
        "object_agrees": bool(object_agrees),
        "native_agrees": bool(native_agrees),
    }


def _stream_session_fixture():
    """The pinned ECG streaming session shared by both stream recorders.

    A seeded 8-feature classifier, the default front-end config, a
    6-beat synthesized ECG recording, and a pinned pseudo-random chunk
    partition — everything downstream of these is exact integer
    arithmetic, so the recorded bits are machine-independent.
    """
    from ..data.ecg import EcgBeatConfig, synthesize_beat
    from ..serve.registry import ModelRegistry
    from ..serve.stream import FrontEndConfig
    from .strategies import random_classifier

    rng = np.random.default_rng(_SEED + 3)
    registry = ModelRegistry()
    registry.register("ecg", random_classifier(rng, 3, 5, 8))
    model = registry.get("ecg")
    config = FrontEndConfig()
    beat_config = EcgBeatConfig(sample_rate=config.sample_rate)
    samples = np.concatenate(
        [
            synthesize_beat(beat_config, rng, abnormal=i % 2 == 1)
            for i in range(6)
        ]
    )
    chunk_sizes = []
    remaining = samples.size
    while remaining > 0:
        size = min(int(rng.integers(1, 97)), remaining)
        chunk_sizes.append(size)
        remaining -= size
    return model, config, samples, chunk_sizes


def _record_stream_session() -> dict:
    """End-to-end streaming pin: chunked ECG in, windows/labels out.

    Replays the pinned session through :class:`~repro.serve.stream
    .StreamSession` + the engine — exactly what the serving plane does per
    chunk — and records every per-window feature vector, projection raw,
    label, and the overflow totals.  Any drift in the fixed-point FIR, the
    windower, feature extraction, or the classifier datapath moves these
    bits.
    """
    from ..serve.stream import run_offline

    model, config, samples, chunk_sizes = _stream_session_fixture()
    offline = run_offline(model, config, samples)

    from ..serve.stream import StreamSession

    session = StreamSession("golden", model, config)
    windows = []
    product_events = accumulator_events = 0
    start = 0
    for seq, size in enumerate(chunk_sizes):
        features, indices = session.process_chunk(
            seq, samples[start : start + size]
        )
        start += size
        if len(indices):
            result = model.engine.run(features)
            product_events += int(result.product_overflow_events)
            accumulator_events += int(result.accumulator_overflow_events)
            for row, index in enumerate(indices):
                windows.append(
                    {
                        "index": int(index),
                        "features": [float(v) for v in features[row]],
                        "projection_raw": int(result.projection_raws[row]),
                        "label": int(result.labels[row]),
                    }
                )
    # The recorded session must match the offline pipeline bit for bit —
    # recording a diverged payload would pin a bug as truth.
    assert len(windows) == offline["num_windows"]
    assert [w["label"] for w in windows] == [int(v) for v in offline["labels"]]
    assert [w["projection_raw"] for w in windows] == [
        int(r) for r in offline["projection_raws"]
    ]
    return {
        "model_hash": model.content_hash,
        "front_end": config.to_dict(),
        "num_samples": int(samples.size),
        "chunk_sizes": [int(s) for s in chunk_sizes],
        "samples_head": [float(v) for v in samples[:16]],
        "windows": windows,
        "product_overflow_events": product_events,
        "accumulator_overflow_events": accumulator_events,
        "summary": session.summary(),
    }


def _record_stream_wire() -> dict:
    """Byte-level pin of every ``repro.serve-wire/v2`` stream frame kind.

    Encodes one frame of each streaming kind (open/opened/chunk/result/
    close/closed) with pinned contents derived from the golden session,
    round-trips each through the decoder, and records the hex — header
    layout, payload endianness, and trailer order are all frozen.
    """
    from ..serve import wire

    model, config, samples, chunk_sizes = _stream_session_fixture()
    chunk = samples[: chunk_sizes[0]]
    frames = {
        "open": wire.encode_stream_open("golden", config.to_dict()),
        "opened": wire.encode_stream_opened("golden", model.content_hash),
        "chunk": wire.encode_stream_chunk("golden", 0, chunk),
        "result": wire.encode_stream_result(
            0, [0, 1], [-37, 41], [0, 1], 2, 1
        ),
        "close": wire.encode_stream_close("golden"),
        "closed": wire.encode_stream_closed(
            "golden", len(chunk_sizes), int(samples.size), 6
        ),
    }
    for name, frame in frames.items():
        decoded, consumed = wire.decode_frame(frame)
        assert consumed == len(frame), f"{name}: partial decode"
    return {
        "wire_schema": wire.WIRE_SCHEMA,
        "session_key": "golden",
        "model_hash": model.content_hash,
        "frames_hex": {name: frame.hex() for name, frame in frames.items()},
    }


RECORDERS: Dict[str, Callable[[], dict]] = {
    "quantize": _record_quantize,
    "datapath": _record_datapath,
    "serve_engine": _record_serve_engine,
    "certifier": _record_certifier,
    "pareto": _record_pareto,
    "serve_metrics": _record_serve_metrics,
    "serve_wire": _record_serve_wire,
    "stream_session": _record_stream_session,
    "stream_wire": _record_stream_wire,
    "ecg_wl8": _record_ecg_wl8,
    "native_engine": _record_native_engine,
}


# --------------------------------------------------------------------- #
# Record / verify
# --------------------------------------------------------------------- #
def golden_path(directory: str, name: str) -> str:
    """The on-disk path of one golden vector file."""
    return os.path.join(directory, f"{name}.json")


def _payload(name: str) -> dict:
    data = RECORDERS[name]()
    # JSON round-trip before comparing/writing: tuples become lists, ints
    # stay ints, finite floats are exact — so recorded and recomputed trees
    # compare with plain ==.
    return json.loads(
        json.dumps({"schema": GOLDEN_SCHEMA, "name": name, "data": data})
    )


def _select(only: Optional[Sequence[str]]) -> List[str]:
    if not only:
        return list(RECORDERS)
    unknown = [name for name in only if name not in RECORDERS]
    if unknown:
        raise InputValidationError(
            f"unknown golden vector(s) {unknown}; "
            f"available: {', '.join(sorted(RECORDERS))}"
        )
    return list(only)


def record_goldens(
    directory: str, only: Optional[Sequence[str]] = None
) -> List[str]:
    """(Re)compute and write the selected golden vectors; returns the names."""
    os.makedirs(directory, exist_ok=True)
    names = _select(only)
    for name in names:
        with open(golden_path(directory, name), "w", encoding="utf-8") as handle:
            json.dump(_payload(name), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return names


def _first_difference(recorded, computed, path: str = "$") -> str:
    """A human-useful pointer at the first structural divergence."""
    if type(recorded) is not type(computed):
        return (
            f"{path}: type {type(computed).__name__} != recorded "
            f"{type(recorded).__name__}"
        )
    if isinstance(recorded, dict):
        for key in sorted(set(recorded) | set(computed)):
            if key not in recorded:
                return f"{path}.{key}: not in recorded vector"
            if key not in computed:
                return f"{path}.{key}: missing from recomputed output"
            if recorded[key] != computed[key]:
                return _first_difference(recorded[key], computed[key], f"{path}.{key}")
    if isinstance(recorded, list):
        if len(recorded) != len(computed):
            return f"{path}: length {len(computed)} != recorded {len(recorded)}"
        for i, (r, c) in enumerate(zip(recorded, computed)):
            if r != c:
                return _first_difference(r, c, f"{path}[{i}]")
    return f"{path}: {computed!r} != recorded {recorded!r}"


def verify_goldens(
    directory: str, only: Optional[Sequence[str]] = None
) -> List[str]:
    """Recompute the selected vectors and diff against the recorded files.

    Returns one message per mismatch (empty list = everything pinned).
    """
    problems: List[str] = []
    for name in _select(only):
        path = golden_path(directory, name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                recorded = json.load(handle)
        except FileNotFoundError:
            problems.append(
                f"{name}: missing golden file {path} (run `repro golden record`)"
            )
            continue
        except json.JSONDecodeError as exc:
            problems.append(f"{name}: unparseable golden file {path}: {exc}")
            continue
        if recorded.get("schema") != GOLDEN_SCHEMA:
            problems.append(
                f"{name}: {path} has schema {recorded.get('schema')!r}, "
                f"expected {GOLDEN_SCHEMA!r}"
            )
            continue
        computed = _payload(name)
        if computed != recorded:
            problems.append(
                f"{name}: drift at {_first_difference(recorded, computed)}"
            )
    return problems
