"""Cross-implementation conformance oracles.

The repo carries four independent implementations of the same bit-exact
semantics: the per-sample reference datapath
(:class:`~repro.fixedpoint.datapath.FixedPointDatapath`), the vectorized
serving engine (int64 fast path and object fallback), the ``repro.check``
abstract-interpretation certifier, and the parallel solver/sweep engines
with their serial baselines.  Each *pair* is differentially tested
somewhere in ``tests/``, but those checks were written ad hoc per PR.  An
**oracle** packages one such cross-check as an object the fuzz driver can
enumerate: a hypothesis strategy producing JSON-able cases, and a ``check``
that replays a case through both implementations and raises
:class:`OracleDiscrepancy` on the first observable difference.

Because cases are plain JSON, a failing (hypothesis-shrunk) example
serializes directly into a ``repro.fuzz-witness/v1`` file and replays with
``repro fuzz --replay`` — no pickling, no environment capture.

Registry: :data:`ALL_ORACLES` (ordered cheap-to-expensive) and
:func:`get_oracle`.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from ..errors import CheckError, InputValidationError
from . import strategies as cst

__all__ = [
    "Oracle",
    "OracleDiscrepancy",
    "ALL_ORACLES",
    "ORACLES",
    "get_oracle",
]


class OracleDiscrepancy(CheckError):
    """Two implementations of the same semantics disagreed on a case.

    Carries the JSON-able ``case`` so the fuzz driver can serialize the
    (shrunk) example as a replayable witness.
    """

    def __init__(self, oracle: str, message: str, case: dict) -> None:
        super().__init__(f"[{oracle}] {message}")
        self.oracle = oracle
        self.detail = message
        self.case = case


class Oracle:
    """One cross-implementation check; subclasses fill in the pair."""

    #: registry key, used in CLI ``--oracle`` filters and witness files
    name: str = ""
    #: one-line human description (``repro fuzz --list``)
    description: str = ""
    #: examples per default fuzz run — heavy oracles get small budgets
    default_examples: int = 50

    def strategy(self) -> st.SearchStrategy:
        """Hypothesis strategy of JSON-able case dicts."""
        raise NotImplementedError

    def check(self, case: dict) -> None:
        """Replay ``case`` through both implementations; raise on mismatch."""
        raise NotImplementedError

    def fail(self, message: str, case: dict) -> None:
        raise OracleDiscrepancy(self.name, message, case)


# --------------------------------------------------------------------- #
# 1. Serving engine (fast + object + raw hook) vs per-sample datapath
# --------------------------------------------------------------------- #
class EngineDatapathOracle(Oracle):
    """Four-way bit-identity: engine int64 path, engine object fallback,
    the :meth:`run_raw` hook, and the scalar reference datapath — raws,
    labels, and per-step overflow flags, including forced-wrap inputs."""

    name = "engine-datapath"
    description = (
        "serve.BatchInferenceEngine (fast/object/run_raw) vs "
        "fixedpoint.FixedPointDatapath.project_traced, bit for bit"
    )
    default_examples = 60

    def strategy(self) -> st.SearchStrategy:
        return cst.classifier_cases(
            max_integer_bits=4, max_fraction_bits=5, max_features=6, max_samples=6
        )

    def check(self, case: dict) -> None:
        from ..serve.engine import BatchInferenceEngine

        classifier = cst.case_classifier(case)
        features = cst.case_features(case)
        datapath = classifier.datapath()
        results = {
            "fast": BatchInferenceEngine(classifier, force_object=False).run(features),
            "object": BatchInferenceEngine(classifier, force_object=True).run(features),
            "run_raw": BatchInferenceEngine(classifier).run_raw(
                np.asarray(case["feature_raws"], dtype=object)
            ),
        }
        expected_labels = classifier.predict_bitexact(features)
        for i, row in enumerate(np.atleast_2d(features)):
            trace = datapath.project_traced(row)
            for path, result in results.items():
                if int(result.projection_raws[i]) != trace.result_raw:
                    self.fail(
                        f"sample {i}: {path} projection raw "
                        f"{int(result.projection_raws[i])} != datapath "
                        f"{trace.result_raw}",
                        case,
                    )
                if list(result.product_overflowed[i]) != trace.product_overflowed:
                    self.fail(f"sample {i}: {path} product flags diverge", case)
                if (
                    list(result.accumulator_overflowed[i])
                    != trace.accumulator_overflowed
                ):
                    self.fail(f"sample {i}: {path} accumulator flags diverge", case)
                if int(result.labels[i]) != int(expected_labels[i]):
                    self.fail(
                        f"sample {i}: {path} label {int(result.labels[i])} != "
                        f"predict_bitexact {int(expected_labels[i])}",
                        case,
                    )


# --------------------------------------------------------------------- #
# 2. Compiled native kernel vs numpy fast path vs reference datapath
# --------------------------------------------------------------------- #
class NativeVsFastOracle(Oracle):
    """Three-way bit-identity for the compiled C backend: the native
    kernel's raws/labels/overflow flags must match the numpy fast path on
    the same raw words *and* the per-sample reference datapath on the same
    real features — including forced-wrap inputs and both silicon overflow
    policies.  On hosts without a C compiler the check passes vacuously
    (the native backend cannot exist there); CI's native-smoke job runs it
    where a compiler is guaranteed."""

    name = "native_vs_fast"
    description = (
        "hardware.native compiled kernel vs serve.BatchInferenceEngine "
        "fast path vs fixedpoint.FixedPointDatapath.project_traced"
    )
    default_examples = 25

    def strategy(self) -> st.SearchStrategy:
        @st.composite
        def cases(draw) -> dict:
            # Small formats keep every case on the int64 fast path
            # (2*(K+F) + ceil(log2 M) <= 21 bits), so a native fallback
            # inside check() is always a failure, never an admission gap.
            case = draw(
                cst.classifier_cases(
                    max_integer_bits=4,
                    max_fraction_bits=5,
                    max_features=6,
                    max_samples=6,
                )
            )
            case["overflow"] = draw(
                st.sampled_from([mode.value for mode in cst.OVERFLOW_MODES])
            )
            return case

        return cases()

    def check(self, case: dict) -> None:
        from ..fixedpoint.overflow import OverflowMode
        from ..hardware.native import native_backend_available
        from ..serve.engine import BatchInferenceEngine

        if not native_backend_available():
            return
        overflow = OverflowMode(case.get("overflow", "wrap"))
        classifier = cst.case_classifier(case)
        native = BatchInferenceEngine(classifier, overflow=overflow, backend="native")
        if native.backend != "native":
            self.fail(
                f"native backend fell back to {native.backend}: "
                f"{native.native_fallback_reason}",
                case,
            )
        fast = BatchInferenceEngine(classifier, overflow=overflow)

        # 1. Same raw words through both engine paths, bit for bit.
        raws = np.asarray(case["feature_raws"], dtype=object)
        got = native.run_raw(raws)
        want = fast.run_raw(raws)
        for field in (
            "projection_raws",
            "labels",
            "product_overflowed",
            "accumulator_overflowed",
        ):
            native_arr = np.asarray(getattr(got, field))
            fast_arr = np.asarray(getattr(want, field))
            if not np.array_equal(native_arr, fast_arr):
                self.fail(
                    f"run_raw {field}: native {native_arr.tolist()} != "
                    f"fast {fast_arr.tolist()}",
                    case,
                )

        # 2. Real features through the native engine vs the per-sample
        #    reference simulator (covers the quantization front end too).
        features = cst.case_features(case)
        result = native.run(features)
        datapath = classifier.datapath(overflow=overflow)
        expected_labels = classifier.predict_bitexact(features, overflow=overflow)
        for i, row in enumerate(np.atleast_2d(features)):
            trace = datapath.project_traced(row)
            if int(result.projection_raws[i]) != trace.result_raw:
                self.fail(
                    f"sample {i}: native projection raw "
                    f"{int(result.projection_raws[i])} != datapath "
                    f"{trace.result_raw}",
                    case,
                )
            if list(result.product_overflowed[i]) != trace.product_overflowed:
                self.fail(f"sample {i}: native product flags diverge", case)
            if (
                list(result.accumulator_overflowed[i])
                != trace.accumulator_overflowed
            ):
                self.fail(f"sample {i}: native accumulator flags diverge", case)
            if int(result.labels[i]) != int(expected_labels[i]):
                self.fail(
                    f"sample {i}: native label {int(result.labels[i])} != "
                    f"predict_bitexact {int(expected_labels[i])}",
                    case,
                )


# --------------------------------------------------------------------- #
# 3. Serialize round-trip
# --------------------------------------------------------------------- #
class SerializeRoundtripOracle(Oracle):
    """``classifier_from_dict`` then ``classifier_to_dict`` must reproduce
    a fully-populated artifact payload verbatim (and be idempotent)."""

    name = "serialize-roundtrip"
    description = "core.serialize artifact dict -> classifier -> dict identity"
    default_examples = 60

    def strategy(self) -> st.SearchStrategy:
        return cst.artifact_payloads()

    def check(self, case: dict) -> None:
        from ..core.serialize import classifier_from_dict, classifier_to_dict

        first = classifier_to_dict(classifier_from_dict(case))
        if first != case:
            self.fail(f"round-trip changed the payload: {first} != {case}", case)
        second = classifier_to_dict(classifier_from_dict(first))
        if second != first:
            self.fail("round-trip is not idempotent", case)


# --------------------------------------------------------------------- #
# 4. Certifier verdicts vs empirical replay through the simulator
# --------------------------------------------------------------------- #
class CertifierReplayOracle(Oracle):
    """Every certificate verdict must survive empirical replay: PROVEN
    bounds contain all sampled behaviour, VIOLATED witnesses overflow."""

    name = "certifier-replay"
    description = (
        "check.certify_classifier verdicts vs bit-exact simulation "
        "(check.selftest.verify_report_by_simulation)"
    )
    default_examples = 20

    def strategy(self) -> st.SearchStrategy:
        @st.composite
        def cases(draw) -> dict:
            base = draw(
                cst.classifier_cases(
                    max_integer_bits=3,
                    max_fraction_bits=4,
                    max_features=4,
                    max_samples=1,
                )
            )
            case = {k: v for k, v in base.items() if k != "feature_raws"}
            case["seed"] = draw(st.integers(min_value=0, max_value=2**31 - 1))
            if draw(st.booleans()):
                from ..fixedpoint.qformat import QFormat

                fmt = QFormat(case["integer_bits"], case["fraction_bits"])
                m = len(case["weight_raws"])
                pairs = [
                    sorted(draw(cst.raw_word_lists(fmt, 2))) for _ in range(m)
                ]
                case["bounds_lo_raws"] = [p[0] for p in pairs]
                case["bounds_hi_raws"] = [p[1] for p in pairs]
            return case

        return cases()

    def check(self, case: dict) -> None:
        from ..check.certifier import FeatureBounds, certify_classifier
        from ..check.selftest import verify_report_by_simulation

        classifier = cst.case_classifier(case)
        bounds = None
        if "bounds_lo_raws" in case:
            fmt = classifier.fmt
            bounds = FeatureBounds(
                lo=np.array(
                    [fmt.to_real(int(r)) for r in case["bounds_lo_raws"]],
                    dtype=np.float64,
                ),
                hi=np.array(
                    [fmt.to_real(int(r)) for r in case["bounds_hi_raws"]],
                    dtype=np.float64,
                ),
                source="explicit",
            )
        report = certify_classifier(classifier, feature_bounds=bounds)
        try:
            verify_report_by_simulation(
                report,
                classifier,
                feature_bounds=bounds,
                samples=24,
                seed=int(case["seed"]),
            )
        except CheckError as exc:
            self.fail(str(exc), case)


# --------------------------------------------------------------------- #
# 5. Parallel branch-and-bound vs the serial driver
# --------------------------------------------------------------------- #
def _solver_instance(seed: int):
    """A small deterministic LDA-FP instance (dataset, format) from a seed."""
    from ..data.dataset import Dataset
    from ..fixedpoint.qformat import QFormat

    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 4))
    mean = rng.uniform(-0.6, 0.6, size=m)
    scale = rng.uniform(0.2, 0.5)
    a = rng.standard_normal((60, m)) * scale + mean
    b = rng.standard_normal((60, m)) * scale - mean
    return Dataset.from_class_arrays(a, b), QFormat(2, int(rng.integers(1, 4)))


class SolverParallelOracle(Oracle):
    """The parallel frontier merge must reproduce the serial solver's
    result exactly: weights, cost, lower bound, proof status, stop reason."""

    name = "solver-parallel-serial"
    description = "optim.bnb workers>1 vs workers=1 on random LDA-FP instances"
    default_examples = 2

    def strategy(self) -> st.SearchStrategy:
        return st.fixed_dictionaries(
            {"seed": st.integers(min_value=0, max_value=10**6)}
        )

    def check(self, case: dict) -> None:
        from ..core.ldafp import LdaFpConfig, train_lda_fp

        dataset, fmt = _solver_instance(int(case["seed"]))
        results = {}
        for workers in (1, 2):
            config = LdaFpConfig(max_nodes=400, time_limit=None, workers=workers)
            classifier, report = train_lda_fp(dataset, fmt, config)
            results[workers] = (classifier, report)
        (c1, r1), (c2, r2) = results[1], results[2]
        if not np.array_equal(c1.weights, c2.weights) or c1.threshold != c2.threshold:
            self.fail(
                f"parallel solution diverges: {c2.weights}/{c2.threshold} != "
                f"{c1.weights}/{c1.threshold}",
                case,
            )
        for field in ("cost", "lower_bound", "proven_optimal", "stop_reason"):
            if getattr(r1, field) != getattr(r2, field):
                self.fail(
                    f"report field {field!r}: parallel {getattr(r2, field)} != "
                    f"serial {getattr(r1, field)}",
                    case,
                )


# --------------------------------------------------------------------- #
# 5b. Presolve/cuts-accelerated solver vs the plain solver and brute force
# --------------------------------------------------------------------- #
class PresolveVsPlainOracle(Oracle):
    """The acceleration layer (node presolve, spectral cone reduction,
    symmetry cuts, guided branching) must be result-neutral: on exact-gap
    proven runs, the accelerated solver returns the identical
    ``(cost, lower_bound, proven_optimal)`` triple as the plain solver,
    and both match the brute-force grid optimum."""

    name = "presolve_vs_plain"
    description = (
        "optim presolve+cuts vs plain branch-and-bound vs brute force "
        "on random LDA-FP instances"
    )
    default_examples = 2

    def strategy(self) -> st.SearchStrategy:
        return st.fixed_dictionaries(
            {"seed": st.integers(min_value=0, max_value=10**6)}
        )

    def check(self, case: dict) -> None:
        from ..core.ldafp import LdaFpConfig, train_lda_fp
        from ..core.problem import LdaFpProblem
        from ..fixedpoint.quantize import quantize
        from ..stats.scatter import estimate_two_class_stats
        from ..optim.bruteforce import brute_force_minimize

        dataset, fmt = _solver_instance(int(case["seed"]))
        # Exact gaps and no budgets: every run must prove optimality, so
        # ``lower_bound == cost`` and the triples must agree bit for bit.
        shared = dict(
            max_nodes=200_000,
            time_limit=None,
            absolute_gap=0.0,
            relative_gap=0.0,
            # The PQN floor rejects degenerate zero-variance optima that the
            # raw Eq. 21 brute-force cost accepts; disable it so all three
            # implementations optimize the same objective.
            quantization_noise_floor=False,
        )
        results = {}
        for label, kw in (
            ("plain", dict(presolve=False, symmetry_cuts=False, branching="problem")),
            ("accelerated", dict(presolve=True, symmetry_cuts=True)),
        ):
            _, report = train_lda_fp(dataset, fmt, LdaFpConfig(**shared, **kw))
            if not report.proven_optimal:
                self.fail(f"{label} run failed to prove optimality", case)
            results[label] = (report.cost, report.lower_bound, report.proven_optimal)
        if results["plain"] != results["accelerated"]:
            self.fail(
                f"accelerated triple {results['accelerated']} != "
                f"plain {results['plain']}",
                case,
            )
        quantized = dataset.map_features(lambda x: np.asarray(quantize(x, fmt)))
        stats = estimate_two_class_stats(quantized.class_a, quantized.class_b)
        problem = LdaFpProblem(stats=stats, fmt=fmt, rho=0.99)
        brute = brute_force_minimize(
            [fmt.grid()] * problem.num_features,
            cost=problem.cost,
            feasible=lambda w: problem.constraint_violation(w) <= 1e-9,
        )
        if abs(results["plain"][0] - brute.cost) > 1e-9 * max(1.0, abs(brute.cost)):
            self.fail(
                f"solver cost {results['plain'][0]} != brute force {brute.cost}",
                case,
            )


# --------------------------------------------------------------------- #
# 6. Warm-started sweep engine vs the naive per-point sweep
# --------------------------------------------------------------------- #
class SweepNaiveOracle(Oracle):
    """Incumbent seeding must be result-neutral: the seeded engine's points
    are canonically identical to the unseeded serial reference sweep."""

    name = "sweep-naive"
    description = (
        "wordlength.engine.run_sweep (seeded) vs wordlength_sweep baseline"
    )
    default_examples = 1

    def strategy(self) -> st.SearchStrategy:
        return st.fixed_dictionaries(
            {"seed": st.integers(min_value=0, max_value=10**6)}
        )

    def check(self, case: dict) -> None:
        from ..core.ldafp import LdaFpConfig
        from ..core.pipeline import PipelineConfig
        from ..data.synthetic import make_synthetic_dataset
        from ..wordlength import SweepConfig, run_sweep, wordlength_sweep

        seed = int(case["seed"])
        train = make_synthetic_dataset(30, seed=seed)
        test = make_synthetic_dataset(60, seed=seed + 1)
        # relative_gap=0 closes every gap exactly, so seeding cannot legally
        # stop at a different (equally gap-certified) incumbent; no time
        # limit keeps the node schedule deterministic.
        config = PipelineConfig(
            method="lda-fp",
            ldafp=LdaFpConfig(max_nodes=120, time_limit=None, relative_gap=0.0),
        )
        word_lengths = (4, 5)
        reference = wordlength_sweep(train, test, word_lengths, pipeline_config=config)
        seeded = run_sweep(
            train,
            test,
            word_lengths,
            pipeline_config=config,
            sweep_config=SweepConfig(workers=1, seed_incumbents=True),
        )
        for ref, got in zip(reference, seeded):
            if ref.canonical() != got.canonical():
                self.fail(
                    f"word length {ref.word_length}: seeded point "
                    f"{got.canonical()} != reference {ref.canonical()}",
                    case,
                )


# --------------------------------------------------------------------- #
# 7. Binary wire codec vs the direct engine path
# --------------------------------------------------------------------- #
class WireRoundtripOracle(Oracle):
    """The ``repro.serve-wire/v1`` codec must be bit-transparent: a request
    encoded, decoded, and served must produce exactly the bits of serving
    the original array directly (both the float and raw-word lanes), and
    the response codec must round-trip every result field.  Adversarial
    frames (truncation, bit flips, ragged lengths, header corruption) must
    produce a clean ``DataError`` — never another exception and never a
    partially decoded frame."""

    name = "wire_roundtrip"
    description = (
        "serve.wire encode/decode round-trip vs direct "
        "serve.BatchInferenceEngine, bit for bit, plus malformed-frame "
        "robustness (clean DataError only)"
    )
    default_examples = 60

    def strategy(self) -> st.SearchStrategy:
        return st.one_of(cst.wire_cases(), cst.wire_frame_mutations())

    def check(self, case: dict) -> None:
        from ..errors import DataError
        from ..serve import wire

        if "frame_hex" in case:
            try:
                wire.decode_frame(bytes.fromhex(case["frame_hex"]))
            except DataError:
                return  # the contract: malformed input -> clean DataError
            except Exception as exc:  # noqa: BLE001 - the property under test
                self.fail(
                    f"mutation {case['op']!r} raised {type(exc).__name__} "
                    f"instead of DataError: {exc}",
                    case,
                )
            return  # a mutation may still decode cleanly (e.g. payload flip)

        from ..serve.engine import BatchInferenceEngine

        classifier = cst.case_classifier(case)
        engine = BatchInferenceEngine(classifier)
        frame = cst.case_wire_frame(case)
        decoded, consumed = wire.decode_frame(frame)
        if consumed != len(frame):
            self.fail(f"decoder consumed {consumed} of {len(frame)} bytes", case)
        if not isinstance(decoded, wire.WireRequest):
            self.fail(f"request decoded as {type(decoded).__name__}", case)
        if decoded.raw != bool(case["raw"]) or decoded.model != case.get("model"):
            self.fail(
                f"header fields changed: raw={decoded.raw} model={decoded.model}",
                case,
            )
        if decoded.deadline_ms != int(case["deadline_ms"]):
            self.fail(f"deadline changed: {decoded.deadline_ms}", case)

        if case["raw"]:
            direct = np.asarray(case["feature_raws"], dtype=np.int64)
            want = engine.run_raw(direct)
            got = engine.run_raw(decoded.features)
        else:
            direct = cst.case_features(case)
            want = engine.run(direct)
            got = engine.run(decoded.features)
        for field in (
            "projection_raws",
            "labels",
            "product_overflowed",
            "accumulator_overflowed",
        ):
            want_arr = np.asarray(getattr(want, field))
            got_arr = np.asarray(getattr(got, field))
            if not np.array_equal(want_arr, got_arr):
                self.fail(
                    f"wire-decoded batch diverges on {field}: "
                    f"{got_arr.tolist()} != {want_arr.tolist()}",
                    case,
                )

        response = wire.encode_response(
            "f" * 64,
            want.projection_raws,
            want.labels,
            want.product_overflow_events,
            want.accumulator_overflow_events,
        )
        answer, _ = wire.decode_frame(response)
        if not isinstance(answer, wire.WireResponse):
            self.fail(f"response decoded as {type(answer).__name__}", case)
        if list(answer.projection_raws) != [int(r) for r in want.projection_raws]:
            self.fail("response projection raws changed in transit", case)
        if list(answer.labels) != [int(v) for v in want.labels]:
            self.fail("response labels changed in transit", case)
        if (
            answer.product_overflow_events != want.product_overflow_events
            or answer.accumulator_overflow_events != want.accumulator_overflow_events
        ):
            self.fail("response overflow counters changed in transit", case)


# --------------------------------------------------------------------- #
# 7b. Chunked streaming vs one-shot batch processing
# --------------------------------------------------------------------- #
class StreamVsBatchOracle(Oracle):
    """Arbitrary chunk partitions of a waveform through the stateful
    steppers (:mod:`repro.signal.stream`) must be **bit-identical** to the
    one-shot calls on the concatenated signal: fixed-point FIR, fixed-point
    biquad, the float biquad cascade (power-line notch), the exactly-
    rounded float FIR, the decimator, and the hop-strided windower.  The
    second case family replays interleaved serving-plane sessions through
    one :class:`~repro.serve.stream.StreamManager` and requires every
    session's windows/features/raws/labels to match
    :func:`~repro.serve.stream.run_offline` on its waveform alone — chunk
    boundaries and neighbouring sessions must be unobservable."""

    name = "stream_vs_batch"
    description = (
        "signal.stream chunked steppers + serve.stream sessions vs the "
        "one-shot fxfir/fxbiquad/preprocess/windowing pipeline, bit for bit"
    )
    default_examples = 25

    def strategy(self) -> st.SearchStrategy:
        return st.one_of(cst.waveform_cases(), cst.stream_sessions())

    def check(self, case: dict) -> None:
        if case["kind"] == "waveform":
            self._check_waveform(case)
        else:
            self._check_sessions(case)

    # ----------------------------------------------------------------- #
    def _chunks(self, samples: list, sizes: list) -> "list[np.ndarray]":
        x = np.asarray(samples, dtype=np.float64)
        out, start = [], 0
        for size in sizes:
            out.append(x[start : start + size])
            start += size
        return out

    def _check_waveform(self, case: dict) -> None:
        from ..errors import DataError
        from ..fixedpoint.qformat import QFormat
        from ..fixedpoint.rounding import RoundingMode
        from ..signal.filters import fir_direct
        from ..signal.fxbiquad import FixedPointBiquad
        from ..signal.fxfir import FixedPointFir
        from ..signal.preprocess import (
            decimate,
            design_notch,
            remove_powerline,
        )
        from ..signal.stream import (
            DecimatorStream,
            FirStream,
            PowerlineStream,
            WindowStream,
            slice_windows,
        )

        signal = np.asarray(case["samples"], dtype=np.float64)
        chunks = self._chunks(case["samples"], case["chunk_sizes"])
        fmt = QFormat(int(case["integer_bits"]), int(case["fraction_bits"]))
        rounding = RoundingMode(case["rounding"])
        taps = np.asarray(case["fir_taps"], dtype=np.float64)

        def run_chunked(stream) -> np.ndarray:
            return np.concatenate([stream.process(c) for c in chunks])

        # 1. Fixed-point FIR: raw delay line vs the one-shot skip loop.
        fxfir = FixedPointFir(
            taps=taps, fmt=fmt, guard_bits=int(case["guard_bits"]),
            rounding=rounding,
        )
        if not np.array_equal(run_chunked(fxfir.stream()), fxfir.apply(signal)):
            self.fail("fxfir chunked stream != one-shot apply", case)

        # 2. Fixed-point biquad (notch section).  Quantization may
        #    destabilize the section at narrow formats; the constructor
        #    rejects that identically on both paths, so it is skipped.
        section = design_notch(
            float(case["mains_hz"]), float(case["sample_rate"]),
            quality=float(case["quality"]),
        )
        try:
            fxbq = FixedPointBiquad(section=section, fmt=fmt, rounding=rounding)
        except DataError:
            fxbq = None
        if fxbq is not None and not np.array_equal(
            run_chunked(fxbq.stream()), fxbq.apply(signal)
        ):
            self.fail("fxbiquad chunked stream != one-shot apply", case)

        # 3. Float notch cascade: carried DF2T registers vs apply_biquads.
        kwargs = dict(
            mains_hz=float(case["mains_hz"]),
            harmonics=int(case["harmonics"]),
            quality=float(case["quality"]),
        )
        chunked = run_chunked(PowerlineStream(float(case["sample_rate"]), **kwargs))
        one_shot = remove_powerline(signal, float(case["sample_rate"]), **kwargs)
        if not np.array_equal(chunked, one_shot):
            self.fail("powerline chunked stream != remove_powerline", case)

        # 4. Float FIR: exactly-rounded window sums are partition-blind.
        if not np.array_equal(
            run_chunked(FirStream(taps)), fir_direct(taps, signal)
        ):
            self.fail("float FIR chunked stream != fir_direct", case)

        # 5. Decimator (needs the flush tail for the one-shot alignment).
        factor = int(case["decim_factor"])
        num_taps = int(case["decim_taps"])
        decimator = DecimatorStream(factor, num_taps=num_taps)
        pieces = [decimator.process(c) for c in chunks]
        pieces.append(decimator.flush())
        if not np.array_equal(
            np.concatenate(pieces), decimate(signal, factor, num_taps=num_taps)
        ):
            self.fail("chunked decimation != one-shot decimate", case)

        # 6. Windower: emitted windows == the one-shot slices, in order.
        window_size, hop = int(case["window_size"]), int(case["hop"])
        stream = WindowStream(window_size, hop)
        got = [w for c in chunks for w in stream.process(c)]
        want = slice_windows(signal, window_size, hop)
        if len(got) != len(want) or any(
            not np.array_equal(g, w) for g, w in zip(got, want)
        ):
            self.fail(
                f"windower emitted {len(got)} windows != {len(want)} slices "
                f"(or contents diverge)",
                case,
            )

    # ----------------------------------------------------------------- #
    def _check_sessions(self, case: dict) -> None:
        from ..serve.registry import ModelRegistry
        from ..serve.stream import (
            STREAM_NUM_FEATURES,
            FrontEndConfig,
            StreamManager,
            run_offline,
        )

        classifier = cst.case_classifier(
            {
                "integer_bits": case["integer_bits"],
                "fraction_bits": case["fraction_bits"],
                "rounding": case["rounding"],
                "polarity": case["polarity"],
                "weight_raws": case["weight_raws"],
                "threshold_raw": case["threshold_raw"],
            }
        )
        registry = ModelRegistry()
        registry.register("m", classifier)
        model = registry.get("m")
        band_lo = float(case["band_lo"])
        config = FrontEndConfig(
            sample_rate=float(case["sample_rate"]),
            num_taps=int(case["num_taps"]),
            band=(band_lo, band_lo + float(case["band_width"])),
            guard_bits=int(case["guard_bits"]),
            window_size=int(case["window_size"]),
            hop=int(case["hop"]),
        )

        manager = StreamManager(max_sessions=len(case["sessions"]) + 1)
        states = []
        for spec in case["sessions"]:
            session = manager.open(spec["key"], model, config)
            states.append(
                {
                    "session": session,
                    "chunks": self._chunks(spec["samples"], spec["chunk_sizes"]),
                    "next": 0,
                    "features": [],
                    "indices": [],
                }
            )
        for index in case["schedule"]:
            state = states[index]
            features, indices = state["session"].process_chunk(
                state["next"], state["chunks"][state["next"]]
            )
            state["next"] += 1
            if len(indices):
                state["features"].append(features)
                state["indices"].extend(indices)
        for spec, state in zip(case["sessions"], states):
            offline = run_offline(
                model, config, np.asarray(spec["samples"], dtype=np.float64)
            )
            if state["indices"] != list(range(offline["num_windows"])):
                self.fail(
                    f"session {spec['key']}: window indices "
                    f"{state['indices']} != offline "
                    f"{list(range(offline['num_windows']))}",
                    case,
                )
            got_features = (
                np.concatenate(state["features"])
                if state["features"]
                else np.empty((0, STREAM_NUM_FEATURES))
            )
            if not np.array_equal(got_features, offline["features"]):
                self.fail(
                    f"session {spec['key']}: streamed features diverge from "
                    "run_offline",
                    case,
                )
            if offline["num_windows"]:
                result = model.engine.run(got_features)
                if not np.array_equal(
                    np.asarray(result.projection_raws, dtype=np.int64),
                    np.asarray(offline["projection_raws"], dtype=np.int64),
                ) or not np.array_equal(
                    np.asarray(result.labels), np.asarray(offline["labels"])
                ):
                    self.fail(
                        f"session {spec['key']}: classified raws/labels "
                        "diverge from run_offline",
                        case,
                    )
            totals = state["session"].summary()
            if totals["samples"] != len(spec["samples"]) or totals[
                "windows"
            ] != offline["num_windows"]:
                self.fail(
                    f"session {spec['key']}: lifetime totals {totals} "
                    f"disagree with the waveform",
                    case,
                )
        manager.close_all()


# --------------------------------------------------------------------- #
# 8. Cluster serving plane vs the single-process server
# --------------------------------------------------------------------- #
class ClusterVsSingleOracle(Oracle):
    """A 2-worker ``SO_REUSEPORT`` cluster must answer byte-for-byte like
    the single-process server and like the direct engine on the same
    artifact — over the binary wire protocol and HTTP JSON alike.  Boots
    real worker processes, so the default budget is one (seeded) case."""

    name = "cluster_vs_single"
    description = (
        "serve.cluster 2-worker plane vs single-process InferenceServer "
        "vs direct engine, wire + JSON, bit for bit"
    )
    default_examples = 1

    def strategy(self) -> st.SearchStrategy:
        return st.fixed_dictionaries(
            {"seed": st.integers(min_value=0, max_value=10**6)}
        )

    def check(self, case: dict) -> None:
        import json
        import tempfile
        import urllib.request
        from pathlib import Path

        from ..core.serialize import save_classifier
        from ..serve import (
            BatcherConfig,
            ClusterConfig,
            ClusterSupervisor,
            ModelRegistry,
            ServeConfig,
            WireClient,
            WireResponse,
            start_server_thread,
        )

        seed = int(case["seed"])
        rng = np.random.default_rng(seed)
        classifier = cst.random_classifier(rng, 3, 5, 8)
        features = rng.uniform(-6.0, 6.0, size=(16, 8))
        raws = rng.integers(
            classifier.fmt.min_raw, classifier.fmt.max_raw + 1, size=(16, 8)
        ).astype(np.int64)

        registry = ModelRegistry()
        registry.register("m", classifier)
        engine = registry.get("m").engine
        want_real = engine.run(features)
        want_raw = engine.run_raw(raws)

        def _query(port: int) -> dict:
            out = {}
            with WireClient("127.0.0.1", port) as client:
                real = client.request(features, model="m")
                raw = client.request(raws, raw=True, model="m")
            for label, reply in (("real", real), ("raw", raw)):
                if not isinstance(reply, WireResponse):
                    self.fail(f"{label} wire reply was {reply!r}", case)
                out[label] = reply
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/predict",
                data=json.dumps(
                    {"model": "m", "features": features.tolist()}
                ).encode("utf-8"),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10.0) as response:
                out["json"] = json.loads(response.read())
            return out

        with tempfile.TemporaryDirectory() as tmp:
            artifact = str(Path(tmp) / "m.json")
            save_classifier(classifier, artifact)
            single = start_server_thread(registry, ServeConfig(port=0))
            try:
                supervisor = ClusterSupervisor(
                    ClusterConfig(
                        artifacts=(("m", artifact),),
                        workers=2,
                        batcher=BatcherConfig(max_delay=0.002),
                    )
                )
                supervisor.start()
                try:
                    answers = {
                        "single": _query(single.port),
                        "cluster": _query(supervisor.shard_ports[0]),
                    }
                finally:
                    supervisor.stop()
            finally:
                single.stop()

        for side, got in answers.items():
            if list(got["real"].projection_raws) != [
                int(r) for r in want_real.projection_raws
            ]:
                self.fail(f"{side} real-lane projection raws diverge", case)
            if list(got["real"].labels) != [int(v) for v in want_real.labels]:
                self.fail(f"{side} real-lane labels diverge", case)
            if list(got["raw"].projection_raws) != [
                int(r) for r in want_raw.projection_raws
            ]:
                self.fail(f"{side} raw-lane projection raws diverge", case)
            if list(got["raw"].labels) != [int(v) for v in want_raw.labels]:
                self.fail(f"{side} raw-lane labels diverge", case)
            if got["json"]["labels"] != [int(v) for v in want_real.labels]:
                self.fail(f"{side} JSON labels diverge", case)
        if answers["single"]["json"]["content_hash"] != answers["cluster"][
            "json"
        ]["content_hash"]:
            self.fail("single and cluster served different content hashes", case)


ALL_ORACLES = (
    EngineDatapathOracle(),
    NativeVsFastOracle(),
    SerializeRoundtripOracle(),
    WireRoundtripOracle(),
    StreamVsBatchOracle(),
    CertifierReplayOracle(),
    SolverParallelOracle(),
    PresolveVsPlainOracle(),
    SweepNaiveOracle(),
    ClusterVsSingleOracle(),
)

ORACLES = {oracle.name: oracle for oracle in ALL_ORACLES}


def get_oracle(name: str) -> Oracle:
    """Look up an oracle by registry name."""
    oracle = ORACLES.get(name)
    if oracle is None:
        raise InputValidationError(
            f"unknown oracle {name!r}; available: {', '.join(sorted(ORACLES))}"
        )
    return oracle
