"""Differential fuzz driver behind ``repro fuzz``.

Drives the :mod:`repro.conformance.oracles` registry with hypothesis:
each oracle's strategy generates JSON-able cases, ``check`` replays them
through both implementations, and any :class:`OracleDiscrepancy` is
shrunk by hypothesis before it reaches us — the exception that finally
escapes carries the *minimal* failing case.  That case is written as a
``repro.fuzz-witness/v1`` file which ``repro fuzz --replay`` re-executes
without hypothesis, so a CI failure reproduces locally from one JSON
blob.

Exit-code convention (same as ``repro check``): 0 all oracles agree,
1 a discrepancy was found (or a replayed witness still fails),
2 the invocation itself was invalid.

Determinism: for a fixed ``--seed`` the example stream is fixed, and the
default report prints only oracle names and verdicts (no counts, no
timings), so two identical clean runs produce byte-identical output even
when a wall-clock budget truncates late oracles mid-stream.

The module also hosts the **mutation selftest** (``repro fuzz
--selftest``): it patches a deliberate off-by-one into the reference
datapath (and, where a C compiler exists, into the *emitted C* of the
native backend), asserts the matching oracle catches it and yields a
witness, asserts ``--replay`` reproduces the discrepancy under the
mutation, and asserts the same witness passes on the unmutated tree.
A fuzzer that cannot detect a seeded bug is worse than no fuzzer — this
proves detection end to end on every CI run.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from hypothesis import HealthCheck, Phase, Verbosity, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings

from ..errors import DataError, InputValidationError
from .oracles import ALL_ORACLES, Oracle, OracleDiscrepancy, get_oracle

__all__ = [
    "WITNESS_SCHEMA",
    "parse_budget",
    "fuzz_oracle",
    "run_fuzz",
    "write_witness",
    "load_witness",
    "replay_witness",
    "injected_datapath_mutation",
    "injected_cgen_mutation",
    "run_selftest",
]

WITNESS_SCHEMA = "repro.fuzz-witness/v1"


def parse_budget(text: str) -> float:
    """Parse a wall-clock budget like ``"60s"``, ``"5m"``, or ``"90"``."""
    raw = text.strip().lower()
    scale = 1.0
    if raw.endswith("ms"):
        raw, scale = raw[:-2], 1e-3
    elif raw.endswith("s"):
        raw = raw[:-1]
    elif raw.endswith("m"):
        raw, scale = raw[:-1], 60.0
    elif raw.endswith("h"):
        raw, scale = raw[:-1], 3600.0
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise InputValidationError(
            f"cannot parse budget {text!r}; use e.g. 60s, 5m, 1h"
        ) from None
    if seconds <= 0:
        raise InputValidationError(f"budget must be positive, got {text!r}")
    return seconds


def fuzz_oracle(
    oracle: Oracle,
    seed: int,
    max_examples: int,
    stop_after: Optional[float] = None,
) -> Optional[OracleDiscrepancy]:
    """Fuzz one oracle; return the shrunk discrepancy, or None if it held.

    ``stop_after`` is a ``time.monotonic()`` deadline: once passed, the
    remaining examples become no-ops so hypothesis drains quickly without
    reporting spurious passes as failures.
    """

    @hypothesis_seed(seed)
    @hypothesis_settings(
        max_examples=max_examples,
        deadline=None,
        database=None,
        derandomize=False,
        report_multiple_bugs=False,
        print_blob=False,
        verbosity=Verbosity.quiet,
        suppress_health_check=list(HealthCheck),
        phases=(Phase.generate, Phase.shrink),
    )
    @given(oracle.strategy())
    def drive(case: dict) -> None:
        if stop_after is not None and time.monotonic() > stop_after:
            return
        oracle.check(case)

    try:
        drive()
    except OracleDiscrepancy as exc:
        return exc
    return None


def run_fuzz(
    oracle_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    examples: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    emit: Callable[[str], None] = print,
) -> Tuple[int, Optional[OracleDiscrepancy]]:
    """Fuzz the selected oracles; returns ``(exit_code, first_failure)``.

    Stops at the first discrepancy (depth-first shrinking beats breadth
    once anything fails).  The report is deterministic for a fixed seed on
    a clean tree: one ``ok`` line per oracle plus a one-line summary.
    """
    if oracle_names:
        oracles = [get_oracle(name) for name in oracle_names]
    else:
        oracles = list(ALL_ORACLES)
    stop_after = (
        time.monotonic() + budget_seconds if budget_seconds is not None else None
    )
    for oracle in oracles:
        failure = fuzz_oracle(
            oracle,
            seed=seed,
            max_examples=examples if examples is not None else oracle.default_examples,
            stop_after=stop_after,
        )
        if failure is not None:
            emit(f"oracle {oracle.name}: FAIL")
            emit(f"  {failure.detail}")
            return 1, failure
        emit(f"oracle {oracle.name}: ok")
    emit(f"fuzz: {len(oracles)} oracle(s) ok")
    return 0, None


# --------------------------------------------------------------------- #
# Witness files
# --------------------------------------------------------------------- #
def write_witness(path: str, failure: OracleDiscrepancy, seed: int) -> None:
    """Serialize a shrunk discrepancy as a replayable witness file."""
    payload = {
        "schema": WITNESS_SCHEMA,
        "oracle": failure.oracle,
        "seed": int(seed),
        "message": failure.detail,
        "case": failure.case,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_witness(path: str) -> dict:
    """Load and schema-check a witness file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise DataError(f"cannot read witness {path!r}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != WITNESS_SCHEMA:
        raise DataError(
            f"witness {path!r} is not a {WITNESS_SCHEMA} file "
            f"(schema={payload.get('schema') if isinstance(payload, dict) else None!r})"
        )
    if "oracle" not in payload or "case" not in payload:
        raise DataError(f"witness {path!r} is missing 'oracle' or 'case'")
    return payload


def replay_witness(
    path: str, emit: Callable[[str], None] = print
) -> Tuple[int, Optional[OracleDiscrepancy]]:
    """Re-run a witness case without hypothesis.

    Exit 1 when the discrepancy still reproduces (the bug is live), 0 when
    the implementations now agree (the bug is fixed), 2 on a bad file.
    """
    payload = load_witness(path)
    oracle = get_oracle(str(payload["oracle"]))
    try:
        oracle.check(payload["case"])
    except OracleDiscrepancy as exc:
        emit(f"witness {path}: REPRODUCED on oracle {oracle.name}")
        emit(f"  {exc.detail}")
        return 1, exc
    emit(f"witness {path}: no longer reproduces (oracle {oracle.name} agrees)")
    return 0, None


# --------------------------------------------------------------------- #
# Mutation selftest
# --------------------------------------------------------------------- #
@contextmanager
def injected_datapath_mutation() -> Iterator[None]:
    """Deliberately break the reference datapath (off-by-one on the result).

    Patches :meth:`FixedPointDatapath.project_traced` to wrap ``+1`` onto
    the final raw word — exactly the class of silent bit-level bug the
    conformance harness exists to catch.  Selftest use only.
    """
    from ..fixedpoint.datapath import FixedPointDatapath

    original = FixedPointDatapath.project_traced

    def mutated(self, features):  # type: ignore[no-untyped-def]
        trace = original(self, features)
        fmt = self.config.fmt
        trace.result_raw = int(fmt.wrap_raw(trace.result_raw + 1))
        return trace

    FixedPointDatapath.project_traced = mutated  # type: ignore[method-assign]
    try:
        yield
    finally:
        FixedPointDatapath.project_traced = original  # type: ignore[method-assign]


@contextmanager
def injected_cgen_mutation() -> Iterator[None]:
    """Deliberately break the *emitted C* (off-by-one on the threshold).

    Patches :func:`repro.hardware.cgen.generate_batch_kernel_c` so every
    generated kernel subtracts ``THRESHOLD - 1`` instead of ``THRESHOLD``.
    The mutated translation unit hashes to a fresh build-cache key, so it
    really compiles and really runs — proving the ``native_vs_fast`` oracle
    catches bit-level bugs in the code generator itself, not just in the
    Python wrappers.  Selftest use only.
    """
    from ..hardware import cgen

    original = cgen.generate_batch_kernel_c

    def mutated(classifier, overflow="wrap"):  # type: ignore[no-untyped-def]
        source = original(classifier, overflow=overflow)
        target = "int64_t result = wrap_q(acc - THRESHOLD);"
        assert target in source, "cgen mutation anchor missing"
        return source.replace(
            target, "int64_t result = wrap_q(acc - THRESHOLD + 1);"
        )

    cgen.generate_batch_kernel_c = mutated  # type: ignore[assignment]
    try:
        yield
    finally:
        cgen.generate_batch_kernel_c = original  # type: ignore[assignment]


def _selftest_round(
    label: str,
    oracle_name: str,
    mutation: Callable[[], "object"],
    seed: int,
    witness_path: Optional[str],
    emit: Callable[[str], None],
    max_examples: int = 40,
) -> int:
    """One detect → replay-under-mutation → pass-clean cycle; 0 on success.

    Steps: (1) under the mutation, the oracle must find a discrepancy;
    (2) the witness it writes must reproduce under the mutation via the
    replay path; (3) the same witness must pass on the clean tree.
    """
    oracle = get_oracle(oracle_name)
    cleanup = witness_path is None
    if witness_path is None:
        fd, witness_path = tempfile.mkstemp(
            prefix="repro-fuzz-selftest-", suffix=".json"
        )
        os.close(fd)
    try:
        with mutation():
            failure = fuzz_oracle(oracle, seed=seed, max_examples=max_examples)
        if failure is None:
            emit(f"selftest: FAIL — injected {label} mutation went undetected")
            return 1
        write_witness(witness_path, failure, seed)
        emit(f"selftest: {label} mutation detected ({failure.detail})")

        with mutation():
            code, _ = replay_witness(witness_path, emit=lambda _msg: None)
        if code != 1:
            emit(
                f"selftest: FAIL — {label} witness does not reproduce "
                "under the mutation"
            )
            return 1
        emit(f"selftest: {label} witness reproduces under the mutation")

        code, _ = replay_witness(witness_path, emit=lambda _msg: None)
        if code != 0:
            emit(
                f"selftest: FAIL — {label} witness still fails on the clean "
                "tree (the harness found a real discrepancy, not the "
                "injected one)"
            )
            return 1
        emit(f"selftest: {label} witness passes on the clean tree")
        return 0
    finally:
        if cleanup:
            try:
                os.unlink(witness_path)
            except OSError:
                pass


def run_selftest(
    seed: int = 0,
    witness_path: Optional[str] = None,
    emit: Callable[[str], None] = print,
) -> int:
    """Prove end-to-end bug detection with injected mutations.

    Two rounds, each detect → replay → clean-pass (see
    :func:`_selftest_round`): an off-by-one patched into the reference
    *datapath* (caught by ``engine-datapath``), and an off-by-one patched
    into the *emitted C* (caught by ``native_vs_fast``).  The C round is
    skipped — with a notice — on hosts without a C compiler, where the
    native backend cannot exist.  Returns 0 only when every round holds.
    """
    code = _selftest_round(
        "datapath",
        "engine-datapath",
        injected_datapath_mutation,
        seed,
        witness_path,
        emit,
    )
    if code != 0:
        return code

    from ..hardware.native import native_backend_available

    if native_backend_available():
        code = _selftest_round(
            "cgen",
            "native_vs_fast",
            injected_cgen_mutation,
            seed,
            # The datapath round already consumed any caller-supplied path;
            # the C round always uses its own temp file.
            None,
            emit,
            max_examples=25,
        )
        if code != 0:
            return code
    else:
        emit("selftest: no C compiler — skipping the cgen-mutation round")
    emit("selftest: ok")
    return 0


def describe_oracles() -> List[str]:
    """One formatted line per registered oracle (``repro fuzz --list``)."""
    width = max(len(oracle.name) for oracle in ALL_ORACLES)
    return [
        f"{oracle.name:<{width}}  [{oracle.default_examples:>3} examples]  "
        f"{oracle.description}"
        for oracle in ALL_ORACLES
    ]
