"""Conformance harness: shared strategies, differential oracles, fuzzing,
and golden vectors.

The repo's four implementations of the bit-exact ``QK.F`` semantics (the
reference datapath, the vectorized serve engine, the abstract-interpretation
certifier, and the parallel solver/sweep engines) are kept honest here:

- :mod:`~repro.conformance.strategies` — the single home of hypothesis
  strategies and seeded builders used by tests and the fuzzer alike;
- :mod:`~repro.conformance.oracles` — the registry of cross-implementation
  checks (raises :class:`OracleDiscrepancy` on the first bit of divergence);
- :mod:`~repro.conformance.fuzzer` — ``repro fuzz``: seeded/budgeted
  fuzzing, shrunk ``repro.fuzz-witness/v1`` witnesses, ``--replay``, and
  the mutation selftest that proves the harness can actually detect bugs;
- :mod:`~repro.conformance.golden` — ``repro golden record|verify``:
  pinned-seed bit-exact vectors under ``tests/golden/`` that catch all
  implementations drifting together.

See ``docs/testing.md`` for the workflow.
"""

from .fuzzer import (
    WITNESS_SCHEMA,
    injected_datapath_mutation,
    load_witness,
    replay_witness,
    run_fuzz,
    run_selftest,
    write_witness,
)
from .golden import GOLDEN_SCHEMA, RECORDERS, record_goldens, verify_goldens
from .oracles import ALL_ORACLES, ORACLES, Oracle, OracleDiscrepancy, get_oracle

__all__ = [
    "ALL_ORACLES",
    "ORACLES",
    "Oracle",
    "OracleDiscrepancy",
    "get_oracle",
    "WITNESS_SCHEMA",
    "GOLDEN_SCHEMA",
    "RECORDERS",
    "run_fuzz",
    "run_selftest",
    "replay_witness",
    "load_witness",
    "write_witness",
    "injected_datapath_mutation",
    "record_goldens",
    "verify_goldens",
]
