"""Shared hypothesis strategies for the fixed-point conformance suite.

Before this module existed, every property-test file grew its own ad-hoc
copies of the same generators — a ``QFormat`` builder here, a rounding-mode
list there, a seeded random-classifier helper in a third place — and the
copies drifted (different bit ranges, different saturation habits).  This
module is the single source of those generators; the test suite and the
:mod:`repro.conformance.fuzzer` draw from the same distributions, so a case
the fuzzer minimizes is always expressible as a test input and vice versa.

Two kinds of exports:

- **hypothesis strategies** (:func:`qformats`, :func:`rounding_modes`,
  :func:`raw_words`, :func:`raw_word_lists`, :func:`weight_grids`,
  :func:`classifiers`, :func:`classifier_cases`, :func:`artifact_payloads`)
  for ``@given`` property tests and the fuzz driver;
- **seeded builders** (:func:`random_classifier`, :func:`case_classifier`,
  :func:`case_features`) shared by tests that drive ``numpy`` RNGs and by
  the witness replayer, which must rebuild the exact objects a serialized
  case describes.

Every strategy that feeds an oracle produces a plain-JSON ``dict`` (ints,
floats, strings, lists) so a failing example serializes directly into a
``repro.fuzz-witness/v1`` file with no custom encoding step.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from ..core.classifier import FixedPointLinearClassifier
from ..fixedpoint.overflow import OverflowMode
from ..fixedpoint.qformat import QFormat
from ..fixedpoint.rounding import RoundingMode

__all__ = [
    "DETERMINISTIC_ROUNDING_MODES",
    "OVERFLOW_MODES",
    "qformats",
    "rounding_modes",
    "finite_floats",
    "raw_words",
    "raw_word_lists",
    "weight_grids",
    "classifiers",
    "classifier_cases",
    "artifact_payloads",
    "random_classifier",
    "case_classifier",
    "case_features",
    "wire_cases",
    "wire_frame_mutations",
    "case_wire_frame",
    "waveform_cases",
    "stream_sessions",
]

# The rounding modes with a deterministic narrowing rule (everything except
# stochastic) — the set every differential/property suite iterates over.
DETERMINISTIC_ROUNDING_MODES = (
    RoundingMode.NEAREST_AWAY,
    RoundingMode.NEAREST_EVEN,
    RoundingMode.FLOOR,
    RoundingMode.CEIL,
    RoundingMode.TOWARD_ZERO,
)

# The overflow policies a hardware datapath can implement (RAISE is a
# debugging aid, not a silicon behaviour, so the matrix tests skip it).
OVERFLOW_MODES = (OverflowMode.WRAP, OverflowMode.SATURATE)


def qformats(
    min_integer_bits: int = 1,
    max_integer_bits: int = 6,
    min_fraction_bits: int = 0,
    max_fraction_bits: int = 8,
) -> st.SearchStrategy:
    """``QFormat`` values with bit widths in the given (inclusive) ranges."""
    return st.builds(
        QFormat,
        integer_bits=st.integers(min_value=min_integer_bits, max_value=max_integer_bits),
        fraction_bits=st.integers(min_value=min_fraction_bits, max_value=max_fraction_bits),
    )


def rounding_modes() -> st.SearchStrategy:
    """One of the deterministic rounding modes."""
    return st.sampled_from(DETERMINISTIC_ROUNDING_MODES)


def finite_floats(bound: float = 100.0) -> st.SearchStrategy:
    """Finite floats in ``[-bound, bound]`` (no NaN/inf by construction)."""
    return st.floats(min_value=-bound, max_value=bound)


def raw_words(fmt: QFormat, beyond: int = 0) -> st.SearchStrategy:
    """Raw integer words of ``fmt``; ``beyond`` widens each side by that
    many multiples of the range so saturation/wrap paths get exercised."""
    span = fmt.max_raw - fmt.min_raw + 1
    return st.integers(
        min_value=fmt.min_raw - beyond * span, max_value=fmt.max_raw + beyond * span
    )


def raw_word_lists(
    fmt: QFormat, length: int, beyond: int = 0
) -> st.SearchStrategy:
    """Fixed-length lists of raw words (see :func:`raw_words`)."""
    return st.lists(raw_words(fmt, beyond=beyond), min_size=length, max_size=length)


def weight_grids(fmt: QFormat, length: int) -> st.SearchStrategy:
    """Grid-exact weight vectors of ``fmt`` as float lists.

    Raw words capped at 52 total bits convert to float64 exactly, and every
    ``qformats()`` default stays far below that, so the values are exact.
    """
    return raw_word_lists(fmt, length).map(
        lambda raws: [float(fmt.to_real(int(r))) for r in raws]
    )


@st.composite
def classifiers(
    draw,
    max_integer_bits: int = 5,
    max_fraction_bits: int = 5,
    max_features: int = 8,
) -> FixedPointLinearClassifier:
    """Grid-exact classifiers over small formats (both polarities)."""
    fmt = draw(
        qformats(max_integer_bits=max_integer_bits, max_fraction_bits=max_fraction_bits)
    )
    m = draw(st.integers(min_value=1, max_value=max_features))
    weights = np.asarray(draw(weight_grids(fmt, m)), dtype=np.float64)
    threshold_raw = draw(raw_words(fmt))
    return FixedPointLinearClassifier(
        weights=weights,
        threshold=float(fmt.to_real(int(threshold_raw))),
        fmt=fmt,
        rounding=draw(rounding_modes()),
        polarity=draw(st.sampled_from([1, -1])),
    )


@st.composite
def classifier_cases(
    draw,
    max_integer_bits: int = 5,
    max_fraction_bits: int = 5,
    max_features: int = 6,
    max_samples: int = 8,
    feature_beyond: int = 1,
) -> dict:
    """JSON-able cases: a classifier plus a feature batch, all raw words.

    ``feature_raws`` may exceed the format range by up to ``feature_beyond``
    range-widths, so input saturation and the product/accumulator wrap paths
    are exercised (conversion back to reals is exact — see
    :func:`weight_grids`).
    """
    k = draw(st.integers(min_value=1, max_value=max_integer_bits))
    f = draw(st.integers(min_value=0, max_value=max_fraction_bits))
    fmt = QFormat(k, f)
    m = draw(st.integers(min_value=1, max_value=max_features))
    n = draw(st.integers(min_value=1, max_value=max_samples))
    return {
        "integer_bits": k,
        "fraction_bits": f,
        "rounding": draw(rounding_modes()).value,
        "polarity": draw(st.sampled_from([1, -1])),
        "weight_raws": draw(raw_word_lists(fmt, m)),
        "threshold_raw": draw(raw_words(fmt)),
        "feature_raws": draw(
            st.lists(
                raw_word_lists(fmt, m, beyond=feature_beyond),
                min_size=n,
                max_size=n,
            )
        ),
    }


@st.composite
def artifact_payloads(
    draw, max_integer_bits: int = 6, max_fraction_bits: int = 8
) -> dict:
    """Valid ``repro.fixed-point-classifier.v1`` payload dicts.

    Every field is populated explicitly (no reliance on loader defaults) so
    a serialize round-trip must reproduce the payload verbatim.
    """
    k = draw(st.integers(min_value=1, max_value=max_integer_bits))
    f = draw(st.integers(min_value=0, max_value=max_fraction_bits))
    fmt = QFormat(k, f)
    m = draw(st.integers(min_value=1, max_value=8))
    return {
        "schema": "repro.fixed-point-classifier.v1",
        "format": {"integer_bits": k, "fraction_bits": f},
        "weight_raws": draw(raw_word_lists(fmt, m)),
        "threshold_raw": draw(raw_words(fmt)),
        "polarity": draw(st.sampled_from([1, -1])),
        "rounding": draw(rounding_modes()).value,
    }


@st.composite
def wire_cases(
    draw,
    max_integer_bits: int = 4,
    max_fraction_bits: int = 5,
    max_features: int = 6,
    max_samples: int = 6,
) -> dict:
    """:func:`classifier_cases` extended with wire-protocol request fields.

    ``raw`` selects the payload lane (int64 raw words served via
    ``run_raw`` vs float64 reals served via ``run``), ``model`` the
    addressed registry key (None = default-model frames), ``deadline_ms``
    the soft deadline carried in the frame header.
    """
    case = draw(
        classifier_cases(
            max_integer_bits=max_integer_bits,
            max_fraction_bits=max_fraction_bits,
            max_features=max_features,
            max_samples=max_samples,
        )
    )
    case["raw"] = draw(st.booleans())
    case["deadline_ms"] = draw(st.integers(min_value=0, max_value=60_000))
    case["model"] = draw(
        st.one_of(st.none(), st.sampled_from(["ecg", "clf", "m0", "bci-8"]))
    )
    return case


def case_wire_frame(case: dict) -> bytes:
    """Encode the request frame a :func:`wire_cases` dict describes."""
    from ..fixedpoint.qformat import QFormat
    from ..serve import wire

    if case["raw"]:
        features = np.asarray(case["feature_raws"], dtype=np.int64)
    else:
        fmt = QFormat(int(case["integer_bits"]), int(case["fraction_bits"]))
        features = np.asarray(case["feature_raws"], dtype=np.float64) * fmt.resolution
    return wire.encode_request(
        features,
        raw=bool(case["raw"]),
        model=case.get("model"),
        deadline_ms=int(case["deadline_ms"]),
    )


@st.composite
def wire_frame_mutations(draw) -> dict:
    """Adversarial wire frames: a valid request frame, then one corruption.

    The contract under test (see the ``wire_roundtrip`` oracle and
    ``tests/test_serve_wire.py``): the decoder answers *any* byte string
    with either a clean :class:`~repro.errors.DataError` or a fully decoded
    frame — never another exception type, never a hang, never partially
    decoded output.  Cases are JSON-able (the frame travels as hex) so
    shrunk examples replay from a witness file.
    """
    frame = bytearray(case_wire_frame(draw(wire_cases(max_samples=3))))
    op = draw(
        st.sampled_from(
            [
                "truncate",
                "flip",
                "magic",
                "length_up",
                "length_huge",
                "kind",
                "dtype",
                "reserved",
                "shape",
                "random",
            ]
        )
    )
    if op == "truncate":
        frame = frame[: draw(st.integers(min_value=0, max_value=len(frame) - 1))]
    elif op == "flip":
        pos = draw(st.integers(min_value=0, max_value=len(frame) - 1))
        frame[pos] ^= draw(st.integers(min_value=1, max_value=255))
    elif op == "magic":
        frame[0:4] = draw(st.binary(min_size=4, max_size=4))
    elif op == "length_up":
        declared = int.from_bytes(frame[4:8], "little")
        bumped = min(declared + draw(st.integers(1, 9999)), 0xFFFFFFFF)
        frame[4:8] = bumped.to_bytes(4, "little")
    elif op == "length_huge":
        frame[4:8] = draw(st.integers(2**24, 2**32 - 1)).to_bytes(4, "little")
    elif op == "kind":
        frame[8] = draw(st.integers(min_value=0, max_value=255))
    elif op == "dtype":
        frame[9] = draw(st.integers(min_value=2, max_value=255))
    elif op == "reserved":
        frame[10:12] = draw(st.integers(1, 0xFFFF)).to_bytes(2, "little")
    elif op == "shape":
        # n_samples field of the request header (magic+len+BBHIH = offset 18).
        frame[18:22] = draw(st.integers(0, 2**31)).to_bytes(4, "little")
    elif op == "random":
        frame = bytearray(draw(st.binary(min_size=0, max_size=200)))
    return {"frame_hex": bytes(frame).hex(), "op": op}


@st.composite
def _chunk_partitions(draw, total: int) -> list:
    """A list of chunk sizes (each >= 1) summing exactly to ``total``."""
    sizes = []
    remaining = total
    while remaining > 0:
        size = draw(st.integers(min_value=1, max_value=remaining))
        sizes.append(size)
        remaining -= size
    return sizes


@st.composite
def waveform_cases(
    draw,
    min_samples: int = 8,
    max_samples: int = 120,
) -> dict:
    """Waveform + chunk-partition cases for the ``stream_vs_batch`` oracle.

    One case drives *every* stateful stepper in :mod:`repro.signal.stream`
    against its one-shot reference on the same samples: the fixed-point
    FIR and biquad, the float FIR / biquad cascade (power-line notch), the
    decimator, and the hop-strided windower.  Everything is plain JSON so
    a shrunk failing partition replays from a witness file.
    """
    n = draw(st.integers(min_value=min_samples, max_value=max_samples))
    k = draw(st.integers(min_value=2, max_value=5))
    f = draw(st.integers(min_value=3, max_value=7))
    fmt = QFormat(k, f)
    num_taps = draw(st.integers(min_value=1, max_value=7)) * 2 + 1  # odd 3..15
    sample_rate = draw(st.sampled_from([200.0, 250.0, 360.0, 500.0]))
    return {
        "kind": "waveform",
        "samples": draw(
            st.lists(finite_floats(8.0), min_size=n, max_size=n)
        ),
        "chunk_sizes": draw(_chunk_partitions(n)),
        "integer_bits": k,
        "fraction_bits": f,
        "rounding": draw(rounding_modes()).value,
        "guard_bits": draw(st.integers(min_value=0, max_value=8)),
        "fir_taps": draw(weight_grids(fmt, num_taps)),
        "sample_rate": sample_rate,
        "mains_hz": draw(st.sampled_from([50.0, 60.0])),
        "harmonics": draw(st.integers(min_value=1, max_value=3)),
        "quality": draw(st.floats(min_value=5.0, max_value=50.0)),
        "decim_factor": draw(st.integers(min_value=1, max_value=4)),
        "decim_taps": draw(st.sampled_from([15, 31])),
        "window_size": draw(st.integers(min_value=1, max_value=24)),
        "hop": draw(st.integers(min_value=1, max_value=32)),
    }


@st.composite
def stream_sessions(
    draw,
    max_sessions: int = 3,
    min_samples: int = 20,
    max_samples: int = 120,
) -> dict:
    """Interleaved serving-plane sessions for ``stream_vs_batch``.

    Each case is 1-3 sessions over one pinned model + front-end config,
    each session with its own waveform and chunk partition, plus an
    explicit interleaving ``schedule`` of session indices — the oracle
    replays the schedule through one :class:`~repro.serve.stream
    .StreamManager` and requires every session's windows, features, raws,
    and labels to be bit-identical to :func:`~repro.serve.stream
    .run_offline` on that session's waveform alone (state isolation).
    """
    k = draw(st.integers(min_value=3, max_value=5))
    f = draw(st.integers(min_value=4, max_value=7))
    fmt = QFormat(k, f)
    num_sessions = draw(st.integers(min_value=1, max_value=max_sessions))
    sessions = []
    for i in range(num_sessions):
        n = draw(st.integers(min_value=min_samples, max_value=max_samples))
        sessions.append(
            {
                "key": f"s{i}",
                "samples": draw(
                    st.lists(finite_floats(4.0), min_size=n, max_size=n)
                ),
                "chunk_sizes": draw(_chunk_partitions(n)),
            }
        )
    # Fair interleaving: every (session, chunk) pair appears exactly once,
    # in a drawn global order (chunks stay in order within a session).
    multiset = [
        i for i, s in enumerate(sessions) for _ in s["chunk_sizes"]
    ]
    schedule = draw(st.permutations(multiset))
    sample_rate = draw(st.sampled_from([200.0, 250.0, 360.0]))
    return {
        "kind": "sessions",
        "sessions": sessions,
        "schedule": list(schedule),
        "sample_rate": sample_rate,
        "num_taps": draw(st.integers(min_value=1, max_value=15)) * 2 + 1,
        "band_lo": draw(st.floats(min_value=0.5, max_value=8.0)),
        "band_width": draw(st.floats(min_value=5.0, max_value=60.0)),
        "guard_bits": draw(st.integers(min_value=2, max_value=8)),
        "window_size": draw(st.integers(min_value=40, max_value=64)),
        "hop": draw(st.integers(min_value=1, max_value=80)),
        "integer_bits": k,
        "fraction_bits": f,
        "rounding": draw(rounding_modes()).value,
        "polarity": draw(st.sampled_from([1, -1])),
        "weight_raws": draw(raw_word_lists(fmt, 8)),
        "threshold_raw": draw(raw_words(fmt)),
    }


# --------------------------------------------------------------------- #
# Seeded builders (shared by rng-driven tests and the witness replayer)
# --------------------------------------------------------------------- #
def random_classifier(
    rng: np.random.Generator,
    integer_bits: int,
    fraction_bits: int,
    num_features: int,
    rounding: RoundingMode = RoundingMode.NEAREST_AWAY,
    polarity: int = 1,
) -> FixedPointLinearClassifier:
    """A grid-exact classifier with uniform random raw weights/threshold."""
    fmt = QFormat(integer_bits, fraction_bits)
    weight_raws = rng.integers(fmt.min_raw, fmt.max_raw + 1, size=num_features)
    threshold_raw = int(rng.integers(fmt.min_raw, fmt.max_raw + 1))
    return FixedPointLinearClassifier(
        weights=np.array([fmt.to_real(int(r)) for r in weight_raws], dtype=np.float64),
        threshold=float(fmt.to_real(threshold_raw)),
        fmt=fmt,
        rounding=rounding,
        polarity=polarity,
    )


def case_classifier(case: dict) -> FixedPointLinearClassifier:
    """Rebuild the classifier a :func:`classifier_cases` dict describes."""
    fmt = QFormat(int(case["integer_bits"]), int(case["fraction_bits"]))
    return FixedPointLinearClassifier(
        weights=np.array(
            [fmt.to_real(int(r)) for r in case["weight_raws"]], dtype=np.float64
        ),
        threshold=float(fmt.to_real(int(case["threshold_raw"]))),
        fmt=fmt,
        rounding=RoundingMode(case.get("rounding", "nearest-away")),
        polarity=int(case.get("polarity", 1)),
    )


def case_features(case: dict) -> np.ndarray:
    """The real-valued ``(n, M)`` feature batch of a case (exact floats)."""
    fmt = QFormat(int(case["integer_bits"]), int(case["fraction_bits"]))
    raws = np.asarray(case["feature_raws"], dtype=np.float64)
    return raws * fmt.resolution
