#!/usr/bin/env python3
"""A tour of the fixed-point substrate (the paper's Section 3 mechanics).

Demonstrates, with printed bit patterns:

- the ``QK.F`` format (Figure 3): range, resolution, two's complement,
- rounding modes and their biases,
- the wrap-vs-saturate overflow policies,
- the paper's key identity: intermediate overflow is harmless under
  wrapping when the final sum is in range (``3 + 3 - 4`` in ``Q3.0``),
- quantization-error statistics (SQNR) against the uniform-noise model.

Run:  python examples/fixed_point_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint import (
    DatapathConfig,
    FixedPointDatapath,
    Fx,
    OverflowMode,
    QFormat,
    RoundingMode,
    analyze_quantization,
    quantize,
    theoretical_sqnr_db,
)


def section(title: str) -> None:
    print(f"\n{title}\n{'-' * len(title)}")


def main() -> None:
    section("The QK.F format (paper Figure 3)")
    for spec in ("Q3.0", "Q2.4", "Q4.4"):
        fmt = QFormat.from_string(spec)
        print(f"  {spec}: range [{fmt.min_value:+.4f}, {fmt.max_value:+.4f}], "
              f"LSB = {fmt.resolution}, {fmt.num_values} values")

    section("Two's-complement bit patterns")
    q = QFormat(3, 2)
    for value in (1.75, -0.25, -4.0, 0.25):
        fx = Fx(value, q)
        print(f"  {value:+6.2f} in {q} -> {fx.bits} (raw {fx.raw:+d})")

    section("Rounding modes on 0.3 in Q2.4 (LSB = 0.0625)")
    fmt = QFormat(2, 4)
    for mode in (RoundingMode.NEAREST_AWAY, RoundingMode.NEAREST_EVEN,
                 RoundingMode.FLOOR, RoundingMode.CEIL, RoundingMode.TOWARD_ZERO):
        print(f"  {mode.value:13s}: {float(quantize(0.3, fmt, rounding=mode)):+.4f}")

    section("Overflow policies on 2.5 in Q2.4 (max = 1.9375)")
    print(f"  wrap     : {float(quantize(2.5, fmt, overflow=OverflowMode.WRAP)):+.4f}")
    print(f"  saturate : {float(quantize(2.5, fmt, overflow=OverflowMode.SATURATE)):+.4f}")

    section("The paper's wrap identity: 3 + 3 - 4 in Q3.0")
    q30 = QFormat(3, 0)
    a, b, c = Fx(3, q30), Fx(3, q30), Fx.from_raw(-4, q30)
    step1 = a + b
    print(f"  011 + 011 = {step1.bits}  ({step1.value:+.0f})  <- overflowed!")
    final = step1 + c
    print(f"  {step1.bits} + 100 = {final.bits}  ({final.value:+.0f})  "
          "<- exact anyway (wrapping)")

    section("The same identity through the MAC datapath simulator")
    dp = FixedPointDatapath([1.0, 1.0, 1.0], 0.0, DatapathConfig(fmt=q30))
    trace = dp.project_traced([3.0, 3.0, -4.0])
    print(f"  accumulator trace: {trace.accumulator_raws} "
          f"(overflow flags {trace.accumulator_overflowed})")
    print(f"  final result     : {q30.to_real(trace.result_raw):+.0f}")

    section("Quantization noise vs the LSB^2/12 model")
    rng = np.random.default_rng(0)
    signal = rng.uniform(-1.5, 1.5, size=200_000)
    for fraction_bits in (4, 8, 12):
        fmt = QFormat(2, fraction_bits)
        report = analyze_quantization(signal, fmt)
        theory = theoretical_sqnr_db(fmt, float(np.sqrt(np.mean(signal**2))))
        print(f"  Q2.{fraction_bits:<2d}: measured SQNR {report.sqnr_db:6.2f} dB, "
              f"theory {theory:6.2f} dB, max err {report.max_abs_error:.2e}")


if __name__ == "__main__":
    main()
