#!/usr/bin/env python3
"""Quickstart: train LDA-FP on the paper's synthetic problem at 6 bits.

Walks the full flow of the library's public API:

1. generate the paper's Eq. 30-32 synthetic dataset,
2. train conventional LDA (float) and look at its weight profile — the
   Figure 1 intuition: project onto one direction that separates classes,
3. quantize it to ``Q2.4`` the conventional way and watch it fail,
4. train LDA-FP at the same format and compare,
5. print the hardware implementation report.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    LdaFpConfig,
    PipelineConfig,
    TrainingPipeline,
    make_synthetic_dataset,
)
from repro.core import fit_lda
from repro.hardware import build_report
from repro.stats import classification_error

WORD_LENGTH = 6


def main() -> None:
    train = make_synthetic_dataset(2000, seed=0)
    test = make_synthetic_dataset(5000, seed=1)
    print(f"synthetic dataset: {train.num_samples} train / "
          f"{test.num_samples} test samples, {train.num_features} features")

    # --- Step 1: float LDA — the software baseline -------------------- #
    model = fit_lda(train, shrinkage=0.0)
    float_error = classification_error(test.labels, model.predict(test.features))
    print("\nfloat LDA weights :", np.round(model.weights, 5))
    print(f"float LDA error   : {100 * float_error:.2f}%")
    print("note the profile  : |w2|, |w3| are ~580x |w1| — they cancel the")
    print("                    shared noise; w1 alone carries the class signal.")

    # --- Step 2: conventional quantization — the failure mode --------- #
    lda_pipe = TrainingPipeline(
        PipelineConfig(method="lda", lda_shrinkage=0.0)
    )
    lda_result = lda_pipe.run(train, test, WORD_LENGTH)
    print(f"\nrounded LDA at {lda_result.fmt} "
          f"({WORD_LENGTH}-bit): weights {lda_result.classifier.weights}")
    print(f"rounded LDA error : {100 * lda_result.test_error:.2f}%  "
          "<- w1 rounded to zero, classifier is blind")

    # --- Step 3: LDA-FP ------------------------------------------------ #
    fp_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda-fp",
            ldafp=LdaFpConfig(max_nodes=2000, time_limit=30),
        )
    )
    fp_result = fp_pipe.run(train, test, WORD_LENGTH)
    report = fp_result.ldafp_report
    print(f"\nLDA-FP at {fp_result.fmt}: weights {fp_result.classifier.weights}")
    print(f"LDA-FP error      : {100 * fp_result.test_error:.2f}%")
    print(f"training cost     : {report.cost:.5f} "
          f"(lower bound {report.lower_bound:.5f}, "
          f"proven optimal: {report.proven_optimal})")
    print(f"solver            : {report.nodes_expanded} nodes, "
          f"{report.train_seconds:.2f}s")

    # --- Step 4: hardware view ----------------------------------------- #
    print()
    print(build_report(fp_result.classifier, test_error=fp_result.test_error,
                       reference_word_length=12).text)


if __name__ == "__main__":
    main()
