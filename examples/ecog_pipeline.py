#!/usr/bin/env python3
"""Full on-chip pipeline: raw ECoG -> band-power features -> LDA-FP -> RTL.

The deepest end-to-end demonstration in the repository.  Everything the
silicon would do is simulated:

1. **Raw signals**: multi-channel ECoG with movement-modulated mu and
   high-gamma rhythms (:class:`repro.signal.EcogSimulator`).
2. **Front end**: Welch log band power per channel x band — the paper's
   42 features — plus a look at the on-chip FIR alternative at a finite
   word length (:class:`repro.signal.FixedPointFir`).
3. **Training**: conventional LDA vs LDA-FP at a small word length, with
   stratified cross-validation.
4. **Deployment**: bit-exact datapath evaluation and the Verilog module +
   self-checking testbench for the trained classifier.

Run:  python examples/ecog_pipeline.py      (takes ~1 minute)
"""

from __future__ import annotations

import numpy as np

from repro.core import LdaFpConfig, PipelineConfig, TrainingPipeline
from repro.data.bci import make_bci_dataset_from_signals
from repro.fixedpoint import QFormat
from repro.hardware import generate_classifier_verilog, generate_testbench
from repro.signal import EcogSimulator, FixedPointFir, design_fir
from repro.stats import StratifiedKFold

WORD_LENGTH = 5


def front_end_study() -> None:
    """Compare the float Welch front end with a fixed-point FIR band filter."""
    print("front-end study: fixed-point FIR mu-band filter")
    sim = EcogSimulator(seed=0)
    fs = sim.config.sample_rate
    trial = sim.trial("left")
    channel = trial.signals[3] / np.max(np.abs(trial.signals[3]))
    taps = design_fir(101, (10.0, 25.0), kind="bandpass", sample_rate=fs)
    for fraction_bits in (12, 8, 5):
        fmt = QFormat(2, fraction_bits)
        fir = FixedPointFir(taps, fmt)
        exact = fir.apply(channel)
        reference = fir.reference_apply(channel)
        nmse = float(np.mean((exact - reference) ** 2) / np.mean(reference**2))
        print(f"  {fmt}: coefficient err {fir.coefficient_error():.2e}, "
              f"datapath NMSE {nmse:.2e}")


def main() -> None:
    front_end_study()

    print("\nsimulating raw ECoG and extracting 42 band-power features...")
    dataset = make_bci_dataset_from_signals(trials_per_class=40, seed=0)
    print(f"dataset: {dataset.num_samples} trials x {dataset.num_features} features")

    lda_pipe = TrainingPipeline(PipelineConfig(method="lda", lda_shrinkage=1e-3))
    fp_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda-fp",
            ldafp=LdaFpConfig(max_nodes=25, time_limit=8, shrinkage=1e-3,
                              local_search_radius=1),
        )
    )
    lda_errors, fp_errors = [], []
    last_result = None
    for train_idx, test_idx in StratifiedKFold(4, seed=0).split(dataset.labels):
        train, test = dataset.subset(train_idx), dataset.subset(test_idx)
        lda_errors.append(lda_pipe.run(train, test, WORD_LENGTH).test_error)
        last_result = fp_pipe.run(train, test, WORD_LENGTH)
        fp_errors.append(last_result.test_error)

    print(f"\n{WORD_LENGTH}-bit cross-validated error:")
    print(f"  conventional LDA : {100 * float(np.mean(lda_errors)):.2f}%")
    print(f"  LDA-FP           : {100 * float(np.mean(fp_errors)):.2f}%")

    classifier = last_result.classifier
    print(f"\ntrained classifier: {classifier.describe()}")
    verilog = generate_classifier_verilog(classifier)
    bundle = generate_testbench(
        classifier, dataset.features[:16] * 0.01  # small in-range stimulus
    )
    print(f"generated RTL     : {len(verilog.splitlines())} lines of Verilog")
    print(f"generated TB      : {len(bundle.testbench.splitlines())} lines, "
          f"{len(bundle.expected_hex.splitlines())} golden vectors")
    print("\nfirst Verilog lines:")
    for line in verilog.splitlines()[:8]:
        print("  " + line)


if __name__ == "__main__":
    main()
