#!/usr/bin/env python3
"""BCI movement decoding with cross-validated fixed-point training.

Reproduces the paper's Section 5.2 scenario end to end on the simulated
ECoG dataset (42 band-power features, 70 trials per movement direction):
stratified 5-fold cross-validation of conventional LDA vs LDA-FP at a
user-chosen word length, followed by a power-budget comparison.

Run:  python examples/bci_decoding.py [word_length]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BciConfig, LdaFpConfig, PipelineConfig, TrainingPipeline, make_bci_dataset
from repro.hardware import EnergyModel, power_ratio
from repro.stats import StratifiedKFold


def cross_validated_error(pipeline: TrainingPipeline, dataset, word_length: int):
    errors = []
    for train_idx, test_idx in StratifiedKFold(n_splits=5, seed=0).split(dataset.labels):
        result = pipeline.run(
            dataset.subset(train_idx), dataset.subset(test_idx), word_length
        )
        errors.append(result.test_error)
    return float(np.mean(errors)), errors


def main() -> None:
    word_length = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    dataset = make_bci_dataset(BciConfig())
    print(f"simulated ECoG: {dataset.num_samples} trials, "
          f"{dataset.num_features} features (left vs right movement)")
    print(f"evaluating at {word_length}-bit fixed point, 5-fold CV\n")

    lda_pipe = TrainingPipeline(
        PipelineConfig(method="lda", lda_shrinkage=1e-3)
    )
    fp_pipe = TrainingPipeline(
        PipelineConfig(
            method="lda-fp",
            ldafp=LdaFpConfig(
                max_nodes=40, time_limit=10, shrinkage=1e-3, local_search_radius=1
            ),
        )
    )

    lda_mean, lda_folds = cross_validated_error(lda_pipe, dataset, word_length)
    fp_mean, fp_folds = cross_validated_error(fp_pipe, dataset, word_length)

    print(f"conventional LDA : {100 * lda_mean:.2f}%  "
          f"(folds: {[f'{100 * e:.1f}%' for e in lda_folds]})")
    print(f"LDA-FP           : {100 * fp_mean:.2f}%  "
          f"(folds: {[f'{100 * e:.1f}%' for e in fp_folds]})")

    # Power story: what would LDA need to match LDA-FP's error?
    print("\npower framing (quadratic model, paper Section 5):")
    for other in range(word_length + 1, 9):
        ratio = power_ratio(other, word_length)
        print(f"  vs a {other}-bit implementation: {ratio:.2f}x power saved")

    energy = EnergyModel().per_classification(word_length, dataset.num_features)
    print(f"\nestimated energy/decision at {word_length} bits: "
          f"{energy.total:.0f} gate-switch units "
          f"({energy.num_macs} serial MACs)")


if __name__ == "__main__":
    main()
