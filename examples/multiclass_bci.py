#!/usr/bin/env python3
"""Four-direction movement decoding with one-vs-rest LDA-FP (extension).

The paper decodes binary movement direction; practical BCI cursor control
needs four.  This example builds a 4-class synthetic band-power dataset
(four movement directions, shared correlated background), trains one
LDA-FP classifier per direction in a shared ``Q2.3`` format, and reports
the confusion structure — all inference still integer-only argmax.

Run:  python examples/multiclass_bci.py
"""

from __future__ import annotations

import numpy as np

from repro.core import LdaFpConfig, train_one_vs_rest
from repro.data.scaling import FeatureScaler
from repro.fixedpoint import QFormat

DIRECTIONS = ("left", "right", "up", "down")


def make_four_direction_dataset(trials_per_class: int, seed: int):
    """Simulated band-power features for four movement directions."""
    rng = np.random.default_rng(seed)
    num_channels, num_bands = 8, 2
    m = num_channels * num_bands
    idx = np.arange(num_channels)
    channel_cov = 0.8 ** np.abs(idx[:, None] - idx[None, :])
    cov = np.kron(channel_cov, 0.3 ** np.abs(np.arange(num_bands)[:, None] - np.arange(num_bands)[None, :]))

    # Each direction tunes a different pair of channels.
    tunings = []
    for direction in range(4):
        shift = np.zeros(m)
        channels = (2 * direction, 2 * direction + 1)
        for channel in channels:
            shift[channel * num_bands : (channel + 1) * num_bands] = rng.normal(
                0.9, 0.2, size=num_bands
            )
        tunings.append(shift)

    features, labels = [], []
    for direction, shift in enumerate(tunings):
        draws = rng.multivariate_normal(shift, cov, size=trials_per_class)
        features.append(draws)
        labels.append(np.full(trials_per_class, direction))
    return np.vstack(features), np.concatenate(labels)


def main() -> None:
    word_length = 5
    fmt = QFormat(2, word_length - 2)
    train_x, train_y = make_four_direction_dataset(120, seed=0)
    test_x, test_y = make_four_direction_dataset(200, seed=1)

    scaler = FeatureScaler(limit=0.9)
    train_x = scaler.fit(train_x).transform(train_x)
    test_x = scaler.transform(test_x)

    print(f"4-direction decoding, {train_x.shape[1]} features, format {fmt}")
    classifier, reports = train_one_vs_rest(
        train_x, train_y, fmt,
        LdaFpConfig(max_nodes=40, time_limit=10, shrinkage=1e-3,
                    local_search_radius=1),
    )

    print("\nper-direction binary training:")
    for cls, report in reports.items():
        print(f"  {DIRECTIONS[cls]:6s}: cost {report.cost:8.4f}  "
              f"nodes {report.nodes_expanded:4d}  "
              f"proven={report.proven_optimal}")

    error = classifier.error_on(test_x, test_y)
    print(f"\ntest error (argmax over {len(DIRECTIONS)} classifiers): "
          f"{100 * error:.2f}%")

    predictions = classifier.predict(test_x)
    print("\nconfusion matrix (rows = truth, cols = prediction):")
    print("        " + " ".join(f"{d:>6s}" for d in DIRECTIONS))
    for true_cls in range(4):
        counts = [
            int(np.sum((test_y == true_cls) & (predictions == pred_cls)))
            for pred_cls in range(4)
        ]
        print(f"  {DIRECTIONS[true_cls]:6s}" + " ".join(f"{c:6d}" for c in counts))


if __name__ == "__main__":
    main()
