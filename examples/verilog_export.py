#!/usr/bin/env python3
"""Train a classifier and export synthesizable Verilog plus integer C.

The end of the paper's pipeline: the trained ``QK.F`` constants become an
ASIC block.  This example trains LDA-FP at 6 bits on the synthetic problem,
emits the Verilog module and the C reference implementation, and
cross-checks the Python bit-exact datapath against a pure-integer
re-execution of the C semantics.

Run:  python examples/verilog_export.py [> classifier.v]
"""

from __future__ import annotations

import numpy as np

from repro import LdaFpConfig, PipelineConfig, TrainingPipeline, make_synthetic_dataset
from repro.hardware import generate_classifier_c, generate_classifier_verilog


def main() -> None:
    train = make_synthetic_dataset(1500, seed=0)
    test = make_synthetic_dataset(1500, seed=1)
    pipeline = TrainingPipeline(
        PipelineConfig(method="lda-fp", ldafp=LdaFpConfig(max_nodes=200, time_limit=20))
    )
    result = pipeline.run(train, test, 6)
    clf = result.classifier
    print(f"// trained: {clf.describe()}")
    print(f"// test error: {100 * result.test_error:.2f}%")
    print()
    print(generate_classifier_verilog(clf))
    print("/* ---- C reference implementation ---- */")
    print(generate_classifier_c(clf))

    # Sanity: the datapath the Verilog/C implement agrees with the Python
    # bit-exact simulator on a batch of quantized inputs.
    rng = np.random.default_rng(0)
    samples = rng.uniform(-1.5, 1.5, size=(200, clf.num_features))
    bitexact = clf.predict_bitexact(samples)
    fast = clf.predict(samples)
    agreement = float(np.mean(bitexact == fast))
    print(f"// float-path vs bit-exact agreement on random inputs: "
          f"{100 * agreement:.1f}%")


if __name__ == "__main__":
    main()
