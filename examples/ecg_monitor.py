#!/usr/bin/env python3
"""Wearable ECG arrhythmia alarm at microwatt budgets (second application).

The paper's introduction motivates on-chip classifiers with portable ECG
monitors.  This example builds that scenario: synthesize normal and PVC
(premature ventricular contraction) beats, extract eight adder/comparator-
friendly features, train LDA-FP at 4-8 bits, tune the alarm threshold on a
false-alarm budget with the ROC machinery, and price the implementation.

It then deploys the trained classifier end to end: the model is saved as a
``repro.fixed-point-classifier.v1`` JSON artifact, loaded into a
:class:`~repro.serve.ModelRegistry`, served over HTTP by the micro-batching
:mod:`repro.serve` runtime, and a stream of fresh beats is classified
through ``POST /predict`` — bit-identical to the on-chip datapath — before
the server's ``/metrics`` are scraped.

Run:  python examples/ecg_monitor.py
"""

from __future__ import annotations

import json
import tempfile
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import LdaFpConfig, PipelineConfig, TrainingPipeline
from repro.core.serialize import save_classifier
from repro.data import make_ecg_dataset
from repro.data.scaling import FeatureScaler
from repro.hardware import build_report
from repro.serve import ModelRegistry, ServeConfig, start_server_thread
from repro.stats import auc, best_threshold, roc_curve

FALSE_ALARM_BUDGET = 0.02  # at most 2% of normal beats may trigger the alarm


def main() -> None:
    train = make_ecg_dataset(400, seed=0)
    test = make_ecg_dataset(400, seed=1)
    print(f"ECG beats: {train.num_samples} train / {test.num_samples} test, "
          f"{train.num_features} features (label 1 = PVC)")

    print("\nword-length sweep (LDA-FP):")
    print("  WL | test error | proven")
    results = {}
    for wl in (4, 5, 6, 8):
        pipe = TrainingPipeline(
            PipelineConfig(
                method="lda-fp",
                ldafp=LdaFpConfig(max_nodes=60, time_limit=10),
            )
        )
        result = pipe.run(train, test, wl)
        results[wl] = result
        proven = result.ldafp_report.proven_optimal
        print(f"  {wl:2d} | {100 * result.test_error:9.2f}% | {proven}")

    # Threshold tuning on the false-alarm budget (the threshold register is
    # reprogrammable, so this costs nothing in silicon).
    chosen = results[5]
    classifier = chosen.classifier
    scaler = FeatureScaler(limit=0.45 * 2.0)
    scaler.fit(train.features)
    scores = classifier.polarity * (
        np.asarray(scaler.transform(test.features)) @ classifier.weights
    )
    curve = roc_curve(scores, test.labels, thresholds=classifier.fmt.grid())
    print(f"\nROC AUC at 5 bits: {auc(curve):.4f}")
    threshold = best_threshold(curve, max_false_positive_rate=FALSE_ALARM_BUDGET)
    predicted = (scores >= threshold).astype(int)
    sensitivity = float(np.mean(predicted[test.labels == 1] == 1))
    false_alarms = float(np.mean(predicted[test.labels == 0] == 1))
    print(f"alarm threshold {threshold:+.4f} (on the Q-grid): "
          f"sensitivity {100 * sensitivity:.1f}%, "
          f"false alarms {100 * false_alarms:.2f}% "
          f"(budget {100 * FALSE_ALARM_BUDGET:.0f}%)")

    print()
    print(build_report(classifier, test_error=chosen.test_error,
                       reference_word_length=12).text)

    serve_demo(classifier)


def serve_demo(classifier, num_beats: int = 24) -> None:
    """Save the trained model, serve it, and stream beats through HTTP."""
    print("\n--- serving demo: save artifact -> serve -> stream beats ---")
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "ecg_alarm.json"
        save_classifier(classifier, str(artifact))
        print(f"artifact saved to {artifact.name} "
              f"({artifact.stat().st_size} bytes of auditable JSON)")

        registry = ModelRegistry()
        model = registry.register_file("ecg-alarm", str(artifact))
        print(f"registered {model.describe()}")

        handle = start_server_thread(registry, ServeConfig(port=0))
        try:
            # Fresh beats the monitor has never seen, streamed one by one
            # exactly as a wearable would deliver them.
            stream = make_ecg_dataset(num_beats // 2, seed=7)
            alarms = 0
            for beat in stream.features:
                body = json.dumps({"features": [float(v) for v in beat]})
                request = urllib.request.Request(
                    handle.url + "/predict",
                    data=body.encode(),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=10) as response:
                    reply = json.loads(response.read())
                alarms += reply["labels"][0]
            local = classifier.predict_bitexact(stream.features)
            print(f"streamed {stream.num_samples} beats over HTTP: "
                  f"{alarms} alarms (bit-exact local replay agrees: "
                  f"{alarms == int(local.sum())})")

            with urllib.request.urlopen(handle.url + "/metrics", timeout=10) as resp:
                metric_lines = [
                    line for line in resp.read().decode().splitlines()
                    if not line.startswith("#")
                ]
            print("server metrics after the stream:")
            for line in metric_lines:
                print(f"  {line}")
        finally:
            handle.stop()


if __name__ == "__main__":
    main()
