#!/usr/bin/env python3
"""Word-length exploration: error/power Pareto front + per-element allocation.

Two studies the paper motivates but leaves as future work:

1. **Uniform word-length Pareto sweep** — train LDA-FP at every word length
   and print the (error, power) frontier a designer would choose from.
2. **Per-element word-length allocation** — start from a trained weight
   vector at a generous format and greedily drop fractional bits from the
   least sensitive weights (paper Section 3: "different elements of the
   weight vector w can be assigned with different word lengths").

Run:  python examples/wordlength_explorer.py
"""

from __future__ import annotations

import numpy as np

from repro import LdaFpConfig, PipelineConfig, make_synthetic_dataset
from repro.core import fit_lda
from repro.data.scaling import FeatureScaler
from repro.fixedpoint import QFormat, greedy_wordlength_allocation
from repro.wordlength import (
    minimum_wordlength,
    pareto_front,
    precision_sweep,
    statistical_ranges,
    wordlength_sweep,
)


def pareto_sweep() -> None:
    print("Uniform word-length sweep (LDA-FP), error vs normalized power")
    train = make_synthetic_dataset(1500, seed=0)
    test = make_synthetic_dataset(4000, seed=1)
    points = wordlength_sweep(
        train,
        test,
        word_lengths=(4, 6, 8, 10, 12, 14, 16),
        pipeline_config=PipelineConfig(
            method="lda-fp", ldafp=LdaFpConfig(max_nodes=100, time_limit=10)
        ),
    )
    print("  WL |  error  | power (norm.) ")
    print("-----+---------+---------------")
    for p in points:
        print(f"  {p.word_length:2d} | {100 * p.test_error:6.2f}% | {p.power:8.0f}")
    front = pareto_front(points)
    print("Pareto-optimal word lengths:", [p.word_length for p in front])
    best = minimum_wordlength(points, target_error=0.30)
    if best is not None:
        print(f"smallest word length with error <= 30%: {best.word_length} bits")


def range_and_precision_analysis() -> None:
    print("\nRange + precision analysis of the float LDA datapath")
    train = make_synthetic_dataset(1500, seed=5)
    scaler = FeatureScaler(limit=0.9)
    train_s = train.map_features(scaler.fit(train.features).transform)
    from repro.stats import estimate_two_class_stats

    stats = estimate_two_class_stats(train_s.class_a, train_s.class_b)
    model = fit_lda(train_s, shrinkage=0.0)

    ranges = statistical_ranges(stats, model.weights, model.threshold, rho=0.9999)
    bits = ranges.integer_bits_needed()
    print(f"  integer bits needed (rho=0.9999): {bits}")

    points = precision_sweep(
        stats, model.weights, model.threshold,
        integer_bits=bits["decision"], fraction_range=(4, 14),
    )
    print("   F | predicted error | quantization-noise var")
    for p in points[::2]:
        print(f"  {p.fraction_bits:2d} | {100 * p.predicted_error:13.2f}% | "
              f"{p.noise_variance:.3e}")


def per_element_allocation() -> None:
    print("\nPer-element word-length allocation (greedy bit dropping)")
    train = make_synthetic_dataset(1500, seed=2)
    test = make_synthetic_dataset(4000, seed=3)
    scaler = FeatureScaler(limit=0.9)
    train_s = train.map_features(scaler.fit(train.features).transform)
    test_s = test.map_features(scaler.transform)

    model = fit_lda(train_s, shrinkage=0.0)
    start = QFormat(2, 12)

    def objective(quantized_weights: np.ndarray) -> float:
        threshold = float(quantized_weights @ model.stats.midpoint)
        decisions = (test_s.features @ quantized_weights - threshold >= 0).astype(int)
        return float(np.mean(decisions != test_s.labels))

    result = greedy_wordlength_allocation(
        model.weights, objective, start, max_degradation=0.01, min_fraction_bits=1
    )
    uniform_bits = start.word_length * model.weights.size
    print(f"  uniform start : {model.weights.size} x {start} "
          f"= {uniform_bits} total weight bits, error {100 * result.history[0][2] if result.history else 100 * result.objective:.2f}%"
          if result.history else "")
    print(f"  allocated     : {[str(f) for f in result.formats]}")
    print(f"  total bits    : {result.total_bits} "
          f"({100 * (1 - result.total_bits / uniform_bits):.0f}% saved)")
    print(f"  final error   : {100 * result.objective:.2f}%")
    print(f"  greedy steps  : {len(result.history)}")


def main() -> None:
    pareto_sweep()
    range_and_precision_analysis()
    per_element_allocation()


if __name__ == "__main__":
    main()
