#!/usr/bin/env python3
"""The noise-cancellation mechanism behind Figure 4, dissected.

Sweeps word length on the paper's synthetic problem and prints the weight
trajectories of both methods, showing precisely when conventional LDA's
discriminative weight ``w1`` dies (rounds to zero) and how LDA-FP trades
cancellation quality for a living signal path.  Then scales the problem up
with the generalized noise-cancellation family to show the effect persists
in higher dimension.

Run:  python examples/noise_cancellation.py
"""

from __future__ import annotations

import numpy as np

from repro import LdaFpConfig, PipelineConfig, TrainingPipeline
from repro.data import make_noise_cancellation_dataset, make_synthetic_dataset
from repro.experiments.figure4 import Figure4Config, format_figure4, run_figure4


def main() -> None:
    print("Sweeping word length on the paper's 3-feature synthetic problem")
    print("(this is Figure 4; takes a minute or two)\n")
    points = run_figure4(
        Figure4Config(
            word_lengths=(4, 6, 8, 10, 12, 14, 16),
            train_per_class=2000,
            max_nodes=400,
            time_limit=10.0,
        )
    )
    print(format_figure4(points))

    dead = [p.word_length for p in points if p.lda_weights[0] == 0.0]
    print(f"conventional LDA's w1 is rounded to zero at word lengths {dead};")
    print("LDA-FP keeps w1 nonzero everywhere — that is the entire story of")
    print("why Table 1's LDA column sits at 50% until 12 bits.\n")

    print("Generalized family: 1 signal + 5 noise features, 8-bit weights")
    train = make_noise_cancellation_dataset(2000, num_noise_features=5, seed=0)
    test = make_noise_cancellation_dataset(4000, num_noise_features=5, seed=1)
    for method in ("lda", "lda-fp"):
        pipe = TrainingPipeline(
            PipelineConfig(
                method=method,
                lda_shrinkage=0.0,
                ldafp=LdaFpConfig(max_nodes=60, time_limit=15),
            )
        )
        result = pipe.run(train, test, 8)
        print(f"  {method:7s}: error {100 * result.test_error:6.2f}%  "
              f"weights {np.round(result.classifier.weights, 3)}")


if __name__ == "__main__":
    main()
