"""CI smoke test for the serving stack.

Trains nothing itself: takes an artifact produced by ``repro report
--save-artifact``, launches the real ``repro serve`` CLI as a subprocess on
an ephemeral port, POSTs a known feature vector, asserts the served labels
are bit-identical to ``predict_bitexact`` on the same artifact, and scrapes
``/metrics`` asserting the request and batch counters moved.

Usage: PYTHONPATH=src python .github/scripts/serve_smoke.py ARTIFACT.json
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import urllib.request

import numpy as np

from repro.core.serialize import load_classifier

FEATURES = [
    [0.5, -0.25, 1.0, 0.125, -0.5, 0.75],
    [-1.0, 0.5, -0.125, 0.25, 1.0, -0.75],
]


def main() -> int:
    artifact = sys.argv[1]
    classifier = load_classifier(artifact)
    width = classifier.weights.shape[0]
    features = [row[:width] + [0.0] * (width - len(row)) for row in FEATURES]
    expected = [int(v) for v in classifier.predict_bitexact(np.array(features))]

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--artifact", artifact,
         "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        match = None
        for line in proc.stdout:
            print("server:", line.rstrip())
            match = re.search(r"http://[\d.]+:(\d+)", line)
            if match:
                break
        if not match:
            raise SystemExit("server exited without announcing a port")
        base = f"http://127.0.0.1:{match.group(1)}"
        print(f"server up at {base}")

        body = json.dumps({"features": features}).encode()
        request = urllib.request.Request(
            f"{base}/predict", data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        print("predict response:", json.dumps(payload))
        if payload["labels"] != expected:
            raise SystemExit(
                f"served labels {payload['labels']} != bit-exact {expected}"
            )

        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
            metrics = response.read().decode()
        counters = {
            name: float(value)
            for name, value in re.findall(r"^(\w+) ([\d.eE+-]+)$", metrics, re.M)
        }
        if counters.get("repro_serve_requests_total", 0) < 1:
            raise SystemExit(f"request counter never moved:\n{metrics}")
        if counters.get("repro_serve_batches_total", 0) < 1:
            raise SystemExit(f"batch counter never moved:\n{metrics}")
        print(
            "metrics ok: requests_total="
            f"{counters['repro_serve_requests_total']:.0f} "
            f"batches_total={counters['repro_serve_batches_total']:.0f}"
        )
        print("serve smoke passed: labels bit-identical to predict_bitexact")
        return 0
    finally:
        proc.terminate()
        proc.wait(timeout=10)


if __name__ == "__main__":
    raise SystemExit(main())
