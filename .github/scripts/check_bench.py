"""Validate the machine-readable benchmark emissions CI archives.

Every benchmark that claims to record a ``results/BENCH_*.json`` file must
actually have produced it, it must parse, and it must carry a ``schema``
stamp — a benchmark that silently skipped its emission would otherwise
upload stale or missing numbers while the job stays green.

Usage:
    python .github/scripts/check_bench.py BENCH_serve.json [BENCH_native.json ...]

Names are resolved under ``results/``.  Exits non-zero on the first
missing, unparseable, or unstamped file; prints a one-line summary per
file otherwise (the job's upload step archives the same paths).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent.parent / "results"


def check(name: str) -> str:
    path = RESULTS_DIR / name
    if not path.exists():
        raise SystemExit(f"check_bench: {path} was never emitted")
    try:
        record = json.loads(path.read_text())
    except ValueError as exc:
        raise SystemExit(f"check_bench: {path} is not valid JSON: {exc}")
    if not isinstance(record, dict) or not str(record.get("schema", "")):
        raise SystemExit(f"check_bench: {path} carries no schema stamp")
    sections = ", ".join(sorted(k for k in record if k != "schema"))
    return f"{name}: schema={record['schema']} sections=[{sections}]"


def main(names: list) -> int:
    if not names:
        raise SystemExit("check_bench: pass at least one BENCH_*.json name")
    for name in names:
        print(check(name))
    print(f"check_bench: {len(names)} emission(s) present and parseable")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
