"""CI smoke test for the pre-fork serving cluster.

Boots the real ``repro serve`` CLI twice against one artifact:

1. single-process, to capture reference answers over both protocols
   (JSON HTTP and the ``repro.serve-wire/v1`` binary framing) and to
   verify the graceful SIGTERM path ("draining ..." then exit 0);
2. ``--workers 2`` cluster mode, asserting both protocols answer
   bit-identically to the single process, the supervisor's control plane
   reports two live workers and aggregates their metrics, a SIGKILL'd
   worker is restarted (new pid, restart counter up, data port still
   answering), and SIGTERM drains the fleet to a clean exit.

Usage: PYTHONPATH=src python .github/scripts/cluster_smoke.py ARTIFACT.json
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

import numpy as np

from repro.core.serialize import load_classifier
from repro.serve import wire

FEATURES = [
    [0.5, -0.25, 1.0, 0.125, -0.5, 0.75],
    [-1.0, 0.5, -0.125, 0.25, 1.0, -0.75],
    [0.25, 0.25, -0.25, 0.5, -1.0, 0.125],
]


def _boot(extra_args):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc


def _read_ports(proc, cluster):
    """Parse the announced data port (and control port in cluster mode)."""
    data_port = control_port = None
    pattern = re.compile(r"http://[\d.]+:(\d+)")
    for line in proc.stdout:
        print("server:", line.rstrip())
        match = pattern.search(line)
        if match is None:
            continue
        if cluster and "control plane" in line:
            control_port = int(match.group(1))
            break
        if data_port is None and ("serving" in line or "shard" in line):
            data_port = int(match.group(1))
            if not cluster:
                break
    if data_port is None or (cluster and control_port is None):
        raise SystemExit("server exited before announcing its ports")
    return data_port, control_port


def _get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _predict_both_protocols(port, features):
    """(JSON labels, wire labels, wire projection raws) from one port."""
    body = json.dumps({"features": features}).encode()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/predict",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        payload = json.loads(response.read())
    with wire.WireClient("127.0.0.1", port) as client:
        reply = client.request(np.asarray(features))
    if not isinstance(reply, wire.WireResponse):
        raise SystemExit(f"wire predict failed: {reply}")
    return payload["labels"], [int(v) for v in reply.labels], [
        int(v) for v in reply.projection_raws
    ]


def _graceful_stop(proc, what):
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    print(f"{what} shutdown output:", out.rstrip() or "(none)")
    if proc.returncode != 0:
        raise SystemExit(f"{what} exited {proc.returncode} on SIGTERM")
    if "draining" not in out:
        raise SystemExit(f"{what} SIGTERM path skipped the drain: {out!r}")


def main() -> int:
    artifact = sys.argv[1]
    classifier = load_classifier(artifact)
    width = classifier.weights.shape[0]
    features = [row[:width] + [0.0] * (width - len(row)) for row in FEATURES]
    expected = [int(v) for v in classifier.predict_bitexact(np.array(features))]

    # ---- Phase 1: single-process reference + graceful SIGTERM ---------- #
    single = _boot(["--artifact", artifact, "--port", "0"])
    try:
        port, _ = _read_ports(single, cluster=False)
        json_labels, wire_labels, wire_raws = _predict_both_protocols(
            port, features
        )
        if json_labels != expected or wire_labels != expected:
            raise SystemExit(
                f"single-process labels diverged: json={json_labels} "
                f"wire={wire_labels} expected={expected}"
            )
    except BaseException:
        single.kill()
        raise
    _graceful_stop(single, "single-process server")
    print("single-process: both protocols bit-identical, SIGTERM drained")

    # ---- Phase 2: 2-worker cluster ------------------------------------ #
    cluster = _boot(
        ["--artifact", artifact, "--port", "0", "--workers", "2"]
    )
    try:
        data_port, control_port = _read_ports(cluster, cluster=True)
        c_json, c_wire, c_raws = _predict_both_protocols(data_port, features)
        if c_json != expected or c_wire != expected or c_raws != wire_raws:
            raise SystemExit(
                "cluster answers diverged from single-process: "
                f"json={c_json} wire={c_wire} raws={c_raws}"
            )
        print("cluster: both protocols bit-identical to single-process")

        health = _get_json(f"http://127.0.0.1:{control_port}/healthz")
        workers = health["workers"]
        if len(workers) != 2 or not all(w["alive"] for w in workers):
            raise SystemExit(f"expected 2 live workers, got {workers}")
        metrics = _get_json(f"http://127.0.0.1:{control_port}/metrics.json")
        if metrics["schema"] != "repro.serve-cluster-metrics/v1":
            raise SystemExit(f"bad cluster metrics schema: {metrics['schema']}")
        if metrics["aggregate"]["requests_total"] < 1:
            raise SystemExit("aggregate request counter never moved")
        print(
            f"control plane ok: {len(metrics['workers'])} worker snapshot(s), "
            f"aggregate requests_total="
            f"{metrics['aggregate']['requests_total']}"
        )

        # Crash one worker; the supervisor must restart it in place.
        victim = workers[0]
        os.kill(victim["pid"], signal.SIGKILL)
        print(f"killed worker {victim['worker']} (pid {victim['pid']})")
        deadline = time.monotonic() + 30.0
        restarted = None
        while time.monotonic() < deadline:
            health = _get_json(f"http://127.0.0.1:{control_port}/healthz")
            state = next(
                w for w in health["workers"] if w["worker"] == victim["worker"]
            )
            if state["alive"] and state["pid"] != victim["pid"]:
                restarted = state
                break
            time.sleep(0.25)
        if restarted is None:
            raise SystemExit(f"worker {victim['worker']} never restarted")
        if restarted["restarts"] < 1:
            raise SystemExit(f"restart not counted: {restarted}")
        print(
            f"worker {restarted['worker']} restarted "
            f"(pid {victim['pid']} -> {restarted['pid']})"
        )

        # The shared port keeps answering correct bits after the restart.
        for _ in range(4):
            _, again, _ = _predict_both_protocols(data_port, features)
            if again != expected:
                raise SystemExit(f"post-restart labels diverged: {again}")
        print("data port serves bit-identical answers after restart")
    except BaseException:
        cluster.kill()
        raise
    _graceful_stop(cluster, "cluster supervisor")
    print("cluster smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
