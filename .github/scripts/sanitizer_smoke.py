"""CI sanitizer smoke: the native kernel under UBSan + ASan.

The static UB certificate (repro.check.certify_native_kernel) claims the
generated C cannot execute undefined behaviour; this job validates the
claim dynamically.  The kernel is rebuilt with ``sanitize=True``
(-fsanitize=undefined,address -fno-sanitize-recover=all, separate cache
key) and the regular conformance tooling — the native_vs_fast fuzz oracle
and the pinned golden vector — runs against the instrumented ``.so``.
A single sanitizer report aborts the child process and fails the job.

dlopen-ing an ASan-instrumented library from an uninstrumented python
requires the ASan runtime to be loaded first, so every check runs in a
child process with ``LD_PRELOAD`` set from
:func:`repro.hardware.compile.sanitizer_runtime_preload`.
``detect_leaks=0``: the interpreter's own arenas are not the subject
under test.

Exits 0 with a skip notice when the host has no compiler or the ASan
runtime cannot be resolved — sanitized execution is a best-effort extra
layer, the plain-build oracles still gate every push.
"""

from __future__ import annotations

import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..", "src"))

from repro.hardware.compile import find_compiler, sanitizer_runtime_preload  # noqa: E402

ENGINE_CHECK = """
import numpy as np
from repro.core.classifier import FixedPointLinearClassifier
from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.quantize import quantize
from repro.serve import BatchInferenceEngine

fmt = QFormat(3, 5)
rng = np.random.default_rng(0)
weights = np.asarray(quantize(rng.uniform(-2, 2, size=8), fmt))
clf = FixedPointLinearClassifier(weights=weights, threshold=0.25, fmt=fmt)
engine = BatchInferenceEngine(clf, backend="native")
assert engine.backend == "native", engine.native_fallback_reason
features = rng.uniform(-6, 6, size=(4096, 8))
labels = engine.predict(features)
assert labels.shape == (4096,)
print("sanitized kernel served", labels.shape[0], "predictions")
"""


def main() -> int:
    compiler = find_compiler()
    if compiler is None:
        print("sanitizer smoke: no C compiler on this host — skipping")
        return 0
    preload = sanitizer_runtime_preload(compiler=compiler)
    if preload is None:
        print("sanitizer smoke: ASan runtime not resolvable — skipping")
        return 0
    print(f"sanitizer smoke: compiler={compiler} LD_PRELOAD={preload}")

    env = dict(os.environ)
    env["LD_PRELOAD"] = preload
    env["ASAN_OPTIONS"] = "detect_leaks=0"
    env["REPRO_NATIVE_SANITIZE"] = "1"
    env.setdefault("PYTHONPATH", "src")

    steps = [
        (
            "build + serve through the sanitized kernel",
            [sys.executable, "-c", ENGINE_CHECK],
        ),
        (
            "native_vs_fast oracle against the sanitized kernel",
            [
                sys.executable, "-m", "repro", "fuzz",
                "--oracle", "native_vs_fast",
                "--budget", "45s",
                "--witness", "sanitizer_witness.json",
            ],
        ),
        (
            "golden vectors against the sanitized kernel",
            [
                sys.executable, "-m", "repro",
                "golden", "verify", "--only", "native_engine",
            ],
        ),
    ]
    for title, command in steps:
        print(f"--- {title}")
        proc = subprocess.run(command, env=env)
        if proc.returncode != 0:
            print(
                f"sanitizer smoke FAILED at {title!r} "
                f"(exit {proc.returncode})",
                file=sys.stderr,
            )
            return 1
    print("sanitizer smoke: all checks passed with zero sanitizer reports")
    return 0


if __name__ == "__main__":
    sys.exit(main())
