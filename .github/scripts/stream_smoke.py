"""CI smoke test for the streaming signal-chain serving plane.

Boots the real ``repro serve`` CLI in cluster mode (1 shard x 2
``SO_REUSEPORT`` workers) against a trained ECG artifact, then:

1. routes streaming sessions client-side with
   :func:`repro.serve.shard_for_session`, opens each on its own
   persistent wire connection (the kernel balances *connections* across
   workers, so a session's filter state stays pinned to whichever worker
   accepted it — exactly the property chunked streaming depends on),
   pushes a chunked synthesized ECG recording through each session, and
   asserts every returned window is **bit-identical** to the offline
   pipeline (:func:`repro.serve.stream.run_offline`) on the same samples;
2. checks the supervisor's control plane aggregates the v3 streaming
   counters (sessions opened, chunks, windows) across both workers;
3. drives the ``repro stream`` CLI end to end against the live shard and
   validates its per-window JSON output;
4. SIGTERMs the fleet and requires a clean drain.

Usage: PYTHONPATH=src python .github/scripts/stream_smoke.py ARTIFACT.json
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import urllib.request

import numpy as np

from repro.core.serialize import load_classifier
from repro.data.ecg import EcgBeatConfig, synthesize_beat
from repro.serve import ModelRegistry, shard_for_session, wire
from repro.serve.stream import FrontEndConfig, run_offline

NUM_SHARDS = 1  # one model -> one hash-routed shard; workers scale within it
NUM_WORKERS = 2
NUM_SESSIONS = 3
CHUNK = 73  # deliberately uneven vs window_size=200 / hop=200


def _recording(seed: int, beats: int = 10) -> np.ndarray:
    config = EcgBeatConfig(sample_rate=250.0)
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [synthesize_beat(config, rng, abnormal=b % 2 == 1) for b in range(beats)]
    )


def _boot(artifact: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--artifact", artifact,
            "--port", "0",
            "--workers", str(NUM_WORKERS),
            "--shards", str(NUM_SHARDS),
            "--max-delay-ms", "1",
            "--max-sessions", "8",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _read_ports(proc: subprocess.Popen) -> tuple[dict[int, int], int]:
    """Parse every announced shard data port plus the control port."""
    shard_ports: dict[int, int] = {}
    shard_pattern = re.compile(r"shard (\d+):.* http://[\d.]+:(\d+)")
    control_pattern = re.compile(r"control plane on http://[\d.]+:(\d+)")
    assert proc.stdout is not None
    for line in proc.stdout:
        print("server:", line.rstrip())
        match = shard_pattern.search(line)
        if match is not None:
            shard_ports[int(match.group(1))] = int(match.group(2))
        match = control_pattern.search(line)
        if match is not None:
            return shard_ports, int(match.group(1))
    raise SystemExit("server exited before announcing its ports")


def _stream_session(
    port: int, key: str, samples: np.ndarray, config: FrontEndConfig, expected
) -> None:
    """One full session on one persistent connection, bit-checked."""
    indices: list[int] = []
    raws: list[int] = []
    labels: list[int] = []
    with wire.WireClient("127.0.0.1", port, timeout=30.0) as client:
        opened = client.open_stream(key, config=config.to_dict(), model="ecg")
        if not isinstance(opened, wire.StreamOpened):
            raise SystemExit(f"{key}: open failed: {opened!r}")
        for seq, start in enumerate(range(0, samples.size, CHUNK)):
            reply = client.send_chunk(key, seq, samples[start : start + CHUNK])
            if not isinstance(reply, wire.StreamResult):
                raise SystemExit(f"{key}: chunk {seq} failed: {reply!r}")
            indices += [int(i) for i in reply.window_indices]
            raws += [int(r) for r in reply.projection_raws]
            labels += [int(v) for v in reply.labels]
        closed = client.close_stream(key)
        if not isinstance(closed, wire.StreamClosed):
            raise SystemExit(f"{key}: close failed: {closed!r}")
    if closed.samples != samples.size or closed.windows != len(indices):
        raise SystemExit(f"{key}: close totals wrong: {closed!r}")
    if indices != list(range(expected["num_windows"])):
        raise SystemExit(f"{key}: window indices wrong: {indices}")
    if raws != [int(r) for r in expected["projection_raws"]] or labels != [
        int(v) for v in expected["labels"]
    ]:
        raise SystemExit(f"{key}: streamed bits diverge from run_offline")
    print(
        f"{key}: {closed.chunks} chunks, {closed.samples} samples, "
        f"{closed.windows} windows — bit-identical to offline"
    )


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


def _run_stream_cli(port: int) -> None:
    """The `repro stream` CLI against the live shard, JSON mode."""
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "stream",
            "--port", str(port),
            "--session", "cli-smoke",
            "--model", "ecg",
            "--beats", "4",
            "--chunk", "60",
            "--json",
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    print("repro stream stderr:", out.stderr.rstrip() or "(none)")
    if out.returncode != 0:
        raise SystemExit(f"repro stream exited {out.returncode}: {out.stdout}")
    records = [
        json.loads(line)
        for line in out.stdout.splitlines()
        if line.startswith("{")
    ]
    windows = [r for r in records if "window" in r]
    if not windows:
        raise SystemExit(f"repro stream emitted no windows: {out.stdout!r}")
    for window in windows:
        if not {"window", "label", "projection_raw"} <= window.keys():
            raise SystemExit(f"malformed window record: {window}")
    summaries = [r for r in records if "windows" in r]
    if not summaries or summaries[-1]["windows"] != len(windows):
        raise SystemExit(f"close summary missing or wrong: {records}")
    print(f"repro stream CLI ok: {len(windows)} window(s) emitted")


def main() -> int:
    artifact = sys.argv[1]
    registry = ModelRegistry()
    registry.register("ecg", load_classifier(artifact))
    model = registry.get("ecg")
    config = FrontEndConfig()  # 250 Hz, 31 taps, (1, 40) Hz, 200/200

    proc = _boot(artifact)
    try:
        shard_ports, control_port = _read_ports(proc)
        if sorted(shard_ports) != list(range(NUM_SHARDS)):
            raise SystemExit(f"expected {NUM_SHARDS} shard(s), got {shard_ports}")

        for i in range(NUM_SESSIONS):
            key = f"patient-{i}"
            # Client-side routing: the session key picks the shard, the
            # persistent connection then pins the worker within it.
            port = shard_ports[shard_for_session(key, NUM_SHARDS)]
            samples = _recording(seed=100 + i)
            expected = run_offline(model, config, samples)
            if expected["num_windows"] < 1:
                raise SystemExit("offline reference produced no windows")
            _stream_session(port, key, samples, config, expected)

        metrics = _get_json(f"http://127.0.0.1:{control_port}/metrics.json")
        if metrics["schema"] != "repro.serve-cluster-metrics/v1":
            raise SystemExit(f"bad cluster metrics schema: {metrics['schema']}")
        if len(metrics["workers"]) != NUM_WORKERS:
            raise SystemExit(f"expected {NUM_WORKERS} worker snapshots")
        aggregate = metrics["aggregate"]
        if aggregate["sessions_opened_total"] < NUM_SESSIONS:
            raise SystemExit(f"session counter never moved: {aggregate}")
        if aggregate["stream_chunks_total"] < NUM_SESSIONS or (
            aggregate["stream_windows_total"] < NUM_SESSIONS
        ):
            raise SystemExit(f"stream counters never moved: {aggregate}")
        print(
            "control plane aggregates v3 stream counters: "
            f"sessions={aggregate['sessions_opened_total']} "
            f"chunks={aggregate['stream_chunks_total']} "
            f"windows={aggregate['stream_windows_total']}"
        )

        _run_stream_cli(shard_ports[shard_for_session("cli-smoke", NUM_SHARDS)])
    except BaseException:
        proc.kill()
        raise

    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    print("shutdown output:", out.rstrip() or "(none)")
    if proc.returncode != 0:
        raise SystemExit(f"supervisor exited {proc.returncode} on SIGTERM")
    if "draining" not in out:
        raise SystemExit(f"SIGTERM path skipped the drain: {out!r}")
    print("stream smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
