"""Enforce the per-package coverage floors recorded in pyproject.toml.

Reads ``coverage.json`` (produced by ``pytest --cov=repro
--cov-report=json``) and the ``[tool.repro.coverage]`` table, aggregates
line coverage per package prefix, and exits 1 when any floor is missed.

Kept as a standalone stdlib-only script (tomllib needs Python >= 3.11,
which the CI job pins) so the gate needs no extra dependency beyond
pytest-cov itself and the floors live next to the rest of the project
configuration instead of inside a workflow file.
"""

from __future__ import annotations

import json
import sys
import tomllib


def main(coverage_path: str = "coverage.json", pyproject_path: str = "pyproject.toml") -> int:
    with open(pyproject_path, "rb") as handle:
        pyproject = tomllib.load(handle)
    floors = (
        pyproject.get("tool", {}).get("repro", {}).get("coverage", {})
    )
    if not floors:
        print("error: no [tool.repro.coverage] floors in pyproject.toml", file=sys.stderr)
        return 2
    with open(coverage_path, encoding="utf-8") as handle:
        report = json.load(handle)
    files = report.get("files", {})
    if not files:
        print(f"error: {coverage_path} has no per-file data", file=sys.stderr)
        return 2

    failed = False
    for prefix, floor in sorted(floors.items()):
        statements = 0
        covered = 0
        for path, entry in files.items():
            normalized = path.replace("\\", "/")
            # coverage.json paths look like src/repro/fixedpoint/qformat.py
            if f"/{prefix}/" not in f"/{normalized}":
                continue
            summary = entry["summary"]
            statements += summary["num_statements"]
            covered += summary["covered_lines"]
        if statements == 0:
            print(f"FAIL {prefix}: no measured files (floor {floor}%)")
            failed = True
            continue
        percent = 100.0 * covered / statements
        verdict = "ok  " if percent >= floor else "FAIL"
        if percent < floor:
            failed = True
        print(
            f"{verdict} {prefix}: {percent:.1f}% line coverage "
            f"({covered}/{statements}, floor {floor}%)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
