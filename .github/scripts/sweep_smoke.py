"""CI smoke test for the word-length sweep engine.

Exercises the real ``repro sweep`` CLI on a 3-point synthetic sweep with
``--sweep-workers 2 --seed-incumbents --sweep-trace``, checks the trace it
writes, then recomputes the same sweep through the API twice — the serial
unseeded baseline (``wordlength_sweep``) and the parallel seeded engine
(``run_sweep``) — and asserts the two ``SweepPoint`` lists are
byte-identical (canonical JSON view, wall-clock timing excluded).

The chosen word lengths stop via the warm-start early exit, the regime
docs/wordlength_sweep.md documents as identity-guaranteed: seeds never
participate in the early-exit test, so seeding and parallel chunking must
not change a single byte of the result.

Usage: PYTHONPATH=src python .github/scripts/sweep_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.core.ldafp import LdaFpConfig
from repro.core.pipeline import PipelineConfig
from repro.data.synthetic import make_synthetic_dataset
from repro.wordlength import SweepConfig, SweepTrace, run_sweep, wordlength_sweep

SAMPLES = 400
SEED = 0
WORD_LENGTHS = (10, 12, 14)
MAX_NODES = 20_000


def canonical(points) -> str:
    return json.dumps([p.canonical() for p in points], sort_keys=True)


def main() -> int:
    trace_path = Path(tempfile.mkdtemp()) / "sweep_trace.json"
    command = [
        sys.executable, "-m", "repro", "sweep",
        "--dataset", "synthetic", "--samples", str(SAMPLES),
        "--seed", str(SEED),
        "--word-lengths", *[str(wl) for wl in WORD_LENGTHS],
        "--max-nodes", str(MAX_NODES),
        "--sweep-workers", "2", "--seed-incumbents",
        "--sweep-trace", str(trace_path),
    ]
    print("running:", " ".join(command))
    completed = subprocess.run(command, capture_output=True, text=True)
    print(completed.stdout)
    if completed.returncode != 0:
        print(completed.stderr, file=sys.stderr)
        raise SystemExit(f"repro sweep exited {completed.returncode}")

    trace = SweepTrace.load(trace_path)
    if [r.word_length for r in trace.records] != list(WORD_LENGTHS):
        raise SystemExit(f"trace records wrong word lengths: {trace.records}")
    if trace.meta.get("workers") != 2 or not trace.meta.get("seed_incumbents"):
        raise SystemExit(f"trace meta does not reflect the flags: {trace.meta}")
    print(f"trace ok: {len(trace.records)} points, chunks={trace.meta['chunks']}")

    # Same inputs the CLI used (see cli._run_sweep).
    train = make_synthetic_dataset(SAMPLES, seed=SEED)
    test = make_synthetic_dataset(SAMPLES, seed=SEED + 1)
    config = PipelineConfig(
        method="lda-fp", ldafp=LdaFpConfig(max_nodes=MAX_NODES)
    )

    serial = wordlength_sweep(train, test, WORD_LENGTHS, pipeline_config=config)
    engine = run_sweep(
        train, test, WORD_LENGTHS, pipeline_config=config,
        sweep_config=SweepConfig(workers=2, seed_incumbents=True),
    )
    for point in serial:
        if point.stop_reason != "gap":
            raise SystemExit(
                f"wl={point.word_length} stopped by {point.stop_reason!r}; "
                "the smoke sweep must stay in the early-exit identity regime"
            )
    serial_json, engine_json = canonical(serial), canonical(engine)
    if serial_json != engine_json:
        raise SystemExit(
            "engine sweep diverged from the serial baseline\n"
            f"serial: {serial_json}\nengine: {engine_json}"
        )
    print("sweep smoke passed: parallel seeded engine byte-identical "
          f"to the serial baseline on {list(WORD_LENGTHS)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
